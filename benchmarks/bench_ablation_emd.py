"""Ablation A — distinct-value vs rank-based ordered EMD under ties.

DESIGN.md records a deliberate choice: the t-closeness checker uses Li et
al.'s distinct-value bins, while the paper's Propositions 1-2 are stated
over per-record rank bins.  The two coincide on tie-free data (asserted in
the unit suite); this ablation quantifies (a) how far they drift once the
confidential attribute is heavily tied, and (b) what each costs, since the
distinct-value frame shrinks with the number of distinct values.
"""

from __future__ import annotations

import numpy as np
from conftest import FULL, write_result

from repro.data import load_patient_discharge
from repro.distance import OrderedEMDReference
from repro.evaluation import format_table

N = 3000 if FULL else 1000
CLUSTER_SIZE = 25
N_CLUSTERS = 200


def _tied_charges(data, granularity):
    """Charge column rounded to a coarse grid — the tie generator.

    ``granularity = 0`` keeps the raw (continuous, tie-free) column.
    """
    charge = data.values("CHARGE")
    if granularity == 0:
        return charge
    return np.round(charge / granularity) * granularity


def test_emd_mode_divergence_under_ties(benchmark, patient_discharge):
    rng = np.random.default_rng(7)
    rows = []
    worst_gap = {}
    for granularity in (0.0, 1_000.0, 10_000.0):
        values = _tied_charges(patient_discharge, granularity)
        distinct_ref = OrderedEMDReference(values, mode="distinct")
        rank_ref = OrderedEMDReference(values, mode="rank")
        gaps = []
        for _ in range(N_CLUSTERS):
            members = rng.choice(len(values), size=CLUSTER_SIZE, replace=False)
            d = distinct_ref.emd(values[members])
            r = rank_ref.emd(values[members])
            gaps.append(abs(d - r))
        rows.append(
            [
                f"{granularity:g}",
                distinct_ref.m,
                f"{np.mean(gaps):.5f}",
                f"{np.max(gaps):.5f}",
            ]
        )
        worst_gap[granularity] = float(np.max(gaps))
    write_result(
        "ablation_emd_modes",
        format_table(
            ["rounding", "#distinct bins", "mean |gap|", "max |gap|"], rows
        ),
    )

    # Tie-free (raw continuous data): the modes coincide exactly.
    assert worst_gap[0.0] < 1e-9
    # Heavy ties: the modes measurably drift apart.
    assert worst_gap[10_000.0] > worst_gap[0.0]

    # Benchmark the evaluation cost of the distinct frame (the default).
    values = patient_discharge.values("CHARGE")
    ref = OrderedEMDReference(values)
    members = rng.choice(len(values), size=CLUSTER_SIZE, replace=False)
    cluster = values[members]
    benchmark(ref.emd, cluster)
