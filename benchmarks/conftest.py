"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures.  Two
scales are supported:

* **default** (CI scale): reduced (k, t) grids and subsampled data so the
  whole suite runs in a few minutes;
* **full** (``REPRO_FULL=1``): the paper's complete grids on the full-size
  surrogates — budget tens of minutes, dominated by Algorithm 2's
  O(n^3/k) cells, exactly as Figure 5 predicts.

Each benchmark writes its rendered paper-style table to
``benchmarks/results/<name>.txt`` (and prints it, visible with ``-s``), so
EXPERIMENTS.md can quote measured numbers verbatim.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.data import load_hcd, load_mcd, load_patient_discharge

#: Full-scale mode switch (paper grids + full-size data).
FULL = os.environ.get("REPRO_FULL", "") == "1"

#: The paper's parameter grids (Tables 1-3).
PAPER_KS = (2, 5, 10, 15, 20, 25, 30)
PAPER_TS = (0.01, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25)

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table and echo it for ``-s`` runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def mcd():
    """Full-size MCD surrogate (1,080 records, like the paper)."""
    return load_mcd()


@pytest.fixture(scope="session")
def hcd():
    """Full-size HCD surrogate (1,080 records)."""
    return load_hcd()


@pytest.fixture(scope="session")
def mcd_half():
    """Half-size MCD for the Algorithm-2-heavy default sweeps."""
    return load_mcd(n=540)


@pytest.fixture(scope="session")
def hcd_half():
    return load_hcd(n=540)


@pytest.fixture(scope="session")
def patient_discharge():
    """Patient Discharge surrogate at benchmark scale.

    Algorithm 2 is O(n^3/k); the default subsample keeps the Figure 5/6
    benches inside CI budgets.  EXPERIMENTS.md documents the scaling.
    """
    return load_patient_discharge(n=3000 if FULL else 1000)
