"""Table 1 — Algorithm 1 actual cluster sizes (min/avg) over the (k, t) grid.

Paper reference (MCD/HCD, n=1080): cluster sizes blow up as t shrinks —
at t=0.01 everything collapses into one 1,080-record cluster for every k;
at t=0.25 sizes approach k.  Larger k also inflates sizes (coarser initial
microaggregation needs more merging).  The benchmark asserts those shape
properties and regenerates the table for EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import FULL, PAPER_KS, PAPER_TS, write_result

from repro.evaluation import format_size_table, sweep

KS = PAPER_KS if FULL else (2, 5, 10)
TS = PAPER_TS if FULL else (0.05, 0.13, 0.25)


def test_table1_cluster_sizes(benchmark, mcd, hcd):
    def run():
        return {
            "MCD": sweep(mcd, "merge", ks=KS, ts=TS),
            "HCD": sweep(hcd, "merge", ks=KS, ts=TS),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table1_algorithm1_sizes", format_size_table(results, ks=KS, ts=TS)
    )

    for dataset, grid in results.items():
        for cell in grid.values():
            assert cell.satisfies_t, (dataset, cell.k, cell.t)
            assert cell.min_size >= cell.k

        # Shape: stricter t (with merging) never shrinks average size.
        for k in KS:
            strict, loose = grid[(k, TS[0])], grid[(k, TS[-1])]
            assert strict.avg_size >= loose.avg_size - 1e-9

    # Shape: at strict t Algorithm 1 overshoots k by a wide margin (the
    # paper's motivation for the t-aware variants).
    assert results["MCD"][(2, TS[0])].avg_size >= 4 * 2
