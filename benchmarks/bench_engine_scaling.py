"""Wall-clock scaling benchmark for the clustering engine — BENCH_engine.json.

Times the four partition-layer algorithms (mdav, vmdav, tclose-first,
kanon-first) on synthetic data at n ∈ {1 000, 5 000, 20 000} and writes the
results to ``BENCH_engine.json`` at the repository root.  That file is the
repo's tracked performance trajectory: every PR that touches the partition
layer reruns this script and must not regress it.  See
``benchmarks/README.md`` for the JSON schema.

This is a standalone script, not a pytest benchmark, so CI can run it
directly::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --smoke  # CI

The synthetic dataset mirrors the paper's evaluation shape: a handful of
correlated income-like numeric quasi-identifiers plus one tie-free numeric
confidential attribute (so ``emd_mode="distinct"`` trackers apply and
Algorithm 3's bucket construction sees one record per rank).

Parameter choices: ``k = 5`` throughout; ``t = 0.05`` for tclose-first
(Eq. 3 then raises the effective cluster size to ~10 at large n);
kanon-first is timed at two levels — ``t = 0.4`` (loose: the measured cost
is the clustering loop plus the always-on tracker/merge bookkeeping) and
``t = 0.1`` (tight: tens of thousands of accepted swaps, the regime where
the sparse swap engine and the lazy pool carry the load).

``--ceilings FILE`` additionally asserts the recorded times against the
checked-in per-entry budgets (``benchmarks/ceilings.json``) and exits
non-zero on a breach — the CI regression tripwire for the swap/merge
phases.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.kanon_first import kanonymity_first  # noqa: E402
from repro.core.tclose_first import tcloseness_first  # noqa: E402
from repro.data import AttributeRole, Microdata, numeric  # noqa: E402
from repro.microagg import mdav, vmdav  # noqa: E402

SIZES = (1_000, 5_000, 20_000)
SMOKE_SIZES = (300,)
K = 5
T_TCLOSE = 0.05
T_KANON = 0.4
T_KANON_TIGHT = 0.1
GAMMA = 0.2
SEED = 20160516  # the paper's conference date, for want of a better nothing


def synthetic_dataset(n: int, d: int = 4, seed: int = SEED) -> Microdata:
    """Income-shaped numeric microdata with a tie-free confidential column."""
    rng = np.random.default_rng(seed + n)
    shared = rng.standard_normal(n)
    columns: dict[str, np.ndarray] = {}
    schema = []
    for i in range(d):
        latent = 0.6 * shared + 0.8 * rng.standard_normal(n)
        columns[f"qi{i}"] = 30_000.0 * np.exp(0.6 * latent)
        schema.append(numeric(f"qi{i}", role=AttributeRole.QUASI_IDENTIFIER))
    columns["secret"] = rng.permutation(np.arange(float(n)))
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


def current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover
        return "unknown"


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_benchmarks(sizes: tuple[int, ...]) -> list[dict]:
    commit = current_commit()
    entries: list[dict] = []

    def record(algorithm: str, n: int, t: float | None, seconds: float) -> None:
        entries.append(
            {
                "algorithm": algorithm,
                "n": n,
                "k": K,
                "t": t,
                "seconds": round(seconds, 4),
                "commit": commit,
            }
        )
        t_str = "-" if t is None else f"{t:g}"
        print(f"{algorithm:>13s}  n={n:<6d} k={K} t={t_str:<5s} {seconds:8.3f}s")

    for n in sizes:
        data = synthetic_dataset(n)
        X = data.qi_matrix()
        record("mdav", n, None, timed(lambda: mdav(X, K)))
        record("vmdav", n, None, timed(lambda: vmdav(X, K, gamma=GAMMA)))
        record(
            "tclose-first",
            n,
            T_TCLOSE,
            timed(lambda: tcloseness_first(data, K, T_TCLOSE)),
        )
        record(
            "kanon-first",
            n,
            T_KANON,
            timed(lambda: kanonymity_first(data, K, T_KANON)),
        )
        record(
            "kanon-first",
            n,
            T_KANON_TIGHT,
            timed(lambda: kanonymity_first(data, K, T_KANON_TIGHT)),
        )
    return entries


def entry_key(entry: dict) -> str:
    """Ceiling-file key for one entry, e.g. ``kanon-first@n=5000,t=0.1``."""
    t = "-" if entry["t"] is None else f"{entry['t']:g}"
    return f"{entry['algorithm']}@n={entry['n']},t={t}"


def check_ceilings(entries: list[dict], ceilings_path: Path) -> int:
    """Assert recorded seconds against the checked-in per-entry budgets."""
    ceilings = json.loads(ceilings_path.read_text())
    status = 0
    for entry in entries:
        key = entry_key(entry)
        if key not in ceilings:
            continue
        budget = float(ceilings[key])
        verdict = "within" if entry["seconds"] <= budget else "OVER"
        print(f"ceiling {key}: {entry['seconds']:.3f}s vs {budget:g}s — {verdict}")
        if entry["seconds"] > budget:
            status = 1
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run (n=300) that exercises the harness without the cost",
    )
    parser.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated dataset sizes overriding the default sweep",
    )
    parser.add_argument(
        "--ceilings",
        type=Path,
        default=None,
        help="JSON of per-entry wall-clock budgets to assert (exit 1 on breach)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args()

    if args.sizes is not None:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    elif args.smoke:
        sizes = SMOKE_SIZES
    else:
        sizes = SIZES
    entries = run_benchmarks(sizes)
    payload = {
        "benchmark": "engine_scaling",
        "schema": "benchmarks/README.md#bench_enginejson",
        "entries": entries,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.ceilings is not None:
        return check_ceilings(entries, args.ceilings)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
