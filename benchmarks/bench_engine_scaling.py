"""Wall-clock scaling benchmark for the clustering engine — BENCH_engine.json.

Times the partition-layer algorithms (mdav, vmdav, tclose-first,
kanon-first at two t levels, and the standalone ``merge`` post-process on
the tight kanon-first partition) plus the fitted-model serving paths
(``transform`` of a 10k-record batch; the ``serve``/``serve-cached``
pair: the same batch pushed through the coalescing micro-batcher
in-process by concurrent clients with the transform cache off and on;
and the ``serve-keepalive``/``serve-mp`` pair: the same workload pushed
through the real HTTP front end of a ``repro serve`` subprocess over
persistent pipelined connections, single-worker and 2-worker
``SO_REUSEPORT`` respectively) on synthetic
data at n ∈ {1 000, 5 000, 20 000} and
writes the results to ``BENCH_engine.json`` at the repository root.  That
file is the repo's tracked performance trajectory: every PR that touches
the partition layer reruns this script and must not regress it.  See
``benchmarks/README.md`` for the JSON schema.

This is a standalone script, not a pytest benchmark, so CI can run it
directly::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --smoke  # CI

The synthetic dataset mirrors the paper's evaluation shape: a handful of
correlated income-like numeric quasi-identifiers plus one tie-free numeric
confidential attribute (so ``emd_mode="distinct"`` trackers apply and
Algorithm 3's bucket construction sees one record per rank).

Parameter choices: ``k = 5`` throughout; ``t = 0.05`` for tclose-first
(Eq. 3 then raises the effective cluster size to ~10 at large n);
kanon-first is timed at two levels — ``t = 0.4`` (loose: the measured cost
is the clustering loop plus the always-on tracker/merge bookkeeping) and
``t = 0.1`` (tight: tens of thousands of accepted swaps, the regime where
the sparse swap engine, the lazy pool and the adaptive scoring blocks
carry the load).

Compute backends: by default the sweep runs on the ``serial`` backend at
every size, plus ``threaded`` and ``process`` passes at the largest size
when the sweep reaches n >= 20 000 (``--threaded-at`` to change the
floor, ``--threads`` to size the pools, ``--backend`` to pin a single
backend for the whole sweep).  Every entry records its backend, the
worker count and the machine's CPU count — worker counts without the CPU
count are not interpretable, and a single-core container will (correctly)
show the parallel backends' dispatch overhead instead of a speedup.

``--ceilings FILE`` additionally asserts the recorded times against the
checked-in per-entry budgets (``benchmarks/ceilings.json``) and exits
non-zero on a breach — the CI regression tripwire for the swap/merge
phases and the serving path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Anonymizer, KAnonymity, TCloseness  # noqa: E402
from repro.backend import ProcessBackend, ThreadedBackend, resolve_backend  # noqa: E402
from repro.core.kanon_first import kanonymity_first  # noqa: E402
from repro.core.merge import microaggregation_merge  # noqa: E402
from repro.core.tclose_first import tcloseness_first  # noqa: E402
from repro.data import AttributeRole, Microdata, numeric  # noqa: E402
from repro.microagg import mdav, vmdav  # noqa: E402
from repro.serving import (  # noqa: E402
    CoalescingBatcher,
    HttpClient,
    ModelRegistry,
    TransformCache,
)

SIZES = (1_000, 5_000, 20_000)
SMOKE_SIZES = (300,)
K = 5
T_TCLOSE = 0.05
T_KANON = 0.4
T_KANON_TIGHT = 0.1
GAMMA = 0.2
SEED = 20160516  # the paper's conference date, for want of a better nothing
TRANSFORM_BATCH = 10_000
#: Serving-throughput workload: this many concurrent client coroutines,
#: each streaming the 10k-record batch through the coalescing batcher in
#: SERVE_CHUNK-row requests, for SERVE_ROUNDS passes.
SERVE_CLIENTS = 8
SERVE_ROUNDS = 2
SERVE_CHUNK = 1_250
#: Parsed-ahead requests each HTTP bench client keeps in flight on its
#: persistent connection (the pipelining half of the serve-keepalive and
#: serve-mp legs; the server's default pipeline_depth is deeper).
SERVE_PIPELINE_DEPTH = 4
#: Worker-process count of the serve-mp leg.
SERVE_MP_WORKERS = 2
#: Default smallest sweep size at which extra threaded and process passes
#: are recorded.
THREADED_AT = 20_000


def synthetic_dataset(n: int, d: int = 4, seed: int = SEED) -> Microdata:
    """Income-shaped numeric microdata with a tie-free confidential column."""
    rng = np.random.default_rng(seed + n)
    shared = rng.standard_normal(n)
    columns: dict[str, np.ndarray] = {}
    schema = []
    for i in range(d):
        latent = 0.6 * shared + 0.8 * rng.standard_normal(n)
        columns[f"qi{i}"] = 30_000.0 * np.exp(0.6 * latent)
        schema.append(numeric(f"qi{i}", role=AttributeRole.QUASI_IDENTIFIER))
    columns["secret"] = rng.permutation(np.arange(float(n)))
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


def current_commit() -> str:
    """Provenance stamp: the short HEAD hash, ``-dirty``-suffixed when the
    working tree has modifications beyond the bench output file itself.

    Every entry carries this stamp so the tracked trajectory is
    verifiable — ``scripts/check_bench_provenance.py`` (run by CI) rejects
    entries whose stamp is ``unknown``, dirty, or not a resolvable commit
    of this repository.  The output file is exempt from the dirty check
    because regenerating it is exactly the workflow being stamped:
    commit the source changes, rerun the bench from that clean tree, and
    commit the refreshed JSON (which then carries the source commit's
    hash) as a follow-up.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        head = out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover
        return "unknown"
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        dirty = any(
            line.strip() and "BENCH_engine.json" not in line
            for line in status.stdout.splitlines()
        )
    except (OSError, subprocess.CalledProcessError):  # pragma: no cover
        dirty = True
    return head + "-dirty" if dirty else head


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def serve_throughput(serving_model, encoded: np.ndarray, cache_size: int) -> tuple[float, int]:
    """Sustained serving workload: SERVE_CLIENTS concurrent clients pushing
    the encoded batch through one coalescing batcher in SERVE_CHUNK-row
    requests, SERVE_ROUNDS passes each.  Returns (seconds, total rows).

    With ``cache_size=0`` every row reaches the backend's
    nearest-representative query (the coalescing-only leg); with the cache
    sized to hold the batch, the steady-state repeats resolve in the LRU
    and the backend only sees each distinct row once.
    """
    chunks = [
        encoded[i : i + SERVE_CHUNK] for i in range(0, len(encoded), SERVE_CHUNK)
    ]

    async def run() -> None:
        batcher = CoalescingBatcher(
            serving_model,
            max_batch_rows=4096,
            max_wait_ms=0.5,
            cache=TransformCache(cache_size),
        )

        async def client() -> None:
            for _ in range(SERVE_ROUNDS):
                for chunk in chunks:
                    await batcher.assign(chunk)

        await asyncio.gather(*(client() for _ in range(SERVE_CLIENTS)))

    seconds = timed(lambda: asyncio.run(run()))
    return seconds, SERVE_CLIENTS * SERVE_ROUNDS * len(encoded)


def spawn_serve(
    registry_dir: Path,
    workers: int,
    backend_name: str,
    threads: int | None,
) -> tuple[subprocess.Popen, int]:
    """Boot a ``repro serve`` subprocess; return (process, bound port).

    Cache disabled and a 0.5 ms coalescing deadline, matching the
    in-process ``serve`` leg so the keep-alive/multi-process rows are
    comparable: the delta is purely the HTTP front end and topology.
    """
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--registry", str(registry_dir),
        "--port", "0",
        "--cache-size", "0",
        "--max-wait-ms", "0.5",
    ]
    if workers > 1:
        argv += ["--workers", str(workers)]
    if backend_name != "serial":
        argv += ["--backend", backend_name]
    env = dict(
        os.environ, PYTHONPATH=str(REPO_ROOT / "src"), PYTHONUNBUFFERED="1"
    )
    if threads is not None:
        env["REPRO_NUM_THREADS"] = str(threads)
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"bench server exited before announcing (rc={proc.wait()})"
            )
        if "model(s) on http://" in line:
            return proc, int(line.strip().rsplit(":", 1)[1])


async def _read_http_response(reader: asyncio.StreamReader) -> bytes:
    """One Content-Length-framed response body off a persistent stream."""
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    if head.split(b" ", 2)[1] != b"200":
        raise RuntimeError(f"bench request failed: {head!r}")
    return await reader.readexactly(length)


def serve_http_throughput(
    port: int, requests_raw: list[bytes], clients: int
) -> float:
    """Drive pre-serialized requests over persistent pipelined connections.

    Each of ``clients`` concurrent connections sends every raw request,
    keeping up to ``SERVE_PIPELINE_DEPTH`` in flight; request bytes are
    built outside the timed loop so the measurement is the server's HTTP
    + batcher + kernel path, not client-side JSON serialization (the
    in-process ``serve`` leg pre-encodes its rows for the same reason).
    Returns elapsed seconds.
    """

    async def one_client() -> None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        pending = 0
        for raw in requests_raw:
            writer.write(raw)
            pending += 1
            if pending >= SERVE_PIPELINE_DEPTH:
                await _read_http_response(reader)
                pending -= 1
        await writer.drain()
        while pending:
            await _read_http_response(reader)
            pending -= 1
        writer.close()
        await writer.wait_closed()

    async def run() -> None:
        await asyncio.gather(*(one_client() for _ in range(clients)))

    return timed(lambda: asyncio.run(run()))


def make_backend(name: str, threads: int | None):
    if name == "threaded":
        return ThreadedBackend(threads)
    if name == "process":
        return ProcessBackend(threads)
    return resolve_backend(name)


def run_benchmarks(
    sizes: tuple[int, ...],
    backends: tuple[str, ...],
    threads: int | None,
    threaded_at: int,
) -> list[dict]:
    commit = current_commit()
    cpus = os.cpu_count() or 1
    entries: list[dict] = []
    # One backend instance (and worker pool) per name for the whole sweep.
    instances = {name: make_backend(name, threads) for name in backends}
    batch = synthetic_dataset(TRANSFORM_BATCH, seed=SEED + 77)

    def record(
        algorithm: str,
        n: int,
        t: float | None,
        backend_name: str,
        seconds: float,
        rows_per_s: float | None = None,
        workers: int | None = None,
    ) -> None:
        backend_threads = (
            instances[backend_name].num_workers
            if backend_name != "serial"
            else None
        )
        entry = {
            "algorithm": algorithm,
            "n": n,
            "k": K,
            "t": t,
            "seconds": round(seconds, 4),
            "backend": backend_name,
            "threads": backend_threads,
            "cpus": cpus,
            "commit": commit,
        }
        if rows_per_s is not None:
            entry["rows_per_s"] = round(rows_per_s)
        if workers is not None:
            entry["workers"] = workers
        entries.append(entry)
        t_str = "-" if t is None else f"{t:g}"
        w_str = "" if backend_threads is None else f" x{backend_threads}"
        if workers is not None:
            w_str += f" w{workers}"
        r_str = "" if rows_per_s is None else f"  {rows_per_s:>10.0f} rows/s"
        print(
            f"{algorithm:>14s}  n={n:<6d} k={K} t={t_str:<5s} "
            f"[{backend_name}{w_str}] {seconds:8.3f}s{r_str}"
        )

    for n in sizes:
        data = synthetic_dataset(n)
        X = data.qi_matrix()
        for backend_name in backends:
            if backend_name != "serial" and n < threaded_at:
                continue
            backend = instances[backend_name]
            record(
                "mdav", n, None, backend_name,
                timed(lambda: mdav(X, K, backend=backend)),
            )
            record(
                "vmdav", n, None, backend_name,
                timed(lambda: vmdav(X, K, gamma=GAMMA, backend=backend)),
            )
            record(
                "tclose-first", n, T_TCLOSE, backend_name,
                timed(lambda: tcloseness_first(data, K, T_TCLOSE, backend=backend)),
            )
            record(
                "kanon-first", n, T_KANON, backend_name,
                timed(lambda: kanonymity_first(data, K, T_KANON, backend=backend)),
            )
            record(
                "kanon-first", n, T_KANON_TIGHT, backend_name,
                timed(lambda: kanonymity_first(data, K, T_KANON_TIGHT, backend=backend)),
            )
            # Algorithm 1's merge cascade, timed on its own: at tight t the
            # merge phase is the dominant cost the partner-search work
            # targets, and folding it into kanon-first's total would bury
            # a regression under the swap phase's noise.
            record(
                "merge", n, T_KANON_TIGHT, backend_name,
                timed(
                    lambda: microaggregation_merge(
                        data, K, T_KANON_TIGHT, backend=backend
                    )
                ),
            )
            # Serving throughput: one fitted model, a 10k-record batch
            # through the backend's nearest-representative query.
            model = Anonymizer(
                KAnonymity(K) & TCloseness(T_TCLOSE), backend=backend
            ).fit(data)
            record(
                "transform", n, T_TCLOSE, backend_name,
                timed(lambda: model.transform(batch)),
            )
            # Serving-layer throughput: the same model behind the
            # coalescing micro-batcher under concurrent clients, with the
            # transform cache disabled (`serve`: every row reaches the
            # backend) and sized to the batch (`serve-cached`: repeats
            # resolve in the LRU).  Rows are encoded once up front so the
            # pair isolates the assign path the batcher coalesces.
            encoded_batch = model.transform_model_.encode_batch(batch)
            for serve_algorithm, cache_size in (
                ("serve", 0),
                ("serve-cached", TRANSFORM_BATCH),
            ):
                seconds, rows = serve_throughput(
                    model.transform_model_, encoded_batch, cache_size
                )
                record(
                    serve_algorithm, n, T_TCLOSE, backend_name, seconds,
                    rows_per_s=rows / seconds,
                )
            # End-to-end HTTP serving throughput: the same workload over
            # the real front end of a `repro serve` subprocess — raw
            # request bytes pre-serialized, SERVE_CLIENTS persistent
            # connections pipelining SERVE_PIPELINE_DEPTH requests each.
            # `serve-keepalive` is one worker; `serve-mp` pre-forks
            # SERVE_MP_WORKERS sharing the port via SO_REUSEPORT (on a
            # single-CPU container the extra worker just adds scheduling
            # overhead — the cpus field keeps that honest).
            qi_labels = {
                f"qi{i}": batch.labels(f"qi{i}") for i in range(4)
            }
            requests_raw = []
            for start in range(0, len(batch), SERVE_CHUNK):
                body = json.dumps(
                    {
                        "records": {
                            name: col[start : start + SERVE_CHUNK].tolist()
                            for name, col in qi_labels.items()
                        }
                    }
                ).encode()
                requests_raw.append(
                    b"POST /v1/assign HTTP/1.1\r\nHost: bench\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
            requests_raw *= SERVE_ROUNDS
            total_rows = SERVE_CLIENTS * SERVE_ROUNDS * len(batch)
            direct_head = model.transform_model_.assign_encoded(
                encoded_batch[:SERVE_CHUNK]
            )
            with tempfile.TemporaryDirectory() as scratch:
                registry_dir = Path(scratch) / "registry"
                ModelRegistry(registry_dir).publish("bench", model)
                for serve_algorithm, n_workers in (
                    ("serve-keepalive", 1),
                    ("serve-mp", SERVE_MP_WORKERS),
                ):
                    proc, port = spawn_serve(
                        registry_dir, n_workers, backend_name, threads
                    )
                    try:
                        # Fidelity gate outside the timed loop: the HTTP
                        # answer must match the direct kernel query.
                        with HttpClient("127.0.0.1", port) as probe:
                            status, reply = probe.request(
                                "POST",
                                "/v1/assign",
                                json.loads(requests_raw[0].split(
                                    b"\r\n\r\n", 1
                                )[1]),
                            )
                        if status != 200 or reply["assignments"] != list(
                            map(int, direct_head)
                        ):
                            raise RuntimeError(
                                f"served assignments diverge ({status})"
                            )
                        seconds = serve_http_throughput(
                            port, requests_raw, SERVE_CLIENTS
                        )
                    finally:
                        proc.send_signal(signal.SIGTERM)
                        proc.communicate(timeout=60)
                    record(
                        serve_algorithm, n, T_TCLOSE, backend_name, seconds,
                        rows_per_s=total_rows / seconds,
                        workers=n_workers,
                    )
            # Checkpoint overhead: the same tight kanon-first fit through
            # the full lifecycle, plain vs checkpointed at the default
            # cadence.  Tracked as a pair so the crash-safety layer's cost
            # stays visible in the trajectory (it must remain marginal —
            # < 5% at n=20k).  Best-of-two per leg: the entries feed a
            # ratio of ~seconds-scale runs, where one bad scheduling
            # moment would otherwise dominate the comparison.
            ckpt_policy = KAnonymity(K) & TCloseness(T_KANON_TIGHT)

            def fit_kanon(checkpoint=None):
                Anonymizer(
                    ckpt_policy, method="kanon-first", backend=backend
                ).fit(data, checkpoint=checkpoint)

            record(
                "fit-kanon", n, T_KANON_TIGHT, backend_name,
                min(timed(fit_kanon) for _ in range(2)),
            )

            def fit_checkpointed() -> float:
                with tempfile.TemporaryDirectory() as scratch:
                    return timed(
                        lambda: fit_kanon(checkpoint=Path(scratch) / "ck")
                    )

            record(
                "fit-kanon-ckpt", n, T_KANON_TIGHT, backend_name,
                min(fit_checkpointed() for _ in range(2)),
            )
    return entries


def entry_key(entry: dict) -> str:
    """Ceiling-file key, e.g. ``kanon-first@n=5000,t=0.1`` (serial) or
    ``kanon-first@n=20000,t=0.1,threaded`` (non-default backends)."""
    t = "-" if entry["t"] is None else f"{entry['t']:g}"
    key = f"{entry['algorithm']}@n={entry['n']},t={t}"
    if entry.get("backend", "serial") != "serial":
        key += f",{entry['backend']}"
    return key


def check_ceilings(entries: list[dict], ceilings_path: Path) -> int:
    """Assert recorded seconds against the checked-in per-entry budgets."""
    ceilings = json.loads(ceilings_path.read_text())
    status = 0
    for entry in entries:
        key = entry_key(entry)
        if key not in ceilings:
            continue
        budget = float(ceilings[key])
        verdict = "within" if entry["seconds"] <= budget else "OVER"
        print(f"ceiling {key}: {entry['seconds']:.3f}s vs {budget:g}s — {verdict}")
        if entry["seconds"] > budget:
            status = 1
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run (n=300) that exercises the harness without the cost",
    )
    parser.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated dataset sizes overriding the default sweep",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threaded", "process"),
        default=None,
        help=(
            "pin one backend for the whole sweep (default: serial at every "
            "size plus threaded and process passes at sizes >= --threaded-at)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="parallel-backend worker count (default: $REPRO_NUM_THREADS, "
        "else the CPU count)",
    )
    parser.add_argument(
        "--threaded-at",
        type=int,
        default=THREADED_AT,
        help="smallest sweep size that also gets threaded and process passes "
        f"(default {THREADED_AT}; only in the default multi-backend mode)",
    )
    parser.add_argument(
        "--ceilings",
        type=Path,
        default=None,
        help="JSON of per-entry wall-clock budgets to assert (exit 1 on breach)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json at the repo root)",
    )
    args = parser.parse_args()

    if args.sizes is not None:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    elif args.smoke:
        sizes = SMOKE_SIZES
    else:
        sizes = SIZES
    if args.backend is not None:
        backends = (args.backend,)
        threaded_at = 0  # pinned backend runs at every size
    else:
        backends = ("serial", "threaded", "process")
        threaded_at = args.threaded_at
    entries = run_benchmarks(sizes, backends, args.threads, threaded_at)
    payload = {
        "benchmark": "engine_scaling",
        "schema": "benchmarks/README.md#bench_enginejson",
        "schema_version": 5,
        "entries": entries,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.ceilings is not None:
        return check_ceilings(entries, args.ceilings)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
