"""Table 2 — Algorithm 2 actual cluster sizes (min/avg) over the (k, t) grid.

Paper reference: sizes sit far closer to k than Algorithm 1's for the same
(k, t) — refinement happens per cluster by swapping rather than by merging,
so cardinality only grows when the merge fallback fires (smallest t).  The
HCD data set shows larger averages than MCD (correlated confidential values
resist swapping).  Default mode runs a reduced grid because Algorithm 2 is
the O(n^3/k) member of the family.
"""

from __future__ import annotations

from conftest import FULL, PAPER_KS, PAPER_TS, write_result

from repro.evaluation import format_size_table, sweep

KS = PAPER_KS if FULL else (2, 5)
TS = PAPER_TS if FULL else (0.13, 0.25)


def test_table2_cluster_sizes(benchmark, mcd, hcd):
    def run():
        return {
            "MCD": sweep(mcd, "kanon-first", ks=KS, ts=TS),
            "HCD": sweep(hcd, "kanon-first", ks=KS, ts=TS),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table2_algorithm2_sizes", format_size_table(results, ks=KS, ts=TS)
    )

    for dataset, grid in results.items():
        for cell in grid.values():
            assert cell.satisfies_t, (dataset, cell.k, cell.t)
            assert cell.min_size >= cell.k


def test_table2_beats_table1_on_size(benchmark, mcd):
    """The paper's Table 1 vs Table 2 headline at a representative cell."""
    k, t = KS[0], TS[0]

    def run():
        a1 = sweep(mcd, "merge", ks=[k], ts=[t])[(k, t)]
        a2 = sweep(mcd, "kanon-first", ks=[k], ts=[t])[(k, t)]
        return a1, a2

    a1, a2 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a2.avg_size <= a1.avg_size + 1e-9
