"""Baselines — microaggregation vs the generalization family.

The paper's Related Work argues microaggregation should beat the
generalization-based t-closeness algorithms on utility; SABRE is singled
out ("a greater number of buckets leads to equivalence classes with more
records and, thus, to more information loss").  This bench puts Algorithm 3
against SABRE and Mondrian-t on identical (k, t) cells and records class
counts, average sizes and SSE.
"""

from __future__ import annotations

from conftest import FULL, write_result

from repro.core import ConfidentialModel, tcloseness_first
from repro.evaluation import format_table
from repro.generalization import mondrian_partition, sabre
from repro.metrics import normalized_sse
from repro.microagg import aggregate_partition

K = 2
TS = (0.05, 0.15) if FULL else (0.10,)


def test_baselines_vs_tclose_first(benchmark, request):
    data = request.getfixturevalue("mcd" if FULL else "mcd_half")
    model = ConfidentialModel(data)

    def run():
        rows = {}
        for t in TS:
            ours = tcloseness_first(data, K, t)
            rows[("tclose-first", t)] = (
                ours.partition,
                float(ours.max_emd),
            )
            theirs = sabre(data, K, t)
            rows[("sabre", t)] = (theirs.partition, float(theirs.max_emd))
            mond = mondrian_partition(data, K, t=t)
            emds = model.partition_emds(list(mond.clusters()))
            rows[("mondrian-t", t)] = (mond, float(emds.max()))
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    sse = {}
    for (method, t), (partition, max_emd) in results.items():
        release = aggregate_partition(data, partition)
        score = normalized_sse(data, release)
        sse[(method, t)] = score
        table_rows.append(
            [
                method,
                f"{t:g}",
                partition.n_clusters,
                f"{partition.mean_size:.1f}",
                f"{max_emd:.4f}",
                f"{score:.5f}",
            ]
        )
        assert max_emd <= t + 1e-12, (method, t)

    write_result(
        "baselines_vs_tclose_first",
        format_table(
            ["method", "t", "#classes", "avg size", "max EMD", "SSE"],
            table_rows,
        ),
    )

    # Paper shape: microaggregation dominates the generalization family.
    for t in TS:
        assert sse[("tclose-first", t)] <= sse[("sabre", t)] * 1.05, t
        assert sse[("tclose-first", t)] <= sse[("mondrian-t", t)] * 1.05, t
