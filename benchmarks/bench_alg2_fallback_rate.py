"""Section 6's caveat, quantified: how often does raw Algorithm 2 fail?

The paper states that Algorithm 2 *alone* cannot guarantee t-closeness
(the unclustered pool can run dry before the last clusters are fixed) and
therefore wraps it in Algorithm 1's merging.  This bench measures the
actual failure rate and the size of the violation across the (k, t) grid —
evidence for why the merge fallback is not optional, and of how light its
work is (violations are few and small, so few merges repair them).
"""

from __future__ import annotations

from conftest import FULL, write_result

from repro.core import ConfidentialModel, kanonymity_first
from repro.data import load_mcd
from repro.evaluation import format_table

KS = (2, 5, 10) if FULL else (2, 5)
TS = (0.05, 0.13, 0.25) if FULL else (0.13, 0.25)


def test_raw_algorithm2_violation_rate(benchmark, request):
    data = request.getfixturevalue("mcd" if FULL else "mcd_half")

    def run():
        rows = []
        for k in KS:
            for t in TS:
                raw = kanonymity_first(data, k, t, merge_fallback=False)
                emds = raw.cluster_emds
                violating = int((emds > t + 1e-12).sum())
                rows.append(
                    {
                        "k": k,
                        "t": t,
                        "clusters": raw.partition.n_clusters,
                        "violating": violating,
                        "worst_emd": float(emds.max()),
                        "swaps": raw.info["n_swaps"],
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "alg2_fallback_rate",
        format_table(
            ["k", "t", "clusters", "violating", "worst EMD", "swaps"],
            [
                [
                    r["k"],
                    f"{r['t']:g}",
                    r["clusters"],
                    r["violating"],
                    f"{r['worst_emd']:.4f}",
                    r["swaps"],
                ]
                for r in rows
            ],
        ),
    )

    # The paper's claim: raw Algorithm 2 does violate t somewhere on the
    # grid (otherwise the fallback discussion would be moot).
    assert any(r["violating"] > 0 for r in rows)
    # Violations concentrate in the strict-t regime and fade as t loosens
    # (k=2 clusters simply cannot get below Proposition 1's ~0.125 floor
    # very often, so most of them violate at t near that floor — which is
    # exactly why the paper's Table 2 shows heavy merging at small t).
    for k in KS:
        per_k = [r for r in rows if r["k"] == k]
        per_k.sort(key=lambda r: r["t"])
        assert per_k[-1]["violating"] <= per_k[0]["violating"], k
    # At the loosest cell, violations are a small minority.
    loosest = [r for r in rows if r["k"] == KS[-1] and r["t"] == TS[-1]][0]
    assert loosest["violating"] <= max(1, loosest["clusters"] // 10)

    # Sanity: the fallback indeed repairs every one of these grids.
    model = ConfidentialModel(data)
    k, t = KS[0], TS[0]
    fixed = kanonymity_first(data, k, t, merge_fallback=True)
    assert fixed.satisfies_t
