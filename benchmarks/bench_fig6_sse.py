"""Figure 6 — normalized SSE of the three algorithms vs t (three data sets).

Paper reference (k=2): for every t, SSE(Algorithm 1) >= SSE(Algorithm 2)
>= SSE(Algorithm 3) — the earlier t-closeness enters cluster formation, the
better the utility.  Algorithm 3's advantage is largest on MCD and Patient
Discharge and smallest on HCD, where the strong QI-confidential correlation
makes cluster homogeneity and t-closeness genuinely conflicting goals.

The orderings are asserted in the strict-t regime (t <= 0.15), which is
where the paper's argument lives; at loose t all three algorithms converge
toward plain MDAV and the curves touch (also visible in the paper's plots).
"""

from __future__ import annotations

import pytest
from conftest import FULL, write_result

from repro.evaluation import format_series_table, sweep

K = 2
TS = (0.02, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25) if FULL else (0.05, 0.10, 0.15)
ALGORITHMS = ("merge", "kanon-first", "tclose-first")

#: Census sweeps run at half size by default (Algorithm 2 dominates cost).
CENSUS_FIXTURE = {"MCD": "mcd" if FULL else "mcd_half",
                  "HCD": "hcd" if FULL else "hcd_half"}


def _sse_series(data):
    series = {}
    for algorithm in ALGORITHMS:
        grid = sweep(data, algorithm, ks=[K], ts=TS)
        series[algorithm] = {t: grid[(K, t)].sse for t in TS}
    return series


def _assert_tclose_first_wins(series, *, slack=1.05):
    """Algorithm 3 has the lowest SSE in the strict-t regime."""
    for t in TS:
        if t > 0.15:
            continue
        assert series["tclose-first"][t] <= series["kanon-first"][t] * slack, t
        assert series["tclose-first"][t] <= series["merge"][t] * slack, t


@pytest.mark.parametrize("dataset_name", ["MCD", "HCD"])
def test_fig6_sse_census(benchmark, request, dataset_name):
    data = request.getfixturevalue(CENSUS_FIXTURE[dataset_name])
    series = benchmark.pedantic(
        lambda: _sse_series(data), rounds=1, iterations=1
    )
    write_result(
        f"fig6_sse_{dataset_name.lower()}",
        format_series_table(series, ts=TS, value_format="{:.5f}"),
    )
    _assert_tclose_first_wins(series)


def test_fig6_sse_patient_discharge(benchmark, patient_discharge):
    series = benchmark.pedantic(
        lambda: _sse_series(patient_discharge), rounds=1, iterations=1
    )
    write_result(
        "fig6_sse_patient_discharge",
        format_series_table(series, ts=TS, value_format="{:.5f}"),
    )
    _assert_tclose_first_wins(series)
    # Paper: Algorithm 1 behaves *significantly* worse than the other two
    # on Patient Discharge at strict t (merging is blind to the weak
    # QI-confidential correlation).
    t = TS[0]
    assert series["merge"][t] >= series["tclose-first"][t]
