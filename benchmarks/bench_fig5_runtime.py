"""Figure 5 — run time of the three algorithms vs t (Patient Discharge).

Paper reference (23,435 records, k=2, log-scale seconds): Algorithms 1 and
3 track the quadratic cost of the underlying microaggregation; Algorithm 2
sits orders of magnitude above them (cubic swap refinement) and gets
*cheaper* as t grows (clusters satisfy t sooner, less refinement);
Algorithm 3 is the fastest at small t because Eq. 3 raises the cluster size
and thereby *lowers* O(n^2/k).

The benchmark reproduces those orderings on the Patient Discharge surrogate
(subsampled by default — the paper's own point is that Algorithm 2 does not
scale; see conftest/EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import FULL, write_result

from repro.evaluation import format_series_table, sweep

K = 2
TS = (0.02, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25) if FULL else (0.05, 0.15, 0.25)
ALGORITHMS = ("merge", "kanon-first", "tclose-first")


def test_fig5_runtime_by_t(benchmark, patient_discharge):
    def run():
        series = {}
        for algorithm in ALGORITHMS:
            grid = sweep(patient_discharge, algorithm, ks=[K], ts=TS)
            series[algorithm] = {t: grid[(K, t)].runtime_s for t in TS}
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig5_runtime_seconds",
        format_series_table(series, ts=TS, value_format="{:.3f}"),
    )

    # Shape 1: Algorithm 2 is the slowest wherever refinement actually
    # bites (strict t); at loose t the swap loop short-circuits and the
    # three curves converge, as in the right edge of the paper's Figure 5.
    for t in TS:
        if t > 0.15:
            continue
        assert series["kanon-first"][t] >= series["merge"][t]
        assert series["kanon-first"][t] >= series["tclose-first"][t]

    # Shape 2: Algorithm 2's run time decreases as t loosens.
    assert series["kanon-first"][TS[-1]] <= series["kanon-first"][TS[0]]

    # Shape 3: Algorithm 3 beats Algorithm 1 at the strictest t (larger
    # analytic cluster size => fewer clusters => fewer distance passes).
    assert series["tclose-first"][TS[0]] <= series["merge"][TS[0]]
