"""Figure 7 — normalized SSE as a function of both k and t (MCD).

Paper reference: Algorithm 3 keeps the lowest SSE across the whole (k, t)
plane, but its advantage shrinks as k grows (once the user's k exceeds the
Eq. 3 size, Algorithm 3 loses its smaller-cluster edge while still paying
the bucket constraint).  Algorithms 1 and 2 show SSE spikes at k values
that do not divide n = 1,080 (remainder records degrade cluster
homogeneity); Algorithm 3 is immune because Eq. 4 re-plans the size.
"""

from __future__ import annotations

import pytest
from conftest import FULL, write_result

from repro.evaluation import format_table, sweep

KS = (2, 5, 10, 15, 20, 25, 30) if FULL else (2, 10, 30)
TS = (0.02, 0.09, 0.17, 0.25) if FULL else (0.05, 0.15, 0.25)
ALGORITHMS = ("merge", "kanon-first", "tclose-first")


def test_fig7_sse_surface(benchmark, request):
    data = request.getfixturevalue("mcd" if FULL else "mcd_half")

    def run():
        return {
            algorithm: sweep(data, algorithm, ks=KS, ts=TS)
            for algorithm in ALGORITHMS
        }

    grids = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["algorithm", "k"] + [f"t={t:g}" for t in TS]
    rows = []
    for algorithm in ALGORITHMS:
        for k in KS:
            rows.append(
                [algorithm, k]
                + [f"{grids[algorithm][(k, t)].sse:.5f}" for t in TS]
            )
    write_result("fig7_sse_k_t_surface", format_table(headers, rows))

    # Shape 1: every cell satisfies its model.
    for algorithm in ALGORITHMS:
        for cell in grids[algorithm].values():
            assert cell.satisfies_t, (algorithm, cell.k, cell.t)

    # Shape 2: at the strictest (k, t) corner Algorithm 3 is the best.
    k, t = KS[0], TS[0]
    assert (
        grids["tclose-first"][(k, t)].sse
        <= min(grids["merge"][(k, t)].sse, grids["kanon-first"][(k, t)].sse) * 1.05
    )

    # Shape 3: Algorithm 3's SSE grows with k at fixed loose t (the paper's
    # "advantages diminished when a higher k is required").
    t = TS[-1]
    assert (
        grids["tclose-first"][(KS[-1], t)].sse
        >= grids["tclose-first"][(KS[0], t)].sse - 1e-9
    )
