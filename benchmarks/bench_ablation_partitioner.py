"""Ablation C — base partitioner of Algorithm 1 (MDAV vs V-MDAV).

Algorithm 1 accepts any microaggregation heuristic; the paper uses MDAV.
This ablation swaps in V-MDAV at two extension aggressiveness levels and
asks whether the choice matters once the merge phase has run: variable
cluster sizes could, in principle, give the merge phase better raw
material.  Expected: differences are second-order compared to the
algorithm-level gaps of Figure 6 — evidence that the paper's conclusions
are not an artifact of its MDAV choice.
"""

from __future__ import annotations

from functools import partial

from conftest import FULL, write_result

from repro.core import microaggregation_merge
from repro.data import load_mcd
from repro.evaluation import format_table
from repro.metrics import normalized_sse
from repro.microagg import aggregate_partition, mdav, vmdav

K = 3
T = 0.10

PARTITIONERS = {
    "mdav": mdav,
    "vmdav(g=0.2)": partial(vmdav, gamma=0.2),
    "vmdav(g=1.0)": partial(vmdav, gamma=1.0),
}


def test_partitioner_choice(benchmark, request):
    data = request.getfixturevalue("mcd" if FULL else "mcd_half")

    def run():
        out = {}
        for name, partitioner in PARTITIONERS.items():
            result = microaggregation_merge(
                data, K, T, partitioner=partitioner
            )
            release = aggregate_partition(data, result.partition)
            out[name] = {
                "sse": normalized_sse(data, release),
                "clusters": result.partition.n_clusters,
                "avg_size": result.mean_cluster_size,
                "satisfies": result.satisfies_t,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_partitioner",
        format_table(
            ["partitioner", "SSE", "clusters", "avg size"],
            [
                [
                    name,
                    f"{stats['sse']:.5f}",
                    stats["clusters"],
                    f"{stats['avg_size']:.1f}",
                ]
                for name, stats in results.items()
            ],
        ),
    )

    for name, stats in results.items():
        assert stats["satisfies"], name

    # Partitioner choice is second-order: all SSEs within a 2x band.
    sses = [stats["sse"] for stats in results.values()]
    assert max(sses) <= 2.0 * min(sses)
