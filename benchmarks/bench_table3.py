"""Table 3 — Algorithm 3 actual cluster sizes (min/avg) over the (k, t) grid.

Paper reference: because the cluster size is computed analytically before
clustering, min = avg = max(k, k(t)) in every cell, identically for MCD and
HCD; the k=2 row reads 49/10/6/4/3/3/2 across the seven t values (1,080 is
a multiple of each, so clusters are perfectly balanced).  These are *exact*
expectations — the only data-independent table in the paper — and the
benchmark asserts them cell by cell.  Algorithm 3 is cheap, so the full
paper grid runs even at CI scale.
"""

from __future__ import annotations

from conftest import PAPER_KS, PAPER_TS, write_result

from repro.core import tclose_first_cluster_size
from repro.evaluation import format_size_table, sweep

KS = PAPER_KS
TS = PAPER_TS

#: Paper Table 3, k=2 row (identical for MCD and HCD).
PAPER_K2_ROW = {0.01: 49, 0.05: 10, 0.09: 6, 0.13: 4, 0.17: 3, 0.21: 3, 0.25: 2}


def test_table3_cluster_sizes(benchmark, mcd, hcd):
    def run():
        return {
            "MCD": sweep(mcd, "tclose-first", ks=KS, ts=TS),
            "HCD": sweep(hcd, "tclose-first", ks=KS, ts=TS),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table3_algorithm3_sizes", format_size_table(results, ks=KS, ts=TS)
    )

    n = mcd.n_records
    for dataset, grid in results.items():
        for (k, t), cell in grid.items():
            assert cell.satisfies_t, (dataset, k, t)
            k_eff = tclose_first_cluster_size(n, t, k)
            # Exact paper property: min = avg = effective k when k_eff | n.
            if n % k_eff == 0:
                assert cell.min_size == k_eff, (dataset, k, t)
                assert cell.avg_size == k_eff, (dataset, k, t)

    # The published k=2 row, verbatim.
    for t, expected in PAPER_K2_ROW.items():
        for dataset in ("MCD", "HCD"):
            cell = results[dataset][(2, t)]
            assert cell.min_size == expected, (dataset, t)

    # MCD and HCD are indistinguishable for Algorithm 3 (paper: "there are
    # no differences between the MCD and HCD data sets").
    for key in results["MCD"]:
        assert results["MCD"][key].min_size == results["HCD"][key].min_size
        assert results["MCD"][key].avg_size == results["HCD"][key].avg_size
