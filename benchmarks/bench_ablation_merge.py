"""Ablation B — merge-partner policy in Algorithm 1.

The paper merges the worst cluster with its *QI-nearest* neighbour ("we use
the distance between the quasi-identifiers ... as the quality criterion").
This ablation compares that choice against merging with the partner that
minimizes the merged EMD (greedy on privacy, blind to utility) and a
random partner, on both merge effort and final SSE.

Expected: nearest-qi yields the lowest SSE (it is the utility-aware
criterion); lowest-emd converges in fewer or equal merges but pays for it
in SSE; random is dominated.
"""

from __future__ import annotations

from conftest import FULL, write_result

from repro.core import ConfidentialModel, merge_to_t_closeness
from repro.data import load_mcd
from repro.evaluation import format_table
from repro.metrics import normalized_sse
from repro.microagg import aggregate_partition, mdav

K = 2
T = 0.05
POLICIES = ("nearest-qi", "lowest-emd", "random")


def test_merge_partner_policies(benchmark, request):
    data = request.getfixturevalue("mcd" if FULL else "mcd_half")
    X = data.qi_matrix()
    base = mdav(X, K)
    model = ConfidentialModel(data)

    def run():
        out = {}
        for policy in POLICIES:
            partition, emds, n_merges = merge_to_t_closeness(
                data, base, T, model=model, partner_policy=policy
            )
            release = aggregate_partition(data, partition)
            out[policy] = {
                "n_merges": n_merges,
                "clusters": partition.n_clusters,
                "sse": normalized_sse(data, release),
                "max_emd": float(emds.max()),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_merge_policy",
        format_table(
            ["policy", "merges", "final clusters", "SSE", "max EMD"],
            [
                [
                    policy,
                    stats["n_merges"],
                    stats["clusters"],
                    f"{stats['sse']:.5f}",
                    f"{stats['max_emd']:.4f}",
                ]
                for policy, stats in results.items()
            ],
        ),
    )

    for stats in results.values():
        assert stats["max_emd"] <= T + 1e-12

    # The paper's criterion is the utility-aware one: nearest-qi should not
    # lose to the random control on SSE.
    assert results["nearest-qi"]["sse"] <= results["random"]["sse"] * 1.10
