"""Shared hypothesis strategies for property-based tests.

`microdata()` generates small but structurally diverse Microdata tables —
mixed numeric/ordinal/nominal quasi-identifiers, a rankable confidential
attribute, optional value ties — so cross-cutting properties ("any valid
input anonymizes to a verifiable release") get exercised over the whole
schema space rather than the numeric-only happy path.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal


@st.composite
def microdata(
    draw,
    min_records: int = 8,
    max_records: int = 40,
    allow_ties: bool = True,
):
    """Strategy producing a Microdata with >= 1 QI and 1 confidential column."""
    n = draw(st.integers(min_records, max_records))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    n_numeric_qi = draw(st.integers(1, 3))
    with_ordinal_qi = draw(st.booleans())
    with_nominal_qi = draw(st.booleans())

    columns: dict[str, np.ndarray] = {}
    schema = []
    for i in range(n_numeric_qi):
        columns[f"num{i}"] = rng.normal(size=n)
        schema.append(numeric(f"num{i}", role=AttributeRole.QUASI_IDENTIFIER))
    if with_ordinal_qi:
        columns["ord"] = rng.integers(0, 4, size=n)
        schema.append(
            ordinal("ord", ("a", "b", "c", "d"), role=AttributeRole.QUASI_IDENTIFIER)
        )
    if with_nominal_qi:
        columns["nom"] = rng.integers(0, 3, size=n)
        schema.append(
            nominal("nom", ("x", "y", "z"), role=AttributeRole.QUASI_IDENTIFIER)
        )

    tied = allow_ties and draw(st.booleans())
    if tied:
        secret = rng.integers(0, max(2, n // 3), size=n).astype(float)
    else:
        secret = rng.permutation(np.arange(float(n)))
    columns["secret"] = secret
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))

    return Microdata(columns, schema)
