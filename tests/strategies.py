"""Shared hypothesis strategies for property-based tests.

`microdata()` generates small but structurally diverse Microdata tables —
mixed numeric/ordinal/nominal quasi-identifiers, configurable confidential
attributes, optional value ties — so cross-cutting properties ("any valid
input anonymizes to a verifiable release") get exercised over the whole
schema space rather than the numeric-only happy path.

The ``confidential`` parameter controls the sensitive-attribute
distribution space (:data:`SENSITIVE_KINDS`): tie-free numeric columns,
heavily tied numeric columns, skewed ordinal scales, skewed nominal
categories, and multi-attribute (ordered + categorical) schemas.  Skew is
drawn per example from Dirichlet concentrations spanning near-uniform to
one-category-dominates — the regimes where EMD trackers see empty bins,
single-bin clusters and rare categories.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal

#: Sensitive-attribute schema kinds understood by :func:`microdata`.
#: ``numeric`` — tie-free rankable floats (one bin per record);
#: ``numeric-tied`` — rankable floats over a small support (heavy bin ties);
#: ``ordinal`` — ordered categorical scale (ordered EMD over codes);
#: ``nominal`` — unordered categories (total-variation EMD);
#: ``multi`` — one ordered plus one nominal confidential attribute
#: (max-over-attributes t-closeness).
SENSITIVE_KINDS = ("numeric", "numeric-tied", "ordinal", "nominal", "multi")

#: Dirichlet concentrations for drawn category distributions: 0.3 yields
#: spiky near-degenerate distributions (rare categories), 3.0 near-uniform.
_SKEW_ALPHAS = (0.3, 1.0, 3.0)

_ORDINAL_LEVELS = ("lv0", "lv1", "lv2", "lv3", "lv4", "lv5")
_NOMINAL_LEVELS = ("c0", "c1", "c2", "c3", "c4", "c5")


def _skewed_codes(draw, rng: np.random.Generator, n: int, n_levels: int) -> np.ndarray:
    """n category codes from a drawn-skew distribution over n_levels."""
    alpha = draw(st.sampled_from(_SKEW_ALPHAS))
    probs = rng.dirichlet(np.full(n_levels, alpha))
    return rng.choice(n_levels, size=n, p=probs)


def add_sensitive_attributes(
    draw,
    rng: np.random.Generator,
    n: int,
    kind: str,
    columns: dict[str, np.ndarray],
    schema: list,
) -> None:
    """Append confidential column(s) of the given kind to a table under
    construction (see :data:`SENSITIVE_KINDS`)."""
    if kind == "numeric":
        columns["secret"] = rng.permutation(np.arange(float(n)))
        schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    elif kind == "numeric-tied":
        n_levels = draw(st.integers(2, 6))
        columns["secret"] = _skewed_codes(draw, rng, n, n_levels).astype(float)
        schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    elif kind == "ordinal":
        n_levels = draw(st.integers(2, 5))
        columns["secret"] = _skewed_codes(draw, rng, n, n_levels)
        schema.append(
            ordinal(
                "secret",
                _ORDINAL_LEVELS[:n_levels],
                role=AttributeRole.CONFIDENTIAL,
            )
        )
    elif kind == "nominal":
        n_levels = draw(st.integers(2, 5))
        columns["secret_cat"] = _skewed_codes(draw, rng, n, n_levels)
        schema.append(
            nominal(
                "secret_cat",
                _NOMINAL_LEVELS[:n_levels],
                role=AttributeRole.CONFIDENTIAL,
            )
        )
    elif kind == "multi":
        add_sensitive_attributes(draw, rng, n, "numeric-tied", columns, schema)
        add_sensitive_attributes(draw, rng, n, "nominal", columns, schema)
    else:
        raise ValueError(f"unknown sensitive kind {kind!r}")


@st.composite
def microdata(
    draw,
    min_records: int = 8,
    max_records: int = 40,
    allow_ties: bool = True,
    confidential: str | tuple[str, ...] = "legacy",
):
    """Strategy producing a Microdata with >= 1 QI and >= 1 confidential column.

    ``confidential`` selects the sensitive-attribute space: ``"legacy"``
    (default) reproduces the original behaviour — one numeric column, tied
    or tie-free per ``allow_ties`` — while a kind from
    :data:`SENSITIVE_KINDS`, a tuple of kinds, or ``"any"`` draws from the
    wider ordered/categorical distribution space.
    """
    n = draw(st.integers(min_records, max_records))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    n_numeric_qi = draw(st.integers(1, 3))
    with_ordinal_qi = draw(st.booleans())
    with_nominal_qi = draw(st.booleans())

    columns: dict[str, np.ndarray] = {}
    schema = []
    for i in range(n_numeric_qi):
        columns[f"num{i}"] = rng.normal(size=n)
        schema.append(numeric(f"num{i}", role=AttributeRole.QUASI_IDENTIFIER))
    if with_ordinal_qi:
        columns["ord"] = rng.integers(0, 4, size=n)
        schema.append(
            ordinal("ord", ("a", "b", "c", "d"), role=AttributeRole.QUASI_IDENTIFIER)
        )
    if with_nominal_qi:
        columns["nom"] = rng.integers(0, 3, size=n)
        schema.append(
            nominal("nom", ("x", "y", "z"), role=AttributeRole.QUASI_IDENTIFIER)
        )

    if confidential == "legacy":
        tied = allow_ties and draw(st.booleans())
        if tied:
            secret = rng.integers(0, max(2, n // 3), size=n).astype(float)
        else:
            secret = rng.permutation(np.arange(float(n)))
        columns["secret"] = secret
        schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    else:
        if confidential == "any":
            kinds: tuple[str, ...] = SENSITIVE_KINDS
        elif isinstance(confidential, str):
            kinds = (confidential,)
        else:
            kinds = tuple(confidential)
        kind = draw(st.sampled_from(kinds))
        add_sensitive_attributes(draw, rng, n, kind, columns, schema)

    return Microdata(columns, schema)
