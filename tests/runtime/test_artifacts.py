"""Model artifact robustness: atomic save, corruption detection, versioning.

The save contract under crashes: a fit's ``save(path)`` either leaves
the previous artifact pair fully intact, or — if the crash lands between
the two file replacements — a mismatched pair that ``load`` *refuses*
with a typed error.  Never a silently wrong model.
"""

import numpy as np
import pytest

from repro import Anonymizer, KAnonymity, TCloseness
from repro.core.model import MODEL_FORMAT_VERSION
from repro.runtime import faults
from repro.runtime.atomic import (
    ArtifactCorruptError,
    ArtifactMissingError,
    ArtifactVersionError,
)
from repro.runtime.faults import InjectedFault


@pytest.fixture(scope="module")
def fitted(mcd_small):
    return Anonymizer(KAnonymity(4) & TCloseness(0.2)).fit(mcd_small)


def _assert_loads_like(path, reference):
    loaded = Anonymizer.load(path)
    np.testing.assert_array_equal(
        loaded.result_.partition.labels, reference.result_.partition.labels
    )


class TestAtomicSave:
    def test_save_load_round_trip(self, fitted, tmp_path):
        npz, sidecar = fitted.save(tmp_path / "model.npz")
        assert npz.exists() and sidecar.exists()
        _assert_loads_like(npz, fitted)

    def test_crash_during_npz_write_keeps_old_model(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        fitted.save(path)
        before = path.read_bytes()
        faults.arm("atomic.replace", "raise", at=1)  # first replace: the npz
        with pytest.raises(InjectedFault):
            fitted.save(path)
        assert path.read_bytes() == before
        _assert_loads_like(path, fitted)  # old pair still consistent

    def test_crash_between_npz_and_sidecar_is_detected(self, fitted, tmp_path):
        """The one non-atomic window: new npz, old sidecar.  The recorded
        array checksums catch the mismatch — load refuses, typed."""
        path = tmp_path / "model.npz"
        fitted.save(path)
        faults.arm("atomic.replace", "raise", at=2)  # second replace: sidecar
        with pytest.raises(InjectedFault):
            fitted.save(path)
        # Same model re-saved: arrays identical, so this pair still loads.
        _assert_loads_like(path, fitted)

    def test_crash_on_first_ever_save_leaves_no_artifact(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        faults.arm("atomic.replace", "raise", at=1)
        with pytest.raises(InjectedFault):
            fitted.save(path)
        assert not path.exists()
        assert not path.with_suffix(".json").exists()
        assert list(tmp_path.iterdir()) == []  # no tmp residue either

    def test_crash_before_sidecar_on_first_save(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        faults.arm("atomic.replace", "raise", at=2)
        with pytest.raises(InjectedFault):
            fitted.save(path)
        assert path.exists()  # npz landed...
        with pytest.raises(ArtifactMissingError, match="sidecar"):
            Anonymizer.load(path)  # ...but the half-pair is refused, typed


class TestCorruptionDetection:
    def test_truncated_npz(self, fitted, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 3])
        with pytest.raises(ArtifactCorruptError, match="truncated or corrupted"):
            Anonymizer.load(npz)

    def test_bit_flip_in_npz_fails_checksum(self, fitted, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        blob = bytearray(npz.read_bytes())
        # Offset 300 sits inside the first array's data payload (past the
        # zip local header and the .npy preamble), not in inert metadata.
        blob[300] ^= 0x01
        npz.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError):
            Anonymizer.load(npz)

    def test_flipped_sidecar_bytes(self, fitted, tmp_path):
        npz, sidecar = fitted.save(tmp_path / "model.npz")
        text = sidecar.read_text()
        sidecar.write_text(text[: len(text) // 2])  # torn JSON
        with pytest.raises(ArtifactCorruptError, match="not valid JSON"):
            Anonymizer.load(npz)

    def test_swapped_pair_detected(self, fitted, mcd_small, tmp_path):
        """An npz from one save with the sidecar of another is refused."""
        a_npz, a_sidecar = fitted.save(tmp_path / "a.npz")
        other = Anonymizer(KAnonymity(6) & TCloseness(0.3)).fit(mcd_small)
        b_npz, b_sidecar = other.save(tmp_path / "b.npz")
        a_npz.write_bytes(b_npz.read_bytes())  # mismatched pair
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            Anonymizer.load(a_npz)

    def test_missing_npz(self, fitted, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        npz.unlink()
        with pytest.raises(ArtifactMissingError):
            Anonymizer.load(npz)


class TestVersioning:
    def test_current_version_is_2(self):
        assert MODEL_FORMAT_VERSION == 2

    def test_version_mismatch_typed_error(self, fitted, tmp_path):
        npz, sidecar = fitted.save(tmp_path / "model.npz")
        sidecar.write_text(
            sidecar.read_text().replace(
                f'"format_version": {MODEL_FORMAT_VERSION}', '"format_version": 99'
            )
        )
        with pytest.raises(ArtifactVersionError, match="format version"):
            Anonymizer.load(npz)
