"""Tests for input validation at the fit and serving boundaries."""

import numpy as np
import pytest

from repro import Anonymizer, KAnonymity, TCloseness, anonymize
from repro.core.validation import (
    BatchSchemaError,
    DataValidationError,
    ValidationError,
    validate_fit_data,
)
from repro.data import Microdata, load_mcd, nominal, numeric


def _poison(data, column, row, value):
    values = data.values(column).copy()
    values[row] = value
    return data.with_columns({column: values})


class TestFitValidation:
    def test_empty_table_rejected(self):
        data = Microdata(
            {"age": np.array([], dtype=np.float64)}, [numeric("age")]
        )
        with pytest.raises(DataValidationError, match="empty table"):
            validate_fit_data(data)

    def test_fewer_records_than_k(self, mcd_small):
        small = mcd_small.subset(range(3))
        with pytest.raises(DataValidationError, match="k=5"):
            validate_fit_data(small, k=5)
        # k = n is fine.
        validate_fit_data(small, k=3)

    def test_nan_names_column_and_row(self, mcd_small):
        column = mcd_small.quasi_identifiers[0]
        bad = _poison(mcd_small, column, 17, np.nan)
        with pytest.raises(
            DataValidationError, match=rf"{column!r}.*row 17"
        ):
            validate_fit_data(bad)

    def test_inf_rejected_in_confidential(self, mcd_small):
        column = mcd_small.confidential[0]
        bad = _poison(mcd_small, column, 3, np.inf)
        with pytest.raises(DataValidationError, match=rf"{column!r}.*row 3"):
            validate_fit_data(bad)

    def test_fit_raises_before_running(self, mcd_small):
        column = mcd_small.quasi_identifiers[0]
        bad = _poison(mcd_small, column, 0, np.nan)
        model = Anonymizer(KAnonymity(4) & TCloseness(0.2))
        with pytest.raises(DataValidationError):
            model.fit(bad)
        assert not model.is_fitted

    def test_anonymize_path_validates_too(self, mcd_small):
        bad = _poison(mcd_small, mcd_small.quasi_identifiers[0], 5, -np.inf)
        with pytest.raises(DataValidationError, match="row 5"):
            anonymize(bad, k=4, t=0.2)

    def test_errors_are_value_errors(self):
        # Compatibility contract: existing `except ValueError` keeps working.
        assert issubclass(DataValidationError, ValidationError)
        assert issubclass(BatchSchemaError, ValidationError)
        assert issubclass(ValidationError, ValueError)


class TestBatchSchema:
    @pytest.fixture(scope="class")
    def fitted(self):
        data = load_mcd(n=120)
        return Anonymizer(KAnonymity(4) & TCloseness(0.25)).fit(data), data

    def test_missing_qi_column(self, fitted):
        model, data = fitted
        batch = data.drop([data.quasi_identifiers[0]])
        with pytest.raises(BatchSchemaError, match="missing quasi-identifier"):
            model.transform(batch)

    def test_kind_mismatch_names_column(self, fitted):
        model, data = fitted
        name = data.quasi_identifiers[0]
        codes = np.zeros(data.n_records, dtype=np.int64)
        mismatched = Microdata(
            {
                **{
                    n: (codes if n == name else data.values(n))
                    for n in data.attribute_names
                },
            },
            [
                nominal(name, categories=("a", "b"), role=spec.role)
                if spec.name == name
                else spec
                for spec in data.schema
            ],
        )
        with pytest.raises(BatchSchemaError, match=repr(name)):
            model.transform(mismatched)
