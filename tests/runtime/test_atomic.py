"""Tests for the atomic-write layer: durability, typed errors, checksums."""

import numpy as np
import pytest

from repro.runtime import faults
from repro.runtime.atomic import (
    ArtifactCorruptError,
    ArtifactMissingError,
    array_checksums,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    read_json,
    read_npz,
    sha256_file,
    sweep_tmp_files,
    verify_array_checksums,
    verify_checksum,
)
from repro.runtime.faults import InjectedFault


class TestAtomicWrites:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "payload.json"
        atomic_write_json(path, {"b": 1, "a": [1, 2]})
        assert read_json(path) == {"a": [1, 2], "b": 1}

    def test_json_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(a, {"x": 1, "y": 2})
        atomic_write_json(b, {"y": 2, "x": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_npz_round_trip_bitwise(self, tmp_path):
        arrays = {
            "f": np.array([0.1, -0.0, np.pi], dtype=np.float64),
            "i": np.arange(7, dtype=np.int64),
        }
        path = tmp_path / "arrays.npz"
        atomic_write_npz(path, arrays)
        loaded = read_npz(path)
        for name, arr in arrays.items():
            assert loaded[name].dtype == arr.dtype
            assert loaded[name].tobytes() == arr.tobytes()

    def test_crash_before_replace_keeps_old_file(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"old contents")
        faults.arm("atomic.replace", "raise")
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"new contents")
        assert path.read_bytes() == b"old contents"
        # The in-flight temp file was cleaned up on the way out.
        assert list(tmp_path.glob("*.tmp-*")) == []

    def test_crash_on_fresh_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "artifact.bin"
        faults.arm("atomic.replace", "raise")
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"data")
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp-*")) == []

    def test_torn_write_is_detected_by_reader(self, tmp_path):
        path = tmp_path / "arrays.npz"
        faults.arm("atomic.replace", "torn")
        atomic_write_npz(path, {"x": np.arange(1000)})
        # The torn temp file was renamed into place: half an npz.
        with pytest.raises(ArtifactCorruptError, match="truncated or corrupted"):
            read_npz(path)

    def test_sweep_tmp_files(self, tmp_path):
        (tmp_path / "model.npz.tmp-123").write_bytes(b"junk")
        (tmp_path / "keep.npz").write_bytes(b"real")
        sweep_tmp_files(tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.npz"]


class TestTypedReadErrors:
    def test_read_json_missing(self, tmp_path):
        with pytest.raises(ArtifactMissingError, match="does not exist"):
            read_json(tmp_path / "nope.json", kind="model")

    def test_read_json_corrupt(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"truncated": ')
        with pytest.raises(ArtifactCorruptError, match="not valid JSON"):
            read_json(path)

    def test_read_json_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ArtifactCorruptError, match="JSON object"):
            read_json(path)

    def test_read_npz_missing(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            read_npz(tmp_path / "nope.npz")

    def test_read_npz_truncated(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomic_write_npz(path, {"x": np.arange(100)})
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ArtifactCorruptError, match=str(path)):
            read_npz(path)

    def test_read_npz_garbage(self, tmp_path):
        path = tmp_path / "arrays.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ArtifactCorruptError):
            read_npz(path)


class TestChecksums:
    def test_verify_checksum_passes_and_fails(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"payload")
        verify_checksum(path, sha256_file(path))
        with pytest.raises(ArtifactCorruptError, match="fails its checksum"):
            verify_checksum(path, "0" * 64, kind="model")

    def test_array_checksums_sensitive_to_dtype_and_bytes(self):
        base = {"x": np.arange(4, dtype=np.int64)}
        assert array_checksums(base) == array_checksums(
            {"x": np.arange(4, dtype=np.int64)}
        )
        as_float = {"x": np.arange(4, dtype=np.float64)}
        assert array_checksums(base)["x"] != array_checksums(as_float)["x"]

    def test_verify_array_checksums(self, tmp_path):
        arrays = {"labels": np.arange(5)}
        expected = array_checksums(arrays)
        verify_array_checksums(arrays, expected, source=tmp_path / "m.npz")
        arrays["labels"] = arrays["labels"] + 1
        with pytest.raises(ArtifactCorruptError, match="labels"):
            verify_array_checksums(arrays, expected, source=tmp_path / "m.npz")

    def test_verify_array_checksums_missing_array(self, tmp_path):
        expected = array_checksums({"gone": np.arange(3)})
        with pytest.raises(ArtifactCorruptError, match="missing recorded array"):
            verify_array_checksums({}, expected, source=tmp_path / "m.npz")
