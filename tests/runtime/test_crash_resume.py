"""Crash/resume determinism matrix.

The central robustness guarantee: a fit killed at *any* checkpoint
boundary — between phases, mid-swap-refinement, mid-merge, even between
a checkpoint's temp write and its rename — and then resumed produces
labels, EMDs and counters **bit-for-bit identical** to an uninterrupted
run.  The matrix kills fits at every planted fault point across the
algorithm paths (Algorithm 2 / kanon-first, Algorithm 3 / tclose-first,
Algorithm 1 / merge, and the policy-repair merge loop) and both
backends, plus honest ``os._exit`` process kills through the CLI.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Anonymizer, DistinctLDiversity, KAnonymity, TCloseness
from repro.core.confidential import ConfidentialModel
from repro.core.repair import enforce_policy
from repro.data import load_mcd, write_csv
from repro.runtime import (
    ArtifactMissingError,
    CheckpointStore,
    FitProgress,
    faults,
)
from repro.runtime.faults import EXIT_CODE, InjectedFault

#: Tight cadences so even a 200-record fit crosses many checkpoints.
CADENCE = dict(checkpoint_every_swaps=40, checkpoint_every_merges=2)


@pytest.fixture(scope="module")
def goldens(mcd_small):
    """Uninterrupted reference fits, one per (method, policy) under test."""
    configs = {
        "kanon-first": KAnonymity(4) & TCloseness(0.08),
        "tclose-first": KAnonymity(4) & TCloseness(0.15),
        "merge": KAnonymity(4) & TCloseness(0.1),
    }
    return {
        method: Anonymizer(policy, method=method).fit(mcd_small)
        for method, policy in configs.items()
    }


def crash_then_resume(data, golden, method, spec, directory, *, backend=None):
    """Kill a checkpointed fit at ``spec``, resume, assert bitwise equality."""
    ck = Path(directory) / "ck"
    faults.arm_from_spec(spec)
    died = False
    try:
        Anonymizer(golden.policy, method=method, backend=backend).fit(
            data, checkpoint=ck, **CADENCE
        )
    except InjectedFault:
        died = True
    finally:
        faults.clear()
    assert died, f"fault {spec!r} never fired on {method}"
    resumed = Anonymizer.resume(ck, backend=backend)
    assert_bitwise_equal(resumed, golden)
    return resumed


def assert_bitwise_equal(resumed, golden):
    np.testing.assert_array_equal(
        resumed.result_.partition.labels, golden.result_.partition.labels
    )
    assert (
        resumed.result_.cluster_emds.tobytes()
        == golden.result_.cluster_emds.tobytes()
    )
    assert resumed.result_.info == golden.result_.info
    assert resumed.release_.equals(golden.release_)


class TestKanonFirstMatrix:
    """Algorithm 2: kills inside swap refinement, the merge fallback, and
    at every phase boundary."""

    @pytest.mark.parametrize(
        "spec",
        [
            "progress:alg2@1",
            "progress:alg2@4",
            "alg2.swap@1",
            "alg2.swap@300",
            "alg2.cluster@2",
            "alg2.cluster@25",
            "merge.step@1",
            "merge.step@10",
            "progress:alg2:merge@2",
            "atomic.replace@5",
            "fit.phase:cluster",
            "fit.phase:repair",
            "fit.phase:aggregate",
            "fit.phase:verify",
        ],
    )
    def test_kill_and_resume(self, mcd_small, goldens, tmp_path, spec):
        crash_then_resume(
            mcd_small, goldens["kanon-first"], "kanon-first", spec, tmp_path
        )

    def test_double_kill(self, mcd_small, goldens, tmp_path):
        """Two successive kills with a resume between them still converge."""
        ck = tmp_path / "ck"
        golden = goldens["kanon-first"]
        for spec in ("alg2.swap@100", "merge.step@5"):
            faults.arm_from_spec(spec)
            with pytest.raises(InjectedFault):
                try:
                    Anonymizer(golden.policy, method="kanon-first").fit(
                        mcd_small, checkpoint=ck, **CADENCE
                    )
                finally:
                    faults.clear()
        resumed = Anonymizer.resume(ck)
        assert_bitwise_equal(resumed, golden)

    def test_rerunning_identical_command_continues(
        self, mcd_small, goldens, tmp_path
    ):
        """`fit --checkpoint DIR` re-run verbatim after a crash continues
        (same fingerprint re-opens the directory) — no --resume needed."""
        ck = tmp_path / "ck"
        golden = goldens["kanon-first"]
        faults.arm_from_spec("alg2.swap@250")
        with pytest.raises(InjectedFault):
            try:
                Anonymizer(golden.policy, method="kanon-first").fit(
                    mcd_small, checkpoint=ck, **CADENCE
                )
            finally:
                faults.clear()
        again = Anonymizer(golden.policy, method="kanon-first").fit(
            mcd_small, checkpoint=ck, **CADENCE
        )
        assert_bitwise_equal(again, golden)


class TestTcloseFirstMatrix:
    """Algorithm 3 path: phase-boundary kills (its clustering is one-shot
    bucketed partitioning — no long refinement loop to checkpoint inside)."""

    @pytest.mark.parametrize(
        "spec",
        ["fit.phase:cluster", "fit.phase:aggregate", "fit.phase:verify"],
    )
    def test_kill_and_resume(self, mcd_small, goldens, tmp_path, spec):
        crash_then_resume(
            mcd_small, goldens["tclose-first"], "tclose-first", spec, tmp_path
        )


class TestMergeMatrix:
    """Algorithm 1 path: kills inside its merge loop and at boundaries."""

    @pytest.mark.parametrize(
        "spec",
        [
            "merge.step@1",
            "merge.step@25",
            "progress:alg1:merge@3",
            "fit.phase:cluster",
            "fit.phase:aggregate",
        ],
    )
    def test_kill_and_resume(self, mcd_small, goldens, tmp_path, spec):
        crash_then_resume(mcd_small, goldens["merge"], "merge", spec, tmp_path)


class TestThreadedBackendMatrix:
    """The resume guarantee holds under the threaded backend, and a run
    killed under one backend matches the serial golden (backend identity)."""

    @pytest.mark.parametrize(
        "spec", ["alg2.swap@200", "merge.step@5", "fit.phase:cluster"]
    )
    def test_kill_and_resume_threaded(self, mcd_small, goldens, tmp_path, spec):
        crash_then_resume(
            mcd_small,
            goldens["kanon-first"],
            "kanon-first",
            spec,
            tmp_path,
            backend="threaded",
        )


class TestRepairMergeResume:
    """The policy-repair merge loop (``repair:merge`` stage) resumes
    bitwise — exercised directly: healthy fits rarely need repair merges,
    so the loop is driven on a deliberately violating partition."""

    def _violating_result(self, mcd_small):
        # A k-anonymous fit under a loose t leaves plenty of clusters
        # above a tight t — enforcing that tight t then merges for real.
        model = Anonymizer(
            KAnonymity(3) & TCloseness(0.9), method="tclose-first"
        ).fit(mcd_small)
        return model.result_

    def test_crash_inside_repair_merge(self, mcd_small, tmp_path):
        result = self._violating_result(mcd_small)
        policy = KAnonymity(3) & TCloseness(0.1)
        golden = enforce_policy(mcd_small, result, policy)
        assert golden.info["repair_merges"] > 0  # the loop actually runs

        store = CheckpointStore.open(
            tmp_path / "ck", config={"unit": "repair"}, data=mcd_small
        )
        progress = FitProgress(store, every_merges=2)
        faults.arm_from_spec("merge.step@3")
        with pytest.raises(InjectedFault):
            try:
                enforce_policy(mcd_small, result, policy, progress=progress)
            finally:
                faults.clear()

        fresh = FitProgress(CheckpointStore.load(tmp_path / "ck"), every_merges=2)
        repaired = enforce_policy(mcd_small, result, policy, progress=fresh)
        np.testing.assert_array_equal(
            repaired.partition.labels, golden.partition.labels
        )
        assert repaired.cluster_emds.tobytes() == golden.cluster_emds.tobytes()
        assert repaired.info == golden.info


class TestResumeErrors:
    def test_resume_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactMissingError, match="no checkpoint"):
            Anonymizer.resume(tmp_path / "nowhere")

    def test_resume_of_completed_run(self, mcd_small, goldens, tmp_path):
        golden = goldens["kanon-first"]
        ck = tmp_path / "ck"
        Anonymizer(golden.policy, method="kanon-first").fit(
            mcd_small, checkpoint=ck, **CADENCE
        )
        resumed = Anonymizer.resume(ck)
        assert_bitwise_equal(resumed, golden)


class TestProcessKillViaCLI:
    """An honest ``os._exit`` kill (no Python unwinding at all), injected
    into a subprocess via ``REPRO_FAULTS``, resumed through the CLI."""

    ARGS = [
        "--qi",
        "TAXINC,POTHVAL",
        "--confidential",
        "FEDTAX",
        "--require",
        "k=4,t=0.08",
        "--method",
        "kanon-first",
    ]

    def _run(self, argv, *, env_faults=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env.pop("REPRO_FAULTS", None)
        if env_faults:
            env["REPRO_FAULTS"] = env_faults
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_exit_kill_then_cli_resume(self, tmp_path):
        csv = tmp_path / "census.csv"
        write_csv(load_mcd(n=200), csv)
        golden_model = tmp_path / "golden.npz"
        golden_release = tmp_path / "golden-release.csv"
        proc = self._run(
            [
                "fit",
                str(csv),
                str(golden_model),
                *self.ARGS,
                "--release",
                str(golden_release),
            ]
        )
        assert proc.returncode == 0, proc.stderr

        ck = tmp_path / "ck"
        model = tmp_path / "model.npz"
        release = tmp_path / "release.csv"
        killed = self._run(
            ["fit", str(csv), str(model), *self.ARGS, "--checkpoint", str(ck)],
            env_faults="alg2.swap@150=exit",
        )
        assert killed.returncode == EXIT_CODE
        assert not model.exists()  # died mid-fit: no artifact at all

        resumed = self._run(
            [
                "fit",
                str(csv),
                str(model),
                *self.ARGS,
                "--resume",
                str(ck),
                "--release",
                str(release),
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert release.read_bytes() == golden_release.read_bytes()
        with np.load(model) as got, np.load(golden_model) as want:
            assert set(got.files) == set(want.files)
            for name in got.files:
                assert got[name].tobytes() == want[name].tobytes()

    def test_cli_resume_missing_directory_exits_2(self, tmp_path):
        proc = self._run(
            [
                "fit",
                "unused.csv",
                str(tmp_path / "m.npz"),
                *self.ARGS,
                "--resume",
                str(tmp_path / "nowhere"),
            ]
        )
        assert proc.returncode == 2
        assert "no checkpoint found" in proc.stderr
