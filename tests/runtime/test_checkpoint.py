"""Tests for state serialization, the checkpoint store and progress ticks."""

import json

import numpy as np
import pytest

from repro import KAnonymity, TCloseness
from repro.runtime import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactVersionError,
    CheckpointStore,
    FitProgress,
)
from repro.runtime import checkpoint as checkpoint_mod
from repro.runtime.checkpoint import (
    accepts_progress,
    read_state_file,
    write_state_bytes,
)
from repro.runtime.serialize import data_fingerprint, pack_state, unpack_state


def _config():
    policy = KAnonymity(4) & TCloseness(0.2)
    return {"policy": policy.to_dict(), "method": "kanon-first", "repair": True}


class TestStateSerialization:
    def test_round_trip_bitwise(self, tmp_path):
        rng = np.random.default_rng(0)
        tree = {
            "members": np.arange(10, dtype=np.int64),
            "emds": rng.random(7),
            "nested": {"deep": {"x": rng.standard_normal(3)}},
            "meta": {
                "n_swaps": 42,
                "flag": True,
                "none": None,
                "rng": rng.bit_generator.state,
            },
        }
        arrays, scalars = pack_state(tree)
        back = unpack_state(arrays, scalars)
        assert back["members"].tobytes() == tree["members"].tobytes()
        assert back["emds"].tobytes() == tree["emds"].tobytes()
        assert (
            back["nested"]["deep"]["x"].tobytes()
            == tree["nested"]["deep"]["x"].tobytes()
        )
        assert back["meta"]["n_swaps"] == 42
        assert back["meta"]["flag"] is True
        assert back["meta"]["none"] is None
        # The RNG state dict (with > 2**64 integers) survives exactly.
        assert back["meta"]["rng"] == tree["meta"]["rng"]

    def test_state_file_round_trip(self, tmp_path):
        tree = {"x": np.linspace(0, 1, 5), "meta": {"units": 3}}
        path = tmp_path / "state.npz"
        path.write_bytes(write_state_bytes(tree))
        back = read_state_file(path)
        assert back["x"].tobytes() == tree["x"].tobytes()
        assert back["meta"]["units"] == 3

    def test_state_file_version_guard(self, tmp_path, monkeypatch):
        tree = {"x": np.arange(3)}
        monkeypatch.setattr(checkpoint_mod, "CHECKPOINT_FORMAT_VERSION", 99)
        blob = write_state_bytes(tree)
        monkeypatch.undo()
        path = tmp_path / "state.npz"
        path.write_bytes(blob)
        with pytest.raises(ArtifactVersionError, match="format version"):
            read_state_file(path)

    def test_fingerprint_separates_data_and_config(self, mcd_small):
        config = _config()
        base = data_fingerprint(mcd_small, config)
        assert base == data_fingerprint(mcd_small, config)
        other = dict(config, method="merge")
        assert base != data_fingerprint(mcd_small, other)

    def test_accepts_progress(self):
        def with_kw(data, *, progress=None):
            return None

        def without(data, **kwargs):
            return None

        assert accepts_progress(with_kw)
        assert not accepts_progress(without)


class TestCheckpointStore:
    def test_fresh_open_writes_layout(self, tmp_path, mcd_small):
        store = CheckpointStore.open(
            tmp_path / "ck", config=_config(), data=mcd_small
        )
        names = sorted(p.name for p in (tmp_path / "ck").iterdir())
        assert names == ["config.json", "data.npz", "manifest.json"]
        assert store.config["method"] == "kanon-first"
        loaded = store.load_data()
        for name in mcd_small.attribute_names:
            assert (
                loaded.values(name).tobytes() == mcd_small.values(name).tobytes()
            )

    def test_reopen_same_fingerprint(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        CheckpointStore.open(directory, config=_config(), data=mcd_small)
        again = CheckpointStore.open(directory, config=_config(), data=mcd_small)
        assert again.fingerprint == CheckpointStore.load(directory).fingerprint

    def test_open_refuses_different_fit(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        CheckpointStore.open(directory, config=_config(), data=mcd_small)
        other = dict(_config(), method="merge")
        with pytest.raises(ArtifactError, match="different fit"):
            CheckpointStore.open(directory, config=other, data=mcd_small)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactMissingError, match="no checkpoint found"):
            CheckpointStore.load(tmp_path / "nowhere")

    def test_phase_lifecycle_clears_progress(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        store = CheckpointStore.open(directory, config=_config(), data=mcd_small)
        store.write_progress("alg2", 10, {"x": np.arange(3)})
        store.write_progress("alg2", 20, {"x": np.arange(6)})
        assert store.progress_units("alg2") == 20
        # Sequence-numbered: superseded snapshot is gone, latest remains.
        progress_files = sorted(directory.glob("progress-*.npz"))
        assert [p.name for p in progress_files] == ["progress-alg2.000002.npz"]

        assert not store.phase_done("cluster")
        store.complete_phase("cluster", {"labels": np.arange(8), "meta": {"s": 1}})
        assert store.phase_done("cluster")
        assert store.load_progress("alg2") is None
        assert list(directory.glob("progress-*.npz")) == []
        back = store.load_phase("cluster")
        assert back["labels"].tolist() == list(range(8))

        # A fresh handle on the directory sees the same committed view.
        resumed = CheckpointStore.load(directory)
        assert resumed.phase_done("cluster")
        assert resumed.load_progress("alg2") is None

    def test_corrupt_phase_file_detected(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        store = CheckpointStore.open(directory, config=_config(), data=mcd_small)
        store.complete_phase("cluster", {"labels": np.arange(4)})
        target = directory / "phase-cluster.npz"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            CheckpointStore.load(directory).load_phase("cluster")

    def test_mixed_directory_detected(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        CheckpointStore.open(directory, config=_config(), data=mcd_small)
        config_path = directory / "config.json"
        payload = json.loads(config_path.read_text())
        payload["fingerprint"] = "f" * 64
        config_path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactCorruptError, match="different runs"):
            CheckpointStore.load(directory)

    def test_manifest_version_guard(self, tmp_path, mcd_small):
        directory = tmp_path / "ck"
        CheckpointStore.open(directory, config=_config(), data=mcd_small)
        manifest_path = directory / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = 99
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactVersionError, match="format version 99"):
            CheckpointStore.load(directory)

    def test_verify_against_other_data(self, tmp_path, mcd_small):
        from repro.data import load_mcd

        directory = tmp_path / "ck"
        store = CheckpointStore.open(directory, config=_config(), data=mcd_small)
        store.verify_against(mcd_small)
        with pytest.raises(ArtifactError, match="different data"):
            store.verify_against(load_mcd(n=150))


class TestFitProgress:
    def test_cadence_gates_writes(self, tmp_path, mcd_small):
        store = CheckpointStore.open(
            tmp_path / "ck", config=_config(), data=mcd_small
        )
        progress = FitProgress(store, every_swaps=10, every_merges=2)
        calls = []

        def state():
            calls.append(1)
            return {"x": np.arange(2)}

        assert not progress.tick("alg2", 5, state)
        assert calls == []  # the thunk never ran below the cadence
        assert progress.tick("alg2", 10, state)
        assert not progress.tick("alg2", 15, state)
        assert progress.tick("alg2", 20, state)
        # Merge stages use the merge cadence.
        assert not progress.tick("alg2:merge", 1, state)
        assert progress.tick("alg2:merge", 2, state)

    def test_force_bypasses_cadence(self, tmp_path, mcd_small):
        store = CheckpointStore.open(
            tmp_path / "ck", config=_config(), data=mcd_small
        )
        progress = FitProgress(store, every_swaps=1000)
        assert progress.tick("alg2", 1, lambda: {"x": np.arange(1)}, force=True)
        assert store.progress_units("alg2") == 1

    def test_load_restores_cadence_origin(self, tmp_path, mcd_small):
        store = CheckpointStore.open(
            tmp_path / "ck", config=_config(), data=mcd_small
        )
        progress = FitProgress(store, every_swaps=10)
        progress.tick("alg2", 10, lambda: {"x": np.arange(1)})
        fresh = FitProgress(store, every_swaps=10)
        assert fresh.load("alg2") is not None
        # Units 15 is only 5 past the restored snapshot: gate stays closed.
        assert not fresh.tick("alg2", 15, lambda: {"x": np.arange(1)})
        assert fresh.tick("alg2", 20, lambda: {"x": np.arange(1)})

    def test_rejects_bad_cadence(self, tmp_path, mcd_small):
        store = CheckpointStore.open(
            tmp_path / "ck", config=_config(), data=mcd_small
        )
        with pytest.raises(ValueError, match="cadence"):
            FitProgress(store, every_swaps=0)
