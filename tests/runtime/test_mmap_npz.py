"""Memory-mapped npz reads: value-identical, read-only, damage-typed.

``read_npz(mmap_mode="r")`` parses the zip members itself (``np.load``
cannot mmap ``.npz``), so this suite pins the things that parsing could
get wrong: every array is value- and dtype-identical to the copying
read across shapes and dtypes, the views are read-only and file-backed,
checksum verification works on them, odd members (compressed, empty,
0-d) fall back to in-memory reads, and damage still surfaces as the
typed :class:`ArtifactCorruptError` — never a bare numpy traceback.
"""

import numpy as np
import pytest

from repro.runtime.atomic import (
    ArtifactCorruptError,
    ArtifactMissingError,
    array_checksums,
    atomic_write_npz,
    read_npz,
    verify_array_checksums,
)

ARRAYS = {
    "floats2d": np.arange(24, dtype=np.float64).reshape(6, 4),
    "ints": np.arange(-5, 5, dtype=np.int64),
    "bools": np.array([True, False, True]),
    "f32": np.linspace(0, 1, 7, dtype=np.float32),
    "scalar0d": np.array(3.5),
    "empty": np.empty((0, 3), dtype=np.float64),
}


@pytest.fixture()
def npz_path(tmp_path):
    return atomic_write_npz(tmp_path / "arrays.npz", ARRAYS)


class TestMmapRead:
    def test_values_identical_to_copy_read(self, npz_path):
        copied = read_npz(npz_path)
        mapped = read_npz(npz_path, mmap_mode="r")
        assert sorted(mapped) == sorted(copied)
        for name in copied:
            assert mapped[name].dtype == copied[name].dtype
            assert mapped[name].shape == copied[name].shape
            np.testing.assert_array_equal(mapped[name], copied[name])

    def test_mapped_arrays_are_read_only_views(self, npz_path):
        mapped = read_npz(npz_path, mmap_mode="r")
        arr = mapped["floats2d"]
        assert isinstance(arr, np.ndarray)
        assert not arr.flags.writeable
        assert not arr.flags.owndata  # file-backed, not a private copy
        with pytest.raises((ValueError, RuntimeError)):
            arr[0, 0] = 99.0

    def test_checksums_verify_on_mapped_arrays(self, npz_path):
        expected = array_checksums(ARRAYS)
        mapped = read_npz(npz_path, mmap_mode="r")
        verify_array_checksums(mapped, expected, source=npz_path)

    def test_compressed_archive_falls_back_in_memory(self, tmp_path):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, **ARRAYS)
        mapped = read_npz(path, mmap_mode="r")
        for name, reference in ARRAYS.items():
            np.testing.assert_array_equal(mapped[name], reference)

    def test_rejects_other_modes(self, npz_path):
        with pytest.raises(ValueError, match="mmap_mode"):
            read_npz(npz_path, mmap_mode="r+")


class TestMmapDamageContract:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactMissingError):
            read_npz(tmp_path / "ghost.npz", mmap_mode="r")

    def test_truncated_archive(self, npz_path):
        data = npz_path.read_bytes()
        npz_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactCorruptError, match="truncated or corrupted"):
            read_npz(npz_path, mmap_mode="r")

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ArtifactCorruptError):
            read_npz(path, mmap_mode="r")
