"""Unit tests for the fault-injection harness itself."""

import pytest

from repro.runtime import faults
from repro.runtime.faults import EXIT_CODE, InjectedFault, fault_point, parse_spec


class TestParseSpec:
    def test_defaults(self):
        assert parse_spec("alg2.swap") == ("alg2.swap", 1, "raise")

    def test_full_form(self):
        assert parse_spec("merge.step@7=exit") == ("merge.step", 7, "exit")

    def test_action_without_count(self):
        assert parse_spec("atomic.replace=torn") == ("atomic.replace", 1, "torn")

    @pytest.mark.parametrize(
        "bad",
        ["=raise", "x@zero", "x@0", "x@-3", "x=explode", "@2"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)


class TestArming:
    def test_fires_on_nth_hit_then_disarms(self):
        faults.arm("pt", "raise", at=3)
        fault_point("pt")
        fault_point("pt")
        with pytest.raises(InjectedFault) as excinfo:
            fault_point("pt")
        assert excinfo.value.name == "pt"
        # One-shot: the fourth hit is a no-op.
        fault_point("pt")
        assert "pt" not in faults.armed()

    def test_unarmed_points_are_noops(self):
        faults.arm("other", "raise")
        fault_point("pt")  # different name: nothing happens
        assert faults.armed() == {"other": "raise@1"}

    def test_arm_from_spec_multiple(self):
        faults.arm_from_spec("a@2=raise, b=torn,")
        assert faults.armed() == {"a": "raise@2", "b": "torn@1"}

    def test_arm_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            faults.arm("pt", "explode")
        with pytest.raises(ValueError):
            faults.arm("pt", "raise", at=0)

    def test_load_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.point@5=exit")
        faults.load_env()
        assert faults.armed() == {"env.point": "exit@5"}

    def test_exit_action_constant(self):
        # The subprocess tests assert on this exact exit code.
        assert EXIT_CODE == 73


class TestInjectedFault:
    def test_is_base_exception_not_exception(self):
        # An injected crash must tear through `except Exception` recovery
        # blocks the way a kill signal would.
        assert issubclass(InjectedFault, BaseException)
        assert not issubclass(InjectedFault, Exception)

    def test_except_exception_cannot_swallow_it(self):
        faults.arm("pt", "raise")
        with pytest.raises(InjectedFault):
            try:
                fault_point("pt")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("InjectedFault was swallowed by `except Exception`")
