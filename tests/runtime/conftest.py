"""Shared fixtures for the crash-safety suite.

Every test in this package runs with a clean fault registry: an autouse
fixture disarms all fault points before and after each test, so an armed
fault can never leak into a neighbouring test (or worse, into another
suite's ``save()`` call).
"""

import pytest

from repro.data import load_mcd
from repro.runtime import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=200)
