"""Failure-path and plumbing tests for the process backend.

The happy-path bit-for-bit contract is pinned by the backend-parametrized
equivalence/golden/invariant suites (``tests/backends.py``); this file
covers what those can't reach — shared-memory segment lifecycle, the
foreign-array serial fallbacks, worker crash recovery and environment
resolution.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.backend.process as process_mod
from repro.backend import BACKEND_ENV, resolve_backend
from repro.backend.process import ProcessBackend
from repro.microagg.engine import ClusteringEngine


@pytest.fixture
def backend():
    b = ProcessBackend(2, min_rows=8, min_assign_rows=8, min_shm_bytes=1)
    yield b
    b.close()


class TestSharedMemoryLifecycle:
    def test_empty_allocates_inside_an_owned_segment(self, backend):
        arr = backend.empty((3, 40))
        assert arr.shape == (3, 40) and arr.dtype == np.float64
        desc = backend._locate(arr)
        assert desc is not None and desc[0] in backend._segments

    def test_prefix_slice_of_a_segment_is_locatable(self, backend):
        arr = backend.empty(100)
        name, offset, shape = backend._locate(arr[:37])
        assert shape == (37,) and offset == 0
        assert name == backend._locate(arr)[0]

    def test_small_buffers_fall_back_to_plain_arrays(self):
        b = ProcessBackend(2, min_shm_bytes=1 << 20)
        try:
            arr = b.empty(16)
            assert b._locate(arr) is None
            assert b._segments == {}
        finally:
            b.close()

    def test_foreign_arrays_are_not_located(self, backend):
        assert backend._locate(np.empty(64)) is None
        assert backend._locate(np.empty(64, dtype=np.float32)) is None

    def test_segment_released_when_array_dies(self, backend):
        arr = backend.empty(64)
        name = backend._locate(arr)[0]
        del arr
        assert name not in backend._segments

    def test_close_unlinks_everything_and_stays_usable(self, backend):
        keep = backend.empty(64)  # noqa: F841 - held across close()
        backend.close()
        assert backend._segments == {}
        # Fresh pool + fresh segments after close: still a live backend.
        values = backend.empty(64)
        values[:] = np.arange(64.0)
        assert backend.argmin(values) == 0


class TestFallbacks:
    def test_selections_on_foreign_arrays_match_serial(self, backend):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(4096)  # not backend-allocated
        assert backend.argmin(values) == int(np.argmin(values))
        assert backend.argmax(values) == int(np.argmax(values))
        assert backend.kth_smallest_value(values, 5) == float(
            np.partition(values, 4)[:5].max()
        )

    def test_sharded_selections_match_serial(self, backend):
        rng = np.random.default_rng(6)
        values = backend.empty(4096)
        values[:] = rng.standard_normal(4096)
        # Exact duplicate of the minimum in a later shard: the merge must
        # keep the lowest index.
        lo = int(np.argmin(values))
        values[4000] = values[lo]
        assert backend.argmin(values) == min(lo, 4000)
        assert backend.kth_smallest_value(values, 7) == float(
            np.partition(np.asarray(values), 6)[:7].max()
        )

    def test_assign_nearest_staging_matches_serial(self, backend):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((3000, 3))
        reps = rng.standard_normal((11, 3))
        expected = resolve_backend("serial").assign_nearest(X, reps)
        np.testing.assert_array_equal(backend.assign_nearest(X, reps), expected)
        # Staged segments are throwaway: nothing owned is left behind.
        assert backend._segments == {}


class TestWorkerFailures:
    def test_broken_pool_is_discarded_for_the_next_call(self, backend):
        values = backend.empty(1024)
        values[:] = np.arange(1024.0)
        assert backend.argmin(values) == 0
        # Kill every worker out from under the pool.
        for pid in list(backend._pool._processes):
            os.kill(pid, 9)
        with pytest.raises(Exception) as excinfo:
            backend._run(
                [(process_mod._argext_shard, backend._locate(values), 0, 512, True)]
            )
        assert "process pool" in str(excinfo.value).lower()
        assert backend._pool is None
        # A fresh pool serves the next call.
        assert backend.argmin(values) == 0

    def test_worker_exception_propagates(self, backend):
        values = backend.empty(64)
        desc = backend._locate(values)
        bad = (desc[0], desc[1], (10**9,))  # descriptor overruns the segment
        with pytest.raises(TypeError):
            backend._run([(process_mod._argext_shard, bad, 0, 8, True)])
        # Ordinary exceptions don't break the pool.
        assert backend._pool is not None


class TestEngineAndEnvironment:
    def test_engine_buffers_come_from_the_backend(self, backend):
        rng = np.random.default_rng(9)
        engine = ClusteringEngine(rng.standard_normal((50, 3)), backend=backend)
        assert backend._locate(engine._XwT) is not None
        assert backend._locate(engine._d2) is not None

    def test_env_resolution_constructs_a_process_backend(self):
        code = (
            "import os; os.environ['REPRO_NUM_THREADS'] = '2'; "
            f"os.environ['{BACKEND_ENV}'] = 'process'; "
            "from repro.backend import ProcessBackend, resolve_backend; "
            "b = resolve_backend(None); "
            "assert isinstance(b, ProcessBackend), type(b); "
            "assert b.num_workers == 2; "
            "print('env ok')"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert "env ok" in proc.stdout
