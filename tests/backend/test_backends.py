"""Unit contracts of the compute-backend layer.

Three kinds of guarantees are pinned here:

* **registry & resolution** — ``BACKENDS`` discovery, the ``REPRO_BACKEND``
  environment default, instance pass-through, and the shared default
  instances;
* **bit-for-bit primitive equivalence** — every threaded primitive
  (sharded kernel evaluation, per-shard argmin/argmax merging, the
  k-th-smallest bound, candidate-axis scoring shards, row-sharded
  nearest-representative assignment) must reproduce the serial bodies
  exactly, including on adversarial all-ties inputs where a wrong merge
  rule would pick a different index;
* **batched swap scoring** — ``swap_emds_batch`` rows equal the
  one-candidate ``swap_emds`` vectors bitwise for ordered and nominal
  trackers, and a committed swap lands on the same float either way.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV,
    NUM_THREADS_ENV,
    ComputeBackend,
    SerialBackend,
    ThreadedBackend,
    accepts_backend,
    num_threads_default,
    resolve_backend,
)
from repro.backend import base as backend_base
from repro.distance.emd import (
    ClusterEMDTracker,
    NominalClusterTracker,
    NominalEMDReference,
    OrderedEMDReference,
)
from repro.registry import BACKENDS, RegistryError

from ..backends import threaded_for_tests


@pytest.fixture
def fresh_default_instances(monkeypatch):
    """Isolate the process-wide default-instance cache per test."""
    monkeypatch.setattr(backend_base, "_DEFAULT_INSTANCES", {})


class TestRegistryAndResolution:
    def test_builtins_registered(self):
        assert {"serial", "threaded"} <= set(BACKENDS)

    def test_resolve_by_name_returns_shared_instance(self, fresh_default_instances):
        first = resolve_backend("serial")
        assert isinstance(first, SerialBackend)
        assert resolve_backend("serial") is first

    def test_resolve_none_reads_env(self, fresh_default_instances, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "threaded")
        assert isinstance(resolve_backend(None), ThreadedBackend)
        monkeypatch.delenv(BACKEND_ENV)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_resolve_instance_passthrough(self):
        backend = ThreadedBackend(num_threads=2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises_listing_alternatives(self):
        with pytest.raises(RegistryError, match="serial"):
            resolve_backend("gpu")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_num_threads_env(self, monkeypatch):
        monkeypatch.setenv(NUM_THREADS_ENV, "3")
        assert num_threads_default() == 3
        assert ThreadedBackend().num_workers == 3
        monkeypatch.setenv(NUM_THREADS_ENV, "0")
        with pytest.raises(ValueError):
            num_threads_default()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ThreadedBackend(num_threads=0)
        with pytest.raises(ValueError):
            ThreadedBackend(num_threads=2, min_rows=0)

    def test_accepts_backend(self):
        def with_backend(X, k, *, backend=None):
            return None

        def without(X, k):
            return None

        def with_kwargs(X, k, **kwargs):
            return None

        assert accepts_backend(with_backend)
        assert not accepts_backend(without)
        assert not accepts_backend(with_kwargs)


class TestPrimitiveEquivalence:
    """Threaded primitives == serial primitives, bitwise, ties included."""

    @pytest.fixture(scope="class")
    def backends(self):
        return ComputeBackend(), threaded_for_tests(3)

    def eval_both(self, backends, X, point, chunk_size=None):
        serial, threaded = backends
        n = X.shape[0]
        outs = []
        for backend in (serial, threaded):
            out, tmp = np.empty(n), np.empty(n)
            backend.eval_sq_distances(X.T.copy(), point, out, tmp, n, chunk_size)
            outs.append(out)
        return outs

    @pytest.mark.parametrize("chunk_size", [None, 7, 64])
    def test_eval_sq_distances_identical(self, backends, chunk_size):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((501, 4))
        point = rng.standard_normal(4)
        out_s, out_t = self.eval_both(backends, X, point, chunk_size)
        np.testing.assert_array_equal(out_s, out_t)

    def test_eval_sq_distances_integer_ties(self, backends):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 3, size=(300, 2)).astype(float)
        out_s, out_t = self.eval_both(backends, X, X[5].copy())
        np.testing.assert_array_equal(out_s, out_t)

    @pytest.mark.parametrize(
        "values",
        [
            np.zeros(100),  # all ties: index 0 must win everywhere
            np.concatenate([np.full(50, 2.0), np.full(50, 1.0), np.full(50, 2.0)]),
            np.arange(100.0)[::-1].copy(),
            np.array([np.inf] * 30 + [3.0] + [np.inf] * 30),
            np.array([-np.inf] * 9 + [1.0]),
        ],
    )
    def test_argmin_argmax_identical(self, backends, values):
        serial, threaded = backends
        assert threaded.argmin(values) == serial.argmin(values) == int(np.argmin(values))
        assert threaded.argmax(values) == serial.argmax(values) == int(np.argmax(values))

    def test_argminmax_random(self, backends):
        serial, threaded = backends
        rng = np.random.default_rng(2)
        for _ in range(100):
            values = rng.integers(0, 5, size=int(rng.integers(1, 200))).astype(float)
            assert threaded.argmin(values) == int(np.argmin(values))
            assert threaded.argmax(values) == int(np.argmax(values))

    def test_kth_smallest_value(self, backends):
        serial, threaded = backends
        rng = np.random.default_rng(3)
        for _ in range(100):
            n = int(rng.integers(1, 300))
            values = rng.integers(0, 8, size=n).astype(float)
            k = int(rng.integers(1, n + 1))
            assert threaded.kth_smallest_value(values, k) == serial.kth_smallest_value(
                values, k
            )

    def test_assign_nearest_identical_and_tie_rule(self, backends):
        serial, threaded = backends
        rng = np.random.default_rng(4)
        reps = rng.integers(0, 3, size=(23, 3)).astype(float)
        reps[7] = reps[3]  # duplicated representative: lowest id must win
        X = np.vstack([reps, rng.integers(0, 3, size=(400, 3)).astype(float)])
        out_s = serial.assign_nearest(X, reps)
        out_t = threaded.assign_nearest(X, reps)
        np.testing.assert_array_equal(out_s, out_t)
        assert out_s[7] == 3  # the duplicate resolves to the lower cluster id

    def test_assign_nearest_validation(self, backends):
        serial, threaded = backends
        for backend in backends:
            with pytest.raises(ValueError):
                backend.assign_nearest(np.zeros((3, 2)), np.zeros((0, 2)))
            with pytest.raises(ValueError):
                backend.assign_nearest(np.zeros((3, 2)), np.zeros((4, 3)))

    def test_threaded_close_is_idempotent_and_reusable(self):
        backend = threaded_for_tests(2)
        values = np.arange(100.0)
        assert backend.argmin(values) == 0
        backend.close()
        backend.close()
        assert backend.argmax(values) == 99  # pool is lazily recreated
        backend.close()


def _ordered_tracker(rng, n=120):
    vals = rng.integers(0, max(2, n // 2), size=n).astype(float)
    ref = OrderedEMDReference(vals, mode="distinct")
    c = int(rng.integers(2, 10))
    return ClusterEMDTracker(ref, ref.bins_of(rng.choice(vals, size=c))), ref


class TestSwapEmdsBatch:
    def test_ordered_rows_bitwise_equal_single(self):
        rng = np.random.default_rng(10)
        for _ in range(50):
            tracker, ref = _ordered_tracker(rng)
            removes = tracker._member_bins.copy()
            adds = rng.integers(0, ref.m, size=int(rng.integers(1, 16)))
            batch = tracker.swap_emds_batch(removes, adds)
            assert batch.shape == (adds.size, removes.size)
            for b, add in enumerate(adds):
                np.testing.assert_array_equal(
                    batch[b], tracker.swap_emds(removes, int(add))
                )

    def test_ordered_apply_commits_same_float_after_batch(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            batch_tr, ref = _ordered_tracker(rng)
            single_tr = ClusterEMDTracker(ref, batch_tr._member_bins.copy())
            removes = batch_tr._member_bins.copy()
            add = int(rng.integers(0, ref.m))
            j = int(rng.integers(0, removes.size))
            if removes[j] == add:
                continue
            batch_tr.swap_emds_batch(removes, np.array([add]))
            single_tr.swap_emds(removes, add)  # populates the scoring cache
            batch_tr.apply_swap(int(removes[j]), add)
            single_tr.apply_swap(int(removes[j]), add)
            # Committed EMD identical whether the score came from the batch
            # pass (recomputed on commit) or the cached scoring pass.
            assert batch_tr.emd == single_tr.emd
            np.testing.assert_array_equal(
                batch_tr._member_bins, single_tr._member_bins
            )

    def test_ordered_batch_is_read_only(self):
        rng = np.random.default_rng(12)
        tracker, ref = _ordered_tracker(rng)
        state = (
            tracker._member_bins.copy(),
            tracker._uniq.copy(),
            tracker._cum_counts.copy(),
            tracker.emd,
        )
        tracker.swap_emds_batch(
            tracker._member_bins.copy(), np.arange(min(8, ref.m))
        )
        np.testing.assert_array_equal(tracker._member_bins, state[0])
        np.testing.assert_array_equal(tracker._uniq, state[1])
        np.testing.assert_array_equal(tracker._cum_counts, state[2])
        assert tracker.emd == state[3]

    def test_ordered_batch_validation_and_noop(self):
        rng = np.random.default_rng(13)
        tracker, ref = _ordered_tracker(rng)
        removes = tracker._member_bins.copy()
        with pytest.raises(IndexError):
            tracker.swap_emds_batch(removes, np.array([ref.m]))
        with pytest.raises(IndexError):
            tracker.swap_emds_batch(np.array([-1]), np.array([0]))
        batch = tracker.swap_emds_batch(removes, removes[:1])
        assert batch[0, 0] == tracker.emd  # remove == add is a no-op score
        empty = tracker.swap_emds_batch(removes, np.array([], dtype=np.int64))
        assert empty.shape == (0, removes.size)

    def test_nominal_rows_bitwise_equal_single(self):
        rng = np.random.default_rng(14)
        for _ in range(50):
            ncat = int(rng.integers(2, 9))
            codes = rng.integers(0, ncat, size=int(rng.integers(10, 80)))
            ref = NominalEMDReference(codes, ncat)
            members = rng.choice(codes, size=int(rng.integers(2, 8)))
            tracker = NominalClusterTracker(ref, members)
            adds = rng.integers(0, ncat, size=int(rng.integers(1, 12)))
            batch = tracker.swap_emds_batch(members, adds)
            for b, add in enumerate(adds):
                np.testing.assert_array_equal(
                    batch[b], tracker.swap_emds(members, int(add))
                )

    def test_score_swaps_sharding_matches_one_call(self):
        """The threaded backend's candidate shards concatenate bitwise."""
        rng = np.random.default_rng(15)
        tracker, ref = _ordered_tracker(rng, n=200)

        class TrackerSetLike:
            def swap_emds_batch(self, members, cands):
                return tracker.swap_emds_batch(members, cands)

        removes = tracker._member_bins.copy()
        adds = rng.integers(0, ref.m, size=40)
        serial = ComputeBackend().score_swaps(TrackerSetLike(), removes, adds)
        threaded = threaded_for_tests(3).score_swaps(TrackerSetLike(), removes, adds)
        np.testing.assert_array_equal(serial, threaded)
