"""Compiled nearest-scan fast path == canonical numpy kernel, bitwise.

``repro.backend._native`` builds a C version of the nearest-representative
scan with FP contraction disabled; its whole value rests on producing
*exactly* the assignments and squared distances of the pure-numpy kernel
(``kernels._nearest_block_numpy``), ties included, under any row
blocking.  This suite is the differential proof — and it also pins the
degrade paths: the env kill-switch, and the dtype/contiguity guards that
route unusual buffers back to the numpy body.

When the host has no usable compiler the fast-path tests skip (the
fallback behaviour tests still run): the library must work identically,
just slower.
"""

import numpy as np
import pytest

from repro.backend import _native, kernels


def run_numpy(X, reps, *, block=None):
    n = len(X)
    assignment = np.zeros(n, dtype=np.int64)
    best_d2 = np.full(n, np.inf)
    d2, tmp = np.empty(n), np.empty(n)
    for start, stop in kernels.iter_blocks(n, block):
        kernels._nearest_block_numpy(
            X.T, reps, assignment, best_d2, d2, tmp, start, stop
        )
    return assignment, best_d2


def run_dispatch(X, reps, *, block=None):
    n = len(X)
    assignment = np.zeros(n, dtype=np.int64)
    best_d2 = np.full(n, np.inf)
    d2, tmp = np.empty(n), np.empty(n)
    for start, stop in kernels.iter_blocks(n, block):
        kernels.nearest_block(
            X.T, reps, assignment, best_d2, d2, tmp, start, stop
        )
    return assignment, best_d2


native_only = pytest.mark.skipif(
    _native.load() is None, reason="no usable C toolchain on this host"
)


@native_only
class TestBitwiseEquivalence:
    @pytest.mark.parametrize("block", [None, 1, 7, 64])
    def test_random_continuous(self, block):
        rng = np.random.default_rng(11)
        X = rng.standard_normal((257, 4))
        reps = rng.standard_normal((31, 4))
        a_ref, b_ref = run_numpy(X, reps)
        a, b = run_dispatch(X, reps, block=block)
        np.testing.assert_array_equal(a_ref, a)
        np.testing.assert_array_equal(b_ref, b)

    def test_tie_heavy_grid_data(self):
        # Half-integer grids make exact cross-representative ties common;
        # both paths must pick the lowest representative id every time.
        rng = np.random.default_rng(12)
        X = np.round(rng.standard_normal((400, 3)) * 2.0) / 2.0
        reps = np.round(rng.standard_normal((40, 3)) * 2.0) / 2.0
        reps[17] = reps[4]  # duplicated representative
        a_ref, b_ref = run_numpy(X, reps)
        a, b = run_dispatch(X, reps)
        np.testing.assert_array_equal(a_ref, a)
        np.testing.assert_array_equal(b_ref, b)
        assert not (a == 17).any()  # the duplicate never wins a tie

    def test_single_column_and_single_rep(self):
        rng = np.random.default_rng(13)
        X = rng.standard_normal((50, 1))
        for reps in (rng.standard_normal((1, 1)), rng.standard_normal((5, 1))):
            a_ref, b_ref = run_numpy(X, reps)
            a, b = run_dispatch(X, reps)
            np.testing.assert_array_equal(a_ref, a)
            np.testing.assert_array_equal(b_ref, b)

    def test_noncontiguous_input_columns(self):
        # cols arrives as X.T (a strided view); the native path must
        # produce the same bits after its contiguous staging copy.
        rng = np.random.default_rng(14)
        X_wide = rng.standard_normal((100, 8))
        X = X_wide[:, ::2]  # non-contiguous 4-column view
        reps = rng.standard_normal((9, 4))
        a_ref, b_ref = run_numpy(np.ascontiguousarray(X), reps)
        n = len(X)
        a = np.zeros(n, dtype=np.int64)
        b = np.full(n, np.inf)
        kernels.nearest_block(
            X.T, reps, a, b, np.empty(n), np.empty(n), 0, n
        )
        np.testing.assert_array_equal(a_ref, a)
        np.testing.assert_array_equal(b_ref, b)


class TestFallbackPaths:
    def test_kill_switch_pins_numpy_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        monkeypatch.setattr(_native, "_cached", _native._UNSET)
        assert _native.load() is None
        # Dispatch still answers correctly through the numpy body.
        rng = np.random.default_rng(15)
        X = rng.standard_normal((64, 2))
        reps = rng.standard_normal((6, 2))
        a_ref, b_ref = run_numpy(X, reps)
        a, b = run_dispatch(X, reps)
        np.testing.assert_array_equal(a_ref, a)
        np.testing.assert_array_equal(b_ref, b)

    def test_unusual_output_dtype_falls_back(self):
        # int32 assignment buffers fail the native guard but must still
        # be filled correctly by the numpy body.
        rng = np.random.default_rng(16)
        X = rng.standard_normal((30, 3))
        reps = rng.standard_normal((4, 3))
        a_ref, _ = run_numpy(X, reps)
        n = len(X)
        a = np.zeros(n, dtype=np.int32)
        b = np.full(n, np.inf)
        kernels.nearest_block(
            X.T, reps, a, b, np.empty(n), np.empty(n), 0, n
        )
        np.testing.assert_array_equal(a_ref.astype(np.int32), a)

    def test_empty_block_is_a_no_op(self):
        reps = np.zeros((3, 2))
        a = np.full(5, -1, dtype=np.int64)
        b = np.full(5, np.inf)
        kernels.nearest_block(
            np.zeros((2, 5)), reps, a, b, np.empty(5), np.empty(5), 2, 2
        )
        assert (a == -1).all()


@native_only
class TestSelfCheck:
    def test_load_is_memoized(self):
        assert _native.load() is _native.load()

    def test_self_check_accepts_real_library(self):
        assert _native._self_check(_native.load())
