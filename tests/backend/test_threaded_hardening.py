"""Failure-path tests for the threaded backend's worker pool."""

import traceback

import numpy as np
import pytest

from repro.backend.threaded import ThreadedBackend


class BoomError(RuntimeError):
    pass


def _boom():
    raise BoomError("worker exploded")


class TestWorkerFailures:
    def test_worker_exception_propagates_with_original_traceback(self):
        backend = ThreadedBackend(num_threads=2)
        try:
            with pytest.raises(BoomError, match="worker exploded") as excinfo:
                backend._run([_boom])
            # The re-raised exception carries the worker's frames, so the
            # failing task function is visible in the traceback.
            frames = traceback.extract_tb(excinfo.value.__traceback__)
            assert any(frame.name == "_boom" for frame in frames)
        finally:
            backend.close()

    def test_pool_survives_ordinary_exceptions(self):
        backend = ThreadedBackend(num_threads=2)
        try:
            with pytest.raises(BoomError):
                backend._run([_boom])
            # The pool was not torn down: the next call computes normally.
            assert backend._pool is not None
            assert backend._run([lambda: 7, lambda: 8]) == [7, 8]
        finally:
            backend.close()

    def test_failure_cancels_pending_tasks(self):
        backend = ThreadedBackend(num_threads=1)
        ran = []
        tasks = [_boom] + [lambda i=i: ran.append(i) for i in range(64)]
        try:
            with pytest.raises(BoomError):
                backend._run(tasks)
            # Single worker: the failing task ran first, the queued tail was
            # cancelled rather than drained.
            assert len(ran) < 64
        finally:
            backend.close()

    def test_keyboard_interrupt_tears_pool_down(self):
        backend = ThreadedBackend(num_threads=2)

        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            backend._run([interrupted])
        # Prompt shutdown: no live pool left grinding through queued work.
        assert backend._pool is None
        # A later use lazily recreates a fresh pool.
        try:
            assert backend._run([lambda: 1]) == [1]
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = ThreadedBackend(num_threads=2)
        assert backend.argmin(np.arange(10.0)) == 0
        backend.close()
        backend.close()
        assert backend.argmin(np.arange(10.0)) == 0
        backend.close()
