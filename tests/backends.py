"""Backend parametrization shared across the equivalence/golden/property suites.

``BACKENDS_UNDER_TEST`` pins the bit-for-bit backend-independence contract:
every suite that parametrizes over it runs once on the default serial
backend and once on a threaded backend with two workers whose shard floors
are lowered to a few elements — so the parallel code paths (sharded kernel
evaluation, per-shard argmin/argmax merging, the sharded k-th-smallest
bound, candidate-axis scoring shards, row-sharded nearest-representative
assignment) genuinely execute even on the small fixture datasets, rather
than falling through to the serial bodies.
"""

import pytest

from repro.backend import ThreadedBackend


def threaded_for_tests(num_threads: int = 2) -> ThreadedBackend:
    """A threaded backend whose parallel paths engage on tiny inputs."""
    return ThreadedBackend(
        num_threads,
        min_rows=8,
        min_assign_rows=8,
        min_candidates=2,
    )


BACKENDS_UNDER_TEST = [
    pytest.param("serial", id="serial"),
    pytest.param(threaded_for_tests(), id="threaded-2"),
]
