"""Backend parametrization shared across the equivalence/golden/property suites.

``BACKENDS_UNDER_TEST`` pins the bit-for-bit backend-independence contract:
every suite that parametrizes over it runs once on the default serial
backend, once on a threaded backend with two workers, and once on a
process backend with two workers — with every shard floor lowered to a few
elements, so the parallel code paths (sharded kernel evaluation, per-shard
argmin/argmax merging, the sharded k-th-smallest bound, candidate-axis
scoring shards, row-sharded nearest-representative assignment, and the
process backend's shared-memory buffer plumbing) genuinely execute even on
the small fixture datasets, rather than falling through to the serial
bodies.
"""

import pytest

from repro.backend import ProcessBackend, ThreadedBackend


def threaded_for_tests(num_threads: int = 2) -> ThreadedBackend:
    """A threaded backend whose parallel paths engage on tiny inputs."""
    return ThreadedBackend(
        num_threads,
        min_rows=8,
        min_assign_rows=8,
        min_candidates=2,
    )


def process_for_tests(num_workers: int = 2) -> ProcessBackend:
    """A process backend whose parallel paths engage on tiny inputs.

    ``min_shm_bytes=1`` forces even the fixtures' small engine buffers
    into shared-memory segments, so the worker attach/view machinery runs
    under test instead of the foreign-array serial fallbacks.
    """
    return ProcessBackend(
        num_workers,
        min_rows=8,
        min_assign_rows=8,
        min_shm_bytes=1,
    )


BACKENDS_UNDER_TEST = [
    pytest.param("serial", id="serial"),
    pytest.param(threaded_for_tests(), id="threaded-2"),
    pytest.param(process_for_tests(), id="process-2"),
]
