"""TransformModel split: delegation equivalence and the single-encode pin.

The refactor's contract: ``Anonymizer.transform``/``assign`` delegate to
an internal :class:`~repro.serving.TransformModel`, so the served path
and the direct path are one implementation — pinned bitwise here — and
every batch is schema-scanned and encoded **exactly once** per call
(call-count tests; the pre-split code scanned the schema twice per
``transform``).  Loading the transform-time state alone from a saved
artifact — plain or memory-mapped — must reproduce the same results.
"""

import json

import numpy as np
import pytest

from repro import Anonymizer
from repro.core.validation import BatchSchemaError
from repro.distance.records import QIEncoder
from repro.runtime.atomic import ArtifactVersionError
from repro.serving import TransformModel

from .conftest import make_dataset


def assert_same_release(a, b):
    """Bitwise equality of two released batches, column by column."""
    assert a.attribute_names == b.attribute_names
    for name in a.attribute_names:
        np.testing.assert_array_equal(a.values(name), b.values(name))


class TestSplitEquivalence:
    def test_anonymizer_exposes_its_split(self, fitted):
        split = TransformModel.from_anonymizer(fitted)
        assert split is fitted.transform_model_
        assert split.representatives is fitted._representatives
        assert split.encoder is fitted._encoder
        assert split.encoded_representatives is fitted._encoded_representatives

    def test_transform_bitwise_equal(self, fitted, batch):
        assert_same_release(
            fitted.transform(batch), fitted.transform_model_.transform(batch)
        )

    def test_assign_bitwise_equal(self, fitted, batch):
        np.testing.assert_array_equal(
            fitted.assign(batch), fitted.transform_model_.assign(batch)
        )

    def test_staged_pipeline_equals_transform(self, fitted, batch):
        split = fitted.transform_model_
        encoded = split.encode_batch(batch)
        assignment = split.assign_encoded(encoded)
        assert_same_release(
            split.apply_assignment(batch, assignment), fitted.transform(batch)
        )

    def test_batch_schema_delegates(self, fitted, batch):
        assert fitted.batch_schema() == fitted.transform_model_.batch_schema()
        header = tuple(batch.attribute_names)
        assert fitted.batch_schema(header) == (
            fitted.transform_model_.batch_schema(header)
        )

    def test_describe_is_json_ready(self, fitted):
        described = fitted.transform_model_.describe()
        json.dumps(described)
        assert described["n_clusters"] == fitted.result_.partition.n_clusters
        assert described["quasi_identifiers"] == list(fitted._qi_names)


class TestSingleEncodePerBatch:
    """The satellite audit finding, pinned.

    The pre-split ``transform`` ran the batch schema scan twice (once
    itself, once again inside ``assign``); the encoder ran once.  The
    staged pipeline must do exactly one scan and one encode per
    ``transform``/``assign`` call.
    """

    @pytest.fixture()
    def counted(self, monkeypatch):
        counts = {"encode": 0, "check": 0}
        real_encode = QIEncoder.encode
        real_check = TransformModel.check_batch

        def counting_encode(self, values):
            counts["encode"] += 1
            return real_encode(self, values)

        def counting_check(self, incoming):
            counts["check"] += 1
            return real_check(self, incoming)

        monkeypatch.setattr(QIEncoder, "encode", counting_encode)
        monkeypatch.setattr(TransformModel, "check_batch", counting_check)
        return counts

    def test_transform_scans_and_encodes_once(self, fitted, batch, counted):
        fitted.transform(batch)
        assert counted == {"encode": 1, "check": 1}

    def test_assign_scans_and_encodes_once(self, fitted, batch, counted):
        fitted.assign(batch)
        assert counted == {"encode": 1, "check": 1}


class TestBatchValidation:
    def test_missing_qi_column_rejected(self, fitted, batch):
        broken = batch.drop(["qi1"])
        with pytest.raises(BatchSchemaError, match="qi1"):
            fitted.transform_model_.transform(broken)

    def test_anonymizer_rejects_identically(self, fitted, batch):
        broken = batch.drop(["qi1"])
        with pytest.raises(BatchSchemaError, match="qi1"):
            fitted.transform(broken)


class TestArtifactLoad:
    def test_load_transform_equals_source(self, fitted, batch, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        split = TransformModel.load(npz)
        assert_same_release(split.transform(batch), fitted.transform(batch))

    def test_mmap_load_equals_copy_load(self, fitted, batch, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        mapped = TransformModel.load(npz, mmap_mode="r")
        assert not mapped.representatives.flags.writeable
        assert_same_release(mapped.transform(batch), fitted.transform(batch))

    def test_anonymizer_mmap_load_equals_copy_load(
        self, fitted, batch, tmp_path
    ):
        npz, _ = fitted.save(tmp_path / "model.npz")
        mapped = Anonymizer.load(npz, mmap_mode="r")
        assert_same_release(mapped.transform(batch), fitted.transform(batch))
        np.testing.assert_array_equal(
            mapped.result_.partition.labels, fitted.result_.partition.labels
        )

    def test_version_skew_rejected(self, fitted, tmp_path):
        npz, sidecar = fitted.save(tmp_path / "model.npz")
        payload = json.loads(sidecar.read_text())
        payload["format_version"] = 99
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(ArtifactVersionError, match="99"):
            TransformModel.load(npz)

    def test_loaded_split_serves_fresh_batches(self, fitted, tmp_path):
        npz, _ = fitted.save(tmp_path / "model.npz")
        split = TransformModel.load(npz, mmap_mode="r")
        fresh = make_dataset(64, 9)
        np.testing.assert_array_equal(
            split.assign(fresh), fitted.assign(fresh)
        )
