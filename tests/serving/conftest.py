"""Shared fixtures for the serving suite.

One module-scoped fitted model and a couple of serving batches, built
from a coarsened ("grid") income-shaped table so that distinct records
frequently share encoded quasi-identifier rows — exactly the repeat
traffic the transform cache exists for — and exact distance ties
exercise the tie rule through the coalescing path.
"""

import numpy as np
import pytest

from repro import Anonymizer, KAnonymity, TCloseness
from repro.data import AttributeRole, Microdata, numeric
from repro.serving import TransformModel


def make_dataset(n: int, seed: int) -> Microdata:
    """Income-shaped table with coarsened QIs (plentiful repeats/ties)."""
    rng = np.random.default_rng(seed)
    columns, schema = {}, []
    for i in range(3):
        values = 30_000.0 * np.exp(0.5 * rng.standard_normal(n))
        columns[f"qi{i}"] = np.round(values / 10_000.0) * 10_000.0
        schema.append(numeric(f"qi{i}", role=AttributeRole.QUASI_IDENTIFIER))
    columns["secret"] = rng.permutation(np.arange(float(n)))
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


def with_backend(fitted: Anonymizer, backend) -> TransformModel:
    """The fitted model's serving split rebuilt onto another backend.

    Shares every array with the source (no refit, no copy); only the
    execution backend differs — which, per the bit-for-bit contract, must
    not change any result.
    """
    base = fitted.transform_model_
    return TransformModel(
        schema=base.schema,
        qi_names=base.qi_names,
        representatives=base.representatives,
        encoder=base.encoder,
        policy=base.policy,
        method=base.method,
        algorithm=base.algorithm,
        report=base.report,
        backend=backend,
        encoded_representatives=base.encoded_representatives,
    )


@pytest.fixture(scope="module")
def dataset():
    return make_dataset(400, 0)


@pytest.fixture(scope="module")
def fitted(dataset):
    return Anonymizer(KAnonymity(4) & TCloseness(0.4)).fit(dataset)


@pytest.fixture(scope="module")
def batch():
    return make_dataset(300, 1)
