"""Multi-worker topology: fidelity, aggregated metrics, clean shutdown.

Boots the real ``repro serve --workers 2`` CLI (and the inherited-FD
fallback supervisor) as a subprocess against a registry published from
the shared fitted model, then pins the fleet-level contracts:

* transform responses are **bit-for-bit** identical to
  ``Anonymizer.transform`` on the same rows no matter which worker
  answers, under every compute backend;
* ``/metrics`` merges per-worker snapshots — request/row totals equal
  the traffic actually sent, and the ``workers`` field counts the
  fleet;
* SIGTERM to the supervisor drains the whole fleet and exits 0 with no
  traceback.

These are subprocess tests (forked servers cannot run inside the
pytest process: the supervisor owns signal handlers), so the suite
keeps the server count small and shares one registry.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serving import HttpClient, ModelRegistry

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted):
    root = tmp_path_factory.mktemp("fleet-registry") / "registry"
    ModelRegistry(root).publish("salary", fitted)
    return root


def spawn_server(argv, *, timeout_s=60.0):
    """Start a serving subprocess; return ``(proc, port)`` once announced."""
    env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout_s
    announce = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before announcing (rc={proc.wait()})"
            )
        if "model(s) on http://" in line:
            announce = line.strip()
            break
    else:  # pragma: no cover - slow container
        proc.kill()
        raise AssertionError("server did not announce in time")
    port = int(announce.rsplit(":", 1)[1])
    return proc, port


def stop_server(proc, *, timeout_s=30.0):
    """SIGTERM the supervisor; return ``(returncode, remaining stdout)``."""
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=timeout_s)
    except subprocess.TimeoutExpired:  # pragma: no cover - hung drain
        proc.kill()
        raise
    return proc.returncode, out


def wait_for_both_workers(port, *, attempts=80):
    """Open fresh connections until two distinct worker pids answered."""
    pids = set()
    for _ in range(attempts):
        with HttpClient("127.0.0.1", port, timeout=10.0) as client:
            status, body = client.request("GET", "/healthz")
            assert status == 200, body
            pids.add(body["pid"])
        if len(pids) >= 2:
            return pids
        time.sleep(0.05)
    raise AssertionError(f"only saw workers {pids}")


def records_of(batch):
    return {
        name: batch.labels(name).tolist() for name in batch.attribute_names
    }


@pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
def test_two_workers_bitwise_equal_direct_transform(
    registry_dir, fitted, batch, backend
):
    proc, port = spawn_server(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--registry",
            str(registry_dir),
            "--port",
            "0",
            "--workers",
            "2",
            "--backend",
            backend,
        ]
    )
    try:
        pids = wait_for_both_workers(port)
        direct = fitted.transform(batch)
        payload = {"records": records_of(batch)}
        answered_by = set()
        with HttpClient("127.0.0.1", port, timeout=30.0) as client:
            for _ in range(4):
                status, body = client.request(
                    "POST", "/v1/transform", payload
                )
                assert status == 200, body
                for name in direct.attribute_names:
                    assert (
                        body["records"][name] == direct.labels(name).tolist()
                    )
                status, health = client.request("GET", "/healthz")
                answered_by.add(health["pid"])
        assert answered_by <= pids
    finally:
        code, out = stop_server(proc)
    assert code == 0, out
    assert "Traceback" not in out


def test_metrics_aggregate_across_workers(registry_dir, fitted, batch):
    proc, port = spawn_server(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--registry",
            str(registry_dir),
            "--port",
            "0",
            "--workers",
            "2",
            "--cache-size",
            "0",
        ]
    )
    try:
        wait_for_both_workers(port)
        payload = {"records": records_of(batch)}
        sent_rows = 0
        # Fresh connection per request spreads traffic over the fleet.
        for _ in range(6):
            with HttpClient("127.0.0.1", port, timeout=30.0) as client:
                status, body = client.request("POST", "/v1/assign", payload)
                assert status == 200, body
                sent_rows += body["n_records"]
        with HttpClient("127.0.0.1", port, timeout=30.0) as client:
            status, metrics = client.request("GET", "/metrics")
        assert status == 200
        assert metrics["workers"] == 2
        assign = metrics["requests"]["assign"]
        assert assign["count"] == 6
        assert assign["rows"] == sent_rows == 6 * len(batch)
        # Every assign ran uncached, so batch rows must account for the
        # full traffic too (summed across both workers' batchers).
        assert metrics["batches"]["rows"] == sent_rows
        assert metrics["connections"] >= 7
    finally:
        code, out = stop_server(proc)
    assert code == 0, out


def test_inherited_fd_fallback_topology(registry_dir, fitted, batch):
    """The non-SO_REUSEPORT path serves correctly and drains on SIGTERM."""
    script = (
        "import sys\n"
        "from repro.serving.workers import serve_workers\n"
        "sys.exit(serve_workers(sys.argv[1], '127.0.0.1', 0, 2,"
        " reuseport=False))\n"
    )
    proc, port = spawn_server([sys.executable, "-c", script, str(registry_dir)])
    try:
        wait_for_both_workers(port)
        direct = fitted.transform(batch)
        with HttpClient("127.0.0.1", port, timeout=30.0) as client:
            status, body = client.request(
                "POST", "/v1/transform", {"records": records_of(batch)}
            )
        assert status == 200, body
        for name in direct.attribute_names:
            assert body["records"][name] == direct.labels(name).tolist()
    finally:
        code, out = stop_server(proc)
    assert code == 0, out
    assert "inherited-fd" in out or "serving stopped" in out


def test_hot_swap_propagates_across_workers(registry_dir, fitted, batch):
    """An activate served by one worker reaches its siblings via polling."""
    registry = ModelRegistry(registry_dir)
    registry.publish("salary", fitted, activate=False)  # v2, not active
    proc, port = spawn_server(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--registry",
            str(registry_dir),
            "--port",
            "0",
            "--workers",
            "2",
        ]
    )
    try:
        wait_for_both_workers(port)
        with HttpClient("127.0.0.1", port, timeout=30.0) as client:
            status, body = client.request(
                "POST", "/v1/models/salary/activate", {"version": "v2"}
            )
            assert status == 200, body
        # Both workers must serve v2 once the watcher tick lands.
        versions_seen = {}
        deadline = time.monotonic() + 15.0
        payload = {"records": records_of(batch)}
        while time.monotonic() < deadline:
            with HttpClient("127.0.0.1", port, timeout=30.0) as client:
                _, health = client.request("GET", "/healthz")
                _, body = client.request("POST", "/v1/assign", payload)
                versions_seen[health["pid"]] = body["version"]
            if len(versions_seen) >= 2 and set(
                versions_seen.values()
            ) == {"v2"}:
                break
            time.sleep(0.1)
        assert set(versions_seen.values()) == {"v2"}, versions_seen
        assert len(versions_seen) >= 2
    finally:
        code, out = stop_server(proc)
        # Leave the registry as the other tests expect it.
        registry.activate("salary", "v1")
    assert code == 0, out
