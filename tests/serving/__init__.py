"""Test package (enables intra-suite imports like tests.backends)."""
