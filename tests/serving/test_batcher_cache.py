"""Coalescing batcher + transform cache: bit-for-bit under every backend.

The serving acceptance criterion, pinned directly: responses assembled
through request coalescing (arbitrary batching boundaries, size- and
deadline-triggered flushes) and through cache hits/misses are bitwise
identical to a direct ``assign_encoded`` on the same rows — under the
serial, threaded and process backends alike.  Plus the LRU cache's own
unit contract: bounded size, recency eviction, transparent when
disabled.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import CoalescingBatcher, ServingMetrics, TransformCache

from ..backends import BACKENDS_UNDER_TEST
from .conftest import with_backend


def gather(*coros):
    """Run coroutines concurrently on a fresh event loop."""

    async def go():
        return await asyncio.gather(*coros)

    return asyncio.run(go())


def uneven_chunks(encoded):
    """Split rows into deliberately ragged request-sized chunks."""
    sizes = [1, 7, 30, 64, 100]
    chunks, start = [], 0
    for size in sizes:
        chunks.append(encoded[start : start + size])
        start += size
    chunks.append(encoded[start:])
    return [c for c in chunks if len(c)]


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
class TestDifferentialAcrossBackends:
    def test_coalesced_equals_direct(self, fitted, batch, backend):
        model = with_backend(fitted, backend)
        encoded = model.encode_batch(batch)
        direct = model.assign_encoded(encoded)
        metrics = ServingMetrics()
        batcher = CoalescingBatcher(
            model,
            max_batch_rows=64,  # several size-triggered flushes mid-run
            max_wait_ms=5.0,
            cache=TransformCache(max_size=4096),
            metrics=metrics,
        )
        chunks = uneven_chunks(encoded)
        offsets = np.cumsum([0] + [len(c) for c in chunks])

        # Cold pass: all misses, mixed flush triggers.
        cold = gather(*[batcher.assign(c) for c in chunks])
        for lo, hi, result in zip(offsets, offsets[1:], cold):
            np.testing.assert_array_equal(result, direct[lo:hi])

        # Hot pass: repeats now resolve from the cache — same bits.
        hot = gather(*[batcher.assign(c) for c in chunks])
        for lo, hi, result in zip(offsets, offsets[1:], hot):
            np.testing.assert_array_equal(result, direct[lo:hi])

        snap = metrics.snapshot()
        assert snap["batches"]["max_requests_coalesced"] > 1
        assert snap["cache"]["hits"] > 0

    def test_cache_only_pass_equals_direct(self, fitted, batch, backend):
        model = with_backend(fitted, backend)
        encoded = model.encode_batch(batch)
        direct = model.assign_encoded(encoded)
        cache = TransformCache(max_size=len(encoded) + 1)
        batcher = CoalescingBatcher(model, max_wait_ms=1.0, cache=cache)
        first = gather(batcher.assign(encoded))[0]
        hits_before = cache.hits
        second = gather(batcher.assign(encoded))[0]
        np.testing.assert_array_equal(first, direct)
        np.testing.assert_array_equal(second, direct)
        assert cache.hits == hits_before + len(encoded)


class TestBatcherMechanics:
    def test_single_request_deadline_flush(self, fitted, batch):
        model = fitted.transform_model_
        encoded = model.encode_batch(batch)[:5]
        batcher = CoalescingBatcher(model, max_batch_rows=10_000, max_wait_ms=1.0)
        np.testing.assert_array_equal(
            gather(batcher.assign(encoded))[0], model.assign_encoded(encoded)
        )

    def test_size_threshold_flushes_without_deadline(self, fitted, batch):
        model = fitted.transform_model_
        encoded = model.encode_batch(batch)
        metrics = ServingMetrics()
        # A deadline far beyond the test's patience: only the size
        # trigger can flush, so completion proves it fired.
        batcher = CoalescingBatcher(
            model, max_batch_rows=8, max_wait_ms=60_000.0, metrics=metrics
        )
        chunks = [encoded[i : i + 4] for i in range(0, 16, 4)]

        results = gather(*[batcher.assign(c) for c in chunks])
        direct = model.assign_encoded(encoded[:16])
        np.testing.assert_array_equal(np.concatenate(results), direct)
        assert metrics.snapshot()["batches"]["count"] >= 1

    def test_mixed_hit_miss_request(self, fitted, batch):
        model = fitted.transform_model_
        encoded = model.encode_batch(batch)
        cache = TransformCache(max_size=4096)
        batcher = CoalescingBatcher(model, max_wait_ms=1.0, cache=cache)
        gather(batcher.assign(encoded[:40]))  # warm the first 40 rows
        # Overlapping request: rows 20..60 are half hits, half misses.
        result = gather(batcher.assign(encoded[20:60]))[0]
        np.testing.assert_array_equal(
            result, model.assign_encoded(encoded[20:60])
        )
        assert cache.hits >= 1

    def test_backend_error_propagates(self, fitted, batch):
        model = fitted.transform_model_
        encoded = model.encode_batch(batch)[:4]
        batcher = CoalescingBatcher(model, max_wait_ms=1.0)
        boom = RuntimeError("injected")

        def failing(encoded_rows, *, backend=None):
            raise boom

        batcher.model = type(
            "FailingModel", (), {"assign_encoded": staticmethod(failing)}
        )()
        with pytest.raises(RuntimeError, match="injected"):
            gather(batcher.assign(encoded))

    def test_invalid_policy_rejected(self, fitted):
        model = fitted.transform_model_
        with pytest.raises(ValueError, match="max_batch_rows"):
            CoalescingBatcher(model, max_batch_rows=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            CoalescingBatcher(model, max_wait_ms=-1.0)


class TestTransformCacheUnit:
    def rows(self, n, start=0):
        return np.arange(start, start + 2 * n, dtype=np.float64).reshape(n, 2)

    def test_store_then_lookup(self):
        cache = TransformCache(max_size=8)
        rows = self.rows(3)
        cache.store_rows(rows, np.array([5, 6, 7]))
        assignment, missing = cache.lookup_rows(rows)
        np.testing.assert_array_equal(assignment, [5, 6, 7])
        assert missing.size == 0
        assert cache.hits == 3 and cache.misses == 0

    def test_lru_eviction_order(self):
        cache = TransformCache(max_size=2)
        rows = self.rows(3)
        cache.store_rows(rows[:2], np.array([0, 1]))
        cache.lookup_rows(rows[:1])  # refresh row 0: row 1 is now LRU
        cache.store_rows(rows[2:], np.array([2]))
        assignment, missing = cache.lookup_rows(rows)
        np.testing.assert_array_equal(assignment, [0, -1, 2])
        np.testing.assert_array_equal(missing, [1])

    def test_partial_store_via_indices(self):
        cache = TransformCache(max_size=8)
        rows = self.rows(4)
        cache.store_rows(rows, np.array([9, 9, 3, 9]), indices=np.array([2]))
        assignment, missing = cache.lookup_rows(rows)
        np.testing.assert_array_equal(assignment, [-1, -1, 3, -1])
        assert len(cache) == 1

    def test_disabled_cache_is_transparent(self):
        cache = TransformCache(max_size=0)
        rows = self.rows(3)
        cache.store_rows(rows, np.array([1, 2, 3]))
        assignment, missing = cache.lookup_rows(rows)
        assert not cache.enabled
        np.testing.assert_array_equal(assignment, [-1, -1, -1])
        np.testing.assert_array_equal(missing, [0, 1, 2])
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_clear_keeps_counters(self):
        cache = TransformCache(max_size=8)
        rows = self.rows(2)
        cache.store_rows(rows, np.array([1, 2]))
        cache.lookup_rows(rows)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 2


class TestOverloadAdmission:
    def test_empty_queue_always_admits(self, fitted, batch):
        """A lone request bigger than the bound still runs (no deadlock)."""
        model = with_backend(fitted, "serial")
        encoded = model.encode_batch(batch)
        batcher = CoalescingBatcher(
            model, max_wait_ms=1.0, max_queue_rows=10
        )
        direct = model.assign_encoded(encoded)
        (result,) = gather(batcher.assign(encoded))
        np.testing.assert_array_equal(result, direct)

    def test_overflow_raises_typed_error(self, fitted, batch):
        from repro.serving import OverloadedError

        model = with_backend(fitted, "serial")
        encoded = model.encode_batch(batch)
        metrics = ServingMetrics()
        # A huge deadline so the first request is still pending when the
        # second arrives; the bound leaves no room for the second.
        batcher = CoalescingBatcher(
            model,
            max_batch_rows=100_000,
            max_wait_ms=50.0,
            max_queue_rows=len(encoded) + 1,
            metrics=metrics,
        )

        async def go():
            first = asyncio.ensure_future(batcher.assign(encoded))
            await asyncio.sleep(0)  # first request queues
            with pytest.raises(OverloadedError) as err:
                await batcher.assign(encoded)
            await batcher.flush()
            await first
            return err.value

        err = asyncio.run(go())
        assert err.pending_rows == len(encoded)
        assert err.rejected_rows == len(encoded)
        assert err.retry_after_s >= 0.05
        snap = metrics.snapshot()
        assert snap["queue"]["rejected_requests"] == 1
        assert snap["queue"]["rejected_rows"] == len(encoded)
        # The admitted backlog never exceeded the configured bound.
        assert snap["queue"]["depth_max"] <= len(encoded) + 1

    def test_rejected_request_succeeds_on_retry(self, fitted, batch):
        from repro.serving import OverloadedError

        model = with_backend(fitted, "serial")
        encoded = model.encode_batch(batch)
        direct = model.assign_encoded(encoded)
        batcher = CoalescingBatcher(
            model,
            max_batch_rows=100_000,
            max_wait_ms=20.0,
            max_queue_rows=len(encoded) + 1,
        )

        async def go():
            first = asyncio.ensure_future(batcher.assign(encoded))
            await asyncio.sleep(0)
            try:
                await batcher.assign(encoded)
                raise AssertionError("expected OverloadedError")
            except OverloadedError as exc:
                await asyncio.sleep(min(exc.retry_after_s, 0.1))
            # Backlog flushed by the deadline; the retry is admitted and
            # returns exactly the direct answer.
            retried = await batcher.assign(encoded)
            return await first, retried

        first, retried = asyncio.run(go())
        np.testing.assert_array_equal(first, direct)
        np.testing.assert_array_equal(retried, direct)

    def test_unbounded_by_default(self, fitted, batch):
        model = with_backend(fitted, "serial")
        encoded = model.encode_batch(batch)
        batcher = CoalescingBatcher(
            model, max_batch_rows=100_000, max_wait_ms=5.0
        )
        results = gather(
            *[batcher.assign(chunk) for chunk in uneven_chunks(encoded)]
        )
        direct = model.assign_encoded(encoded)
        stitched = np.concatenate(results)
        np.testing.assert_array_equal(stitched, direct)

    def test_negative_bound_rejected(self, fitted):
        model = with_backend(fitted, "serial")
        with pytest.raises(ValueError, match="max_queue_rows"):
            CoalescingBatcher(model, max_queue_rows=-1)


class TestCacheHottest:
    def rows(self, n, start=0):
        return np.arange(start, start + 2 * n, dtype=np.float64).reshape(n, 2)

    def test_hottest_returns_mru_first(self):
        cache = TransformCache(max_size=8)
        rows = self.rows(4)
        cache.store_rows(rows, np.arange(4))
        cache.lookup_rows(rows[:1])  # refresh row 0 to most-recent
        hottest = cache.hottest(2)
        assert hottest == [rows[0].tobytes(), rows[3].tobytes()]

    def test_hottest_caps_at_cache_size(self):
        cache = TransformCache(max_size=8)
        rows = self.rows(3)
        cache.store_rows(rows, np.arange(3))
        assert len(cache.hottest(100)) == 3
        assert cache.hottest(0) == []
