"""Model registry: immutable versions, atomic activation, rollback.

The registry's promises: published versions are immutable (re-publishing
a taken version is refused), the ACTIVE pointer always names a published
version, activation/rollback are pure pointer moves, and every load is
the same checksum-verified artifact read as ``Anonymizer.load`` — so a
registry-served model transforms bit-for-bit like its source.
"""

import numpy as np
import pytest

from repro.serving import ModelRegistry, ModelRegistryError, TransformModel


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestPublish:
    def test_versions_auto_increment(self, registry, fitted):
        assert registry.publish("salary", fitted) == "v1"
        assert registry.publish("salary", fitted) == "v2"
        assert registry.versions("salary") == ["v1", "v2"]
        assert registry.active_version("salary") == "v2"

    def test_explicit_version_label(self, registry, fitted):
        assert registry.publish("salary", fitted, version="rc-1") == "rc-1"
        assert registry.active_version("salary") == "rc-1"

    def test_versions_are_immutable(self, registry, fitted):
        registry.publish("salary", fitted, version="v1")
        with pytest.raises(ModelRegistryError, match="immutable"):
            registry.publish("salary", fitted, version="v1")

    def test_publish_without_activation(self, registry, fitted):
        registry.publish("salary", fitted)
        registry.publish("salary", fitted, activate=False)
        assert registry.versions("salary") == ["v1", "v2"]
        assert registry.active_version("salary") == "v1"

    def test_numeric_version_ordering(self, registry, fitted):
        for _ in range(11):
            registry.publish("salary", fitted)
        assert registry.versions("salary")[-2:] == ["v10", "v11"]

    def test_listing(self, registry, fitted):
        registry.publish("b-model", fitted)
        registry.publish("a-model", fitted)
        assert registry.names() == ["a-model", "b-model"]
        described = registry.describe()
        assert described["a-model"] == {"versions": ["v1"], "active": "v1"}

    def test_empty_registry_lists_nothing(self, registry):
        assert registry.names() == []
        assert registry.describe() == {}
        assert registry.versions("ghost") == []
        assert registry.active_version("ghost") is None


class TestActivateRollback:
    def test_activate_unknown_version_refused(self, registry, fitted):
        registry.publish("salary", fitted)
        with pytest.raises(ModelRegistryError, match="v9"):
            registry.activate("salary", "v9")
        assert registry.active_version("salary") == "v1"

    def test_rollback_restores_previous(self, registry, fitted):
        registry.publish("salary", fitted)
        registry.publish("salary", fitted)
        assert registry.active_version("salary") == "v2"
        assert registry.rollback("salary") == "v1"
        assert registry.active_version("salary") == "v1"

    def test_rollback_without_history_refused(self, registry, fitted):
        with pytest.raises(ModelRegistryError, match="no active version"):
            registry.rollback("salary")
        registry.publish("salary", fitted)
        with pytest.raises(ModelRegistryError, match="no previous"):
            registry.rollback("salary")

    def test_rollback_is_itself_reversible(self, registry, fitted):
        registry.publish("salary", fitted)
        registry.publish("salary", fitted)
        registry.rollback("salary")
        assert registry.rollback("salary") == "v2"


class TestLayoutHygiene:
    @pytest.mark.parametrize(
        "bad", ["", "a/b", "..", ".hidden", "ACTIVE"]
    )
    def test_path_escaping_names_refused(self, registry, bad):
        with pytest.raises(ModelRegistryError, match="invalid"):
            registry.model_dir(bad)

    def test_bad_version_refused_on_publish(self, registry, fitted):
        with pytest.raises(ModelRegistryError, match="invalid"):
            registry.publish("salary", fitted, version="../escape")


class TestLoad:
    def test_load_active_transforms_like_source(self, registry, fitted, batch):
        registry.publish("salary", fitted)
        for mmap_mode in (None, "r"):
            loaded = registry.load("salary", mmap_mode=mmap_mode)
            assert isinstance(loaded, TransformModel)
            direct = fitted.transform(batch)
            served = loaded.transform(batch)
            for name in direct.attribute_names:
                np.testing.assert_array_equal(
                    direct.values(name), served.values(name)
                )

    def test_load_explicit_version(self, registry, fitted):
        registry.publish("salary", fitted)
        registry.publish("salary", fitted)
        assert registry.load("salary", "v1").n_clusters == (
            fitted.result_.partition.n_clusters
        )

    def test_load_without_active_version_refused(self, registry, fitted):
        registry.publish("salary", fitted, activate=False)
        with pytest.raises(ModelRegistryError, match="no active version"):
            registry.load("salary")

    def test_load_unknown_version_refused(self, registry, fitted):
        registry.publish("salary", fitted)
        with pytest.raises(ModelRegistryError, match="v7"):
            registry.load("salary", "v7")
