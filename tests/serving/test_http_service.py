"""HTTP front end + service routing: parser, endpoints, hot swap, errors.

Exercises the stdlib-only HTTP/1.1 parser against well-formed and
malformed byte streams, then drives :class:`AnonymizationService` over
real loopback sockets: transform/assign responses bitwise equal to the
direct ``Anonymizer.transform`` path, registry listing, activation and
rollback hot swaps, metrics exposure, and the 4xx error contract.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serving import AnonymizationService, ModelRegistry
from repro.serving.http import (
    HttpError,
    read_request,
    render_response,
)


def parse(raw: bytes):
    """Run the request parser over a canned byte stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestRequestParser:
    def test_get_with_query(self):
        request = parse(b"GET /v1/models?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/models"
        assert request.query == {"verbose": "1"}
        assert request.headers["host"] == "x"
        assert request.json() == {}

    def test_post_with_body(self):
        body = b'{"records": {"qi0": [1.0]}}'
        raw = (
            b"POST /v1/transform HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"records": {"qi0": [1.0]}}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    @pytest.mark.parametrize(
        "raw, match",
        [
            (b"NOT-HTTP\r\n\r\n", "malformed request line"),
            (b"GET /x\r\n\r\n", "malformed request line"),
            (b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n", "malformed header"),
            (
                b"POST / HTTP/1.1\r\nContent-Length: oops\r\n\r\n",
                "bad Content-Length",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort",
                "shorter than Content-Length",
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked",
            ),
        ],
    )
    def test_malformed_requests_rejected(self, raw, match):
        with pytest.raises(HttpError, match=match):
            parse(raw)

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_bad_json_body_is_422(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        with pytest.raises(HttpError) as err:
            parse(raw).json()
        assert err.value.status == 422

    def test_render_response_shape(self):
        raw = render_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"ok": True}


async def http(port, method, path, payload=None):
    """One raw-socket request against the service under test.

    Sends ``Connection: close`` so the (keep-alive by default) server
    ends the session after this response and the read-to-EOF below
    terminates; the keep-alive path itself is pinned by the parser
    torture and multi-worker suites.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        f"Content-Length: {len(body)}\r\n\r\n".encode() + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(payload)


def serve(service, interact):
    """Run ``interact(port)`` against a live listener for ``service``."""

    async def go():
        server = await asyncio.start_server(
            service._handle_connection, "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        try:
            return await interact(port)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(go())


@pytest.fixture()
def registry(tmp_path, fitted):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish("salary", fitted)
    return registry


@pytest.fixture()
def service(registry):
    svc = AnonymizationService(registry, max_wait_ms=1.0)
    svc.load_models()
    return svc


def records_of(batch):
    """A batch as the JSON column mapping the endpoints accept."""
    return {
        name: batch.labels(name).tolist() for name in batch.attribute_names
    }


class TestEndpoints:
    def test_healthz(self, service):
        status, body = serve(service, lambda p: http(p, "GET", "/healthz"))
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"] == ["salary"]
        assert isinstance(body["pid"], int)

    def test_transform_bitwise_equals_direct(self, service, fitted, batch):
        status, body = serve(
            service,
            lambda p: http(p, "POST", "/v1/transform", {"records": records_of(batch)}),
        )
        assert status == 200
        assert body["model"] == "salary" and body["version"] == "v1"
        direct = fitted.transform(batch)
        for name in direct.attribute_names:
            assert body["records"][name] == direct.labels(name).tolist()

    def test_assign_matches_direct(self, service, fitted, batch):
        status, body = serve(
            service,
            lambda p: http(p, "POST", "/v1/assign", {"records": records_of(batch)}),
        )
        assert status == 200
        assert "records" not in body
        np.testing.assert_array_equal(body["assignments"], fitted.assign(batch))

    def test_models_listing(self, service):
        status, body = serve(service, lambda p: http(p, "GET", "/v1/models"))
        assert status == 200
        entry = body["models"]["salary"]
        assert entry["active"] == entry["loaded"] == "v1"
        assert entry["model"]["policy"] == "k=4,t=0.4"

    def test_metrics_expose_request_counts(self, service, batch):
        async def interact(port):
            await http(port, "POST", "/v1/transform", {"records": records_of(batch)})
            return await http(port, "GET", "/metrics")

        status, body = serve(service, interact)
        assert status == 200
        assert body["requests"]["transform"]["count"] == 1
        assert body["requests"]["transform"]["rows"] == len(batch)
        assert body["batches"]["count"] >= 1

    def test_concurrent_requests_coalesce(self, registry, batch):
        service = AnonymizationService(registry, max_wait_ms=50.0)
        service.load_models()
        records = records_of(batch)

        async def interact(port):
            results = await asyncio.gather(
                *[
                    http(port, "POST", "/v1/assign", {"records": records})
                    for _ in range(5)
                ]
            )
            return results, await http(port, "GET", "/metrics")

        results, (_, metrics) = serve(service, interact)
        first = results[0][1]["assignments"]
        assert all(status == 200 for status, _ in results)
        assert all(body["assignments"] == first for _, body in results)
        assert metrics["batches"]["max_requests_coalesced"] > 1


class TestHotSwap:
    def test_activate_swaps_live_version(self, registry, fitted, service, batch):
        registry.publish("salary", fitted, activate=False)

        async def interact(port):
            swap = await http(
                port, "POST", "/v1/models/salary/activate", {"version": "v2"}
            )
            served = await http(
                port, "POST", "/v1/transform", {"records": records_of(batch)}
            )
            return swap, served

        (sw_status, sw_body), (status, body) = serve(service, interact)
        assert sw_status == 200 and sw_body == {"model": "salary", "active": "v2"}
        assert status == 200 and body["version"] == "v2"

    def test_rollback_endpoint(self, registry, fitted, service):
        registry.publish("salary", fitted)
        service.reload_model("salary")

        status, body = serve(
            service, lambda p: http(p, "POST", "/v1/models/salary/rollback")
        )
        assert status == 200
        assert body == {"model": "salary", "active": "v1"}
        assert service._models["salary"].version == "v1"


class TestErrorContract:
    def test_unknown_endpoint_404(self, service):
        status, body = serve(service, lambda p: http(p, "GET", "/nope"))
        assert status == 404 and "error" in body

    def test_wrong_method_405(self, service):
        status, _ = serve(service, lambda p: http(p, "GET", "/v1/transform"))
        assert status == 405

    def test_missing_records_422(self, service):
        status, body = serve(
            service, lambda p: http(p, "POST", "/v1/transform", {"rows": []})
        )
        assert status == 422 and "records" in body["error"]

    def test_unknown_model_404(self, service, batch):
        status, _ = serve(
            service,
            lambda p: http(
                p,
                "POST",
                "/v1/transform",
                {"model": "ghost", "records": records_of(batch)},
            ),
        )
        assert status == 404

    def test_schema_mismatch_422(self, service, batch):
        records = records_of(batch)
        records.pop("qi1")
        status, body = serve(
            service,
            lambda p: http(p, "POST", "/v1/transform", {"records": records}),
        )
        assert status == 422 and "qi1" in body["error"]

    def test_activate_unknown_version_404(self, service):
        status, _ = serve(
            service,
            lambda p: http(
                p, "POST", "/v1/models/salary/activate", {"version": "v9"}
            ),
        )
        assert status == 404

    def test_errors_counted_in_metrics(self, service):
        async def interact(port):
            await http(port, "GET", "/nope")
            return await http(port, "GET", "/metrics")

        _, body = serve(service, interact)
        assert body["requests"]["other"]["errors"] == 1


class TestBackpressure:
    def test_overload_answers_429_with_retry_after(self, registry, batch):
        service = AnonymizationService(
            registry,
            max_wait_ms=200.0,
            max_batch_rows=100_000,
            max_queue_rows=len(batch) + 1,
            cache_size=0,
        )
        service.load_models()
        records = records_of(batch)

        async def interact(port):
            first = asyncio.ensure_future(
                http(port, "POST", "/v1/assign", {"records": records})
            )
            await asyncio.sleep(0.05)  # let the first request queue
            # Raw second request so the Retry-After *header* is visible.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = json.dumps({"records": records}).encode()
            writer.write(
                b"POST /v1/assign HTTP/1.1\r\nHost: t\r\n"
                b"Connection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, payload = raw.partition(b"\r\n\r\n")
            return await first, (int(head.split()[1]), json.loads(payload), head)

        (s1, _), (s2, b2, head) = serve(service, interact)
        assert s1 == 200  # the admitted request is unaffected
        assert s2 == 429
        assert b2["type"] == "overloaded"
        assert b2["retry_after_s"] > 0
        assert b"Retry-After:" in head
        snap = service.metrics.snapshot()
        assert snap["queue"]["rejected_requests"] == 1
        assert snap["queue"]["depth_max"] <= len(batch) + 1


class TestWarmupOnSwap:
    def test_activate_warms_new_cache(self, registry, fitted, service, batch):
        registry.publish("salary", fitted, activate=False)

        async def interact(port):
            await http(port, "POST", "/v1/assign", {"records": records_of(batch)})
            before = len(service._models["salary"].cache)
            swap = await http(
                port, "POST", "/v1/models/salary/activate", {"version": "v2"}
            )
            return before, len(service._models["salary"].cache), swap

        before, after, (status, _) = serve(service, interact)
        assert status == 200
        assert before > 0
        # Every hot key was replayed through the new model's assign.
        assert after == before

    def test_warmup_disabled_leaves_cache_cold(self, registry, fitted, batch):
        service = AnonymizationService(registry, max_wait_ms=1.0, warmup_rows=0)
        service.load_models()
        registry.publish("salary", fitted, activate=False)

        async def interact(port):
            await http(port, "POST", "/v1/assign", {"records": records_of(batch)})
            await http(
                port, "POST", "/v1/models/salary/activate", {"version": "v2"}
            )
            return len(service._models["salary"].cache)

        assert serve(service, interact) == 0
