"""ServingMetrics: counter semantics, snapshot shape, rendering.

The metrics object is the serving layer's only observability surface
(``/metrics`` and the serving benchmark both read it), so its counter
semantics are pinned: per-endpoint latency count/sum/min/max, coalesced
batch accounting, cache hit rate, queue high-water mark — and a
lock-consistent snapshot under concurrent writers.
"""

import json
import threading

import pytest

from repro.serving import ServingMetrics


class TestRequestAccounting:
    def test_latency_stats(self):
        metrics = ServingMetrics()
        metrics.record_request("transform", 0.010, rows=5)
        metrics.record_request("transform", 0.030, rows=7, error=True)
        stat = metrics.snapshot()["requests"]["transform"]
        assert stat["count"] == 2
        assert stat["errors"] == 1
        assert stat["rows"] == 12
        lat = stat["latency_s"]
        assert lat["min"] == 0.010 and lat["max"] == 0.030
        assert abs(lat["mean"] - 0.020) < 1e-12

    def test_endpoints_tracked_separately(self):
        metrics = ServingMetrics()
        metrics.record_request("transform", 0.01)
        metrics.record_request("healthz", 0.001)
        snap = metrics.snapshot()
        assert sorted(snap["requests"]) == ["healthz", "transform"]


class TestBatchCacheQueue:
    def test_batch_accounting(self):
        metrics = ServingMetrics()
        metrics.record_batch(rows=10, requests=1)
        metrics.record_batch(rows=30, requests=4)
        batches = metrics.snapshot()["batches"]
        assert batches["count"] == 2
        assert batches["rows"] == 40
        assert batches["rows_max"] == 30
        assert batches["rows_mean"] == 20.0
        assert batches["max_requests_coalesced"] == 4

    def test_cache_hit_rate(self):
        metrics = ServingMetrics()
        metrics.record_cache(hits=3, misses=1)
        cache = metrics.snapshot()["cache"]
        assert cache["hits"] == 3 and cache["misses"] == 1
        assert cache["hit_rate"] == 0.75

    def test_queue_high_water_mark(self):
        metrics = ServingMetrics()
        for depth in (5, 12, 0):
            metrics.record_queue_depth(depth)
        queue = metrics.snapshot()["queue"]
        assert queue["depth"] == 0 and queue["depth_max"] == 12

    def test_empty_snapshot_has_no_nans(self):
        snap = ServingMetrics().snapshot()
        assert snap["batches"]["rows_mean"] == 0.0
        assert snap["cache"]["hit_rate"] == 0.0
        json.dumps(snap)  # JSON-ready with zero traffic


class TestRendering:
    def test_format_mentions_every_family(self):
        metrics = ServingMetrics()
        metrics.record_request("transform", 0.01, rows=3)
        metrics.record_batch(rows=3, requests=2)
        metrics.record_cache(hits=1, misses=2)
        metrics.record_queue_depth(3)
        text = metrics.format()
        for token in ("transform", "batches", "cache", "queue depth"):
            assert token in text

    def test_snapshot_is_json_ready(self):
        metrics = ServingMetrics()
        metrics.record_request("assign", 0.002, rows=1)
        json.dumps(metrics.snapshot())


class TestThreadSafety:
    def test_concurrent_writers_lose_nothing(self):
        metrics = ServingMetrics()

        def hammer():
            for _ in range(500):
                metrics.record_request("transform", 0.001, rows=1)
                metrics.record_batch(rows=2, requests=1)
                metrics.record_cache(hits=1, misses=1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        assert snap["requests"]["transform"]["count"] == 2000
        assert snap["batches"]["rows"] == 4000
        assert snap["cache"]["hits"] == 2000


class TestNewCounters:
    def test_connections_and_rejections_tracked(self):
        metrics = ServingMetrics()
        metrics.record_connection()
        metrics.record_connection()
        metrics.record_rejected(rows=40)
        snap = metrics.snapshot()
        assert snap["connections"] == 2
        assert snap["queue"]["rejected_requests"] == 1
        assert snap["queue"]["rejected_rows"] == 40
        assert "rejected" in metrics.format()


class TestPersistence:
    def test_persist_is_atomic_and_readable(self, tmp_path):
        metrics = ServingMetrics()
        metrics.record_request("assign", 0.002, rows=9)
        path = tmp_path / "metrics-123.json"
        metrics.persist(path)
        loaded = json.loads(path.read_text())
        assert loaded["requests"]["assign"]["rows"] == 9
        assert not (tmp_path / "metrics-123.json.tmp").exists()
        # Re-persisting replaces in place (no stale tmp, fresh content).
        metrics.record_request("assign", 0.002, rows=1)
        metrics.persist(path)
        assert json.loads(path.read_text())["requests"]["assign"]["rows"] == 10


class TestMergeSnapshots:
    def worker(self, requests, *, depth_max, hits=0, misses=0):
        metrics = ServingMetrics()
        metrics.record_connection()
        for endpoint, seconds, rows in requests:
            metrics.record_request(endpoint, seconds, rows=rows)
        metrics.record_batch(rows=sum(r for _, _, r in requests), requests=1)
        metrics.record_cache(hits, misses)
        metrics.record_queue_depth(depth_max)
        return metrics.snapshot()

    def test_counters_sum_and_high_waters_max(self):
        from repro.serving import merge_snapshots

        a = self.worker(
            [("assign", 0.010, 100), ("assign", 0.030, 50)],
            depth_max=80,
            hits=10,
            misses=30,
        )
        b = self.worker(
            [("assign", 0.002, 25)], depth_max=120, hits=5, misses=5
        )
        merged = merge_snapshots([a, b])
        assert merged["workers"] == 2
        assert merged["connections"] == 2
        assign = merged["requests"]["assign"]
        assert assign["count"] == 3
        assert assign["rows"] == 175
        lat = assign["latency_s"]
        assert lat["min"] == pytest.approx(0.002)
        assert lat["max"] == pytest.approx(0.030)
        assert lat["mean"] == pytest.approx(0.042 / 3)
        assert merged["batches"]["rows"] == 175
        assert merged["queue"]["depth_max"] == 120  # max, not sum
        cache = merged["cache"]
        assert cache["hits"] == 15 and cache["misses"] == 35
        assert cache["hit_rate"] == pytest.approx(15 / 50)

    def test_merge_empty_and_single(self):
        from repro.serving import merge_snapshots

        empty = merge_snapshots([])
        assert empty["workers"] == 0
        assert empty["requests"] == {}
        assert empty["cache"]["hit_rate"] == 0.0
        one = self.worker([("healthz", 0.001, 0)], depth_max=0)
        merged = merge_snapshots([one])
        assert merged["workers"] == 1
        assert merged["requests"]["healthz"]["count"] == 1

    def test_merged_snapshot_is_json_ready(self):
        from repro.serving import merge_snapshots

        merged = merge_snapshots(
            [self.worker([("assign", 0.01, 5)], depth_max=5)]
        )
        json.dumps(merged)  # must not raise (no inf/nan leftovers)
