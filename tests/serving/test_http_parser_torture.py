"""Parser and connection-loop torture: the byte streams real clients send.

The keep-alive front end must survive everything a hostile or merely
sloppy peer can put on a socket: requests split at arbitrary byte
boundaries, several pipelined requests arriving in one segment,
trailing garbage after a final request, oversized header blocks, idle
connections that never send a second request, and peers that half-close
mid-session.  These tests drive :func:`run_connection` over real
loopback sockets (and the pure parser over canned streams) and pin the
typed error contract: 400 for framing damage, 408-free (idle closes are
silent), 411 for body methods without a length, 413 from the header
alone.
"""

import asyncio
import json

import pytest

from repro.serving.http import (
    MAX_BODY_BYTES,
    ConnectionLimits,
    HttpError,
    read_request,
    run_connection,
)


def parse(raw: bytes):
    """Run the request parser over a canned byte stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


async def echo_respond(request):
    """Tiny app: echoes method/path/body so responses are attributable."""
    return (
        200,
        {
            "method": request.method,
            "path": request.path,
            "body": request.body.decode("utf-8", "replace"),
        },
        None,
    )


def run_loop(interact, *, limits=None, respond=echo_respond):
    """Serve ``respond`` on an ephemeral port and run ``interact(port)``."""

    async def handle(reader, writer):
        try:
            await run_connection(reader, writer, respond, limits)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def go():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await interact(port)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(go())


def request_bytes(
    method="GET", path="/", body=b"", extra="", version="HTTP/1.1"
):
    head = f"{method} {path} {version}\r\nHost: t\r\n{extra}"
    if body or method in ("POST", "PUT", "PATCH"):
        head += f"Content-Length: {len(body)}\r\n"
    return head.encode() + b"\r\n" + body


async def read_one_response(reader):
    """Read exactly one Content-Length-framed response from the stream."""
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length)
    status = int(head.split()[1])
    return status, json.loads(body), head


class TestByteBoundarySplits:
    def test_request_split_at_every_boundary(self):
        raw = request_bytes("POST", "/split", body=b'{"x": 1}')

        async def interact(port):
            results = []
            for cut in range(1, len(raw)):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(raw[:cut])
                await writer.drain()
                await asyncio.sleep(0)  # let the server read a partial
                writer.write(raw[cut:])
                await writer.drain()
                results.append(await read_one_response(reader))
                writer.close()
                await writer.wait_closed()
            return results

        for status, body, _ in run_loop(interact):
            assert status == 200
            assert body == {
                "method": "POST",
                "path": "/split",
                "body": '{"x": 1}',
            }

    def test_byte_at_a_time_dribble(self):
        raw = request_bytes("GET", "/dribble")

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i in range(len(raw)):
                writer.write(raw[i : i + 1])
                await writer.drain()
            out = await read_one_response(reader)
            writer.close()
            await writer.wait_closed()
            return out

        status, body, _ = run_loop(interact)
        assert status == 200 and body["path"] == "/dribble"


class TestPipelining:
    def test_pipelined_requests_in_one_segment_answered_in_order(self):
        burst = b"".join(
            request_bytes("GET", f"/req/{i}") for i in range(5)
        ) + request_bytes("GET", "/last", extra="Connection: close\r\n")

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(burst)
            await writer.drain()
            out = [await read_one_response(reader) for _ in range(6)]
            writer.close()
            await writer.wait_closed()
            return out

        results = run_loop(interact)
        assert [body["path"] for _, body, _ in results] == [
            "/req/0",
            "/req/1",
            "/req/2",
            "/req/3",
            "/req/4",
            "/last",
        ]
        # Every response but the final one advertises keep-alive.
        for _, _, head in results[:-1]:
            assert b"Connection: keep-alive" in head
        assert b"Connection: close" in results[-1][2]

    def test_pipelined_responses_in_order_under_reordered_completion(self):
        # The first request sleeps longer than the second computes, so
        # only ordered writing can pass this.
        async def respond(request):
            delay = 0.05 if request.path == "/slow" else 0.0
            await asyncio.sleep(delay)
            return 200, {"path": request.path}, None

        burst = request_bytes("GET", "/slow") + request_bytes(
            "GET", "/fast", extra="Connection: close\r\n"
        )

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(burst)
            await writer.drain()
            out = [await read_one_response(reader) for _ in range(2)]
            writer.close()
            await writer.wait_closed()
            return out

        results = run_loop(interact, respond=respond)
        assert [body["path"] for _, body, _ in results] == ["/slow", "/fast"]

    def test_trailing_garbage_after_close_request_is_ignored(self):
        raw = request_bytes(
            "GET", "/bye", extra="Connection: close\r\n"
        ) + b"\x00\xff GARBAGE NOT HTTP \xde\xad"

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(raw)
            await writer.drain()
            out = await read_one_response(reader)
            rest = await reader.read()  # server closes; no second response
            writer.close()
            await writer.wait_closed()
            return out, rest

        (status, body, _), rest = run_loop(interact)
        assert status == 200 and body["path"] == "/bye"
        assert rest == b""

    def test_garbage_after_keepalive_request_answers_then_400s(self):
        raw = request_bytes("GET", "/ok") + b"NOT-HTTP-AT-ALL\r\n\r\n"

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(raw)
            await writer.drain()
            first = await read_one_response(reader)
            second = await read_one_response(reader)
            writer.close()
            await writer.wait_closed()
            return first, second

        (s1, b1, _), (s2, b2, head2) = run_loop(interact)
        assert s1 == 200 and b1["path"] == "/ok"
        assert s2 == 400 and "malformed request line" in b2["error"]
        assert b"Connection: close" in head2


class TestLimits:
    def test_oversized_header_line_400(self):
        raw = (
            b"GET / HTTP/1.1\r\nX-Huge: " + b"a" * (17 * 1024) + b"\r\n\r\n"
        )

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(raw)
            await writer.drain()
            out = await read_one_response(reader)
            writer.close()
            await writer.wait_closed()
            return out

        status, body, _ = run_loop(interact)
        assert status == 400 and "too long" in body["error"]

    def test_too_many_header_lines_400(self):
        headers = "".join(f"X-H{i}: v\r\n" for i in range(200))
        with pytest.raises(HttpError, match="too many header lines"):
            parse(f"GET / HTTP/1.1\r\n{headers}\r\n".encode())

    def test_post_without_content_length_is_411(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST /v1/transform HTTP/1.1\r\nHost: t\r\n\r\n")
        assert err.value.status == 411
        assert err.value.error_type == "length_required"

    def test_get_without_content_length_is_fine(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        assert request.method == "GET" and request.body == b""

    def test_body_cap_enforced_from_header_alone(self):
        # Declares 1 byte over the cap but sends nothing: the 413 must
        # come from the declaration, before any body byte is buffered.
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
        assert err.value.status == 413
        assert err.value.error_type == "payload_too_large"

    def test_body_exactly_at_cap_would_be_read(self):
        # At the cap the parser proceeds to read the body (and then
        # reports the short stream, not a 413).
        with pytest.raises(HttpError, match="shorter than Content-Length"):
            parse(
                b"POST / HTTP/1.1\r\n"
                + f"Content-Length: {MAX_BODY_BYTES}\r\n\r\n".encode()
            )

    def test_max_requests_per_connection_closes(self):
        limits = ConnectionLimits(max_requests=2)
        burst = b"".join(request_bytes("GET", f"/{i}") for i in range(4))

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(burst)
            await writer.drain()
            first = await read_one_response(reader)
            second = await read_one_response(reader)
            rest = await reader.read()
            writer.close()
            await writer.wait_closed()
            return first, second, rest

        (s1, _, h1), (s2, _, h2), rest = run_loop(interact, limits=limits)
        assert s1 == s2 == 200
        assert b"Connection: keep-alive" in h1
        assert b"Connection: close" in h2
        assert rest == b""  # requests beyond the cap are never answered


class TestIdleAndHalfClose:
    def test_idle_timeout_closes_silently(self):
        limits = ConnectionLimits(idle_timeout_s=0.1)

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(request_bytes("GET", "/one"))
            await writer.drain()
            first = await read_one_response(reader)
            # ... then go idle: the server must close without writing
            # anything more (no fabricated error response).
            rest = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            await writer.wait_closed()
            return first, rest

        (status, body, _), rest = run_loop(interact, limits=limits)
        assert status == 200 and body["path"] == "/one"
        assert rest == b""

    def test_idle_timeout_mid_request_closes(self):
        limits = ConnectionLimits(idle_timeout_s=0.1)

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /half HTTP/1.1\r\nHos")  # stalls forever
            await writer.drain()
            rest = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            await writer.wait_closed()
            return rest

        assert run_loop(interact, limits=limits) == b""

    def test_half_closed_peer_gets_remaining_responses(self):
        # Client sends two pipelined requests then shuts down its write
        # side; both responses must still arrive.
        burst = request_bytes("GET", "/a") + request_bytes("GET", "/b")

        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(burst)
            await writer.drain()
            writer.write_eof()
            first = await read_one_response(reader)
            second = await read_one_response(reader)
            rest = await reader.read()
            writer.close()
            await writer.wait_closed()
            return first, second, rest

        (s1, b1, _), (s2, b2, _), rest = run_loop(interact)
        assert (s1, b1["path"]) == (200, "/a")
        assert (s2, b2["path"]) == (200, "/b")
        assert rest == b""

    def test_peer_reset_mid_response_does_not_raise(self):
        # Abruptly closing after sending must not blow up the server
        # (the next request on a fresh connection still works).
        async def interact(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(request_bytes("GET", "/doomed"))
            await writer.drain()
            writer.close()  # do not read the response at all
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                request_bytes("GET", "/alive", extra="Connection: close\r\n")
            )
            await writer.drain()
            out = await read_one_response(reader)
            writer.close()
            await writer.wait_closed()
            return out

        status, body, _ = run_loop(interact)
        assert status == 200 and body["path"] == "/alive"


class TestProtocolVersions:
    def test_http10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\nHost: t\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_keepalive_opt_in(self):
        request = parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert request.keep_alive is True

    def test_http11_defaults_to_keepalive(self):
        request = parse(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
        assert request.keep_alive is True

    def test_http11_close_honored_case_insensitively(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n")
        assert request.keep_alive is False

    def test_connection_header_token_list(self):
        request = parse(
            b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        )
        assert request.keep_alive is False
