"""Tests for Mondrian-t, Incognito-t and SABRE baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfidentialModel
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.generalization import (
    NumericHierarchy,
    incognito,
    mondrian_partition,
    sabre,
)
from repro.generalization.sabre import _greedy_buckets


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=200)


def random_dataset(n, seed):
    rng = np.random.default_rng(seed)
    return Microdata(
        {
            "q1": rng.normal(size=n),
            "q2": rng.normal(size=n),
            "secret": rng.permutation(np.arange(float(n))),
        },
        [
            numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


class TestMondrian:
    def test_k_anonymous_partition(self, mcd_small):
        p = mondrian_partition(mcd_small, k=5)
        assert p.min_size >= 5

    def test_classic_mondrian_sizes_below_2k(self):
        data = random_dataset(128, 0)
        p = mondrian_partition(data, k=4)
        assert p.min_size >= 4
        assert p.max_size <= 2 * 4 - 1  # tie-free numeric data splits fully

    def test_t_constraint_respected(self, mcd_small):
        t = 0.15
        p = mondrian_partition(mcd_small, k=3, t=t)
        model = ConfidentialModel(mcd_small)
        emds = model.partition_emds(list(p.clusters()))
        assert emds.max() <= t + 1e-12

    def test_stricter_t_fewer_regions(self, mcd_small):
        loose = mondrian_partition(mcd_small, k=3, t=0.3)
        strict = mondrian_partition(mcd_small, k=3, t=0.05)
        assert strict.n_clusters <= loose.n_clusters

    def test_t_zero_single_region(self, mcd_small):
        p = mondrian_partition(mcd_small, k=2, t=0.0)
        assert p.n_clusters == 1

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            mondrian_partition(mcd_small, k=0)
        with pytest.raises(ValueError, match="t must be"):
            mondrian_partition(mcd_small, k=2, t=-1.0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(10, 120), k=st.integers(2, 6), seed=st.integers(0, 50))
    def test_partition_invariants_property(self, n, k, seed):
        data = random_dataset(n, seed)
        p = mondrian_partition(data, k=k)
        assert p.min_size >= k
        assert p.sizes().sum() == n

    def test_constant_qis_single_region(self):
        data = Microdata(
            {
                "q1": np.full(10, 7.0),
                "secret": np.arange(10.0),
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("secret", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        p = mondrian_partition(data, k=2)
        assert p.n_clusters == 1


class TestIncognito:
    @pytest.fixture
    def hierarchies(self, mcd_small):
        return {
            name: NumericHierarchy.from_values(mcd_small.values(name), n_levels=4)
            for name in mcd_small.quasi_identifiers
        }

    def test_finds_k_anonymous_recoding(self, mcd_small, hierarchies):
        result = incognito(mcd_small, hierarchies, k=5)
        assert result.release.k_level() >= 5

    def test_t_constraint(self, mcd_small, hierarchies):
        result = incognito(mcd_small, hierarchies, k=3, t=0.2)
        assert result.release.t_level() <= 0.2 + 1e-12
        assert result.release.k_level() >= 3

    def test_minimality_of_vectors(self, mcd_small, hierarchies):
        """No returned vector dominates another (all are minimal)."""
        result = incognito(mcd_small, hierarchies, k=5)
        vectors = [tuple(v[n] for n in mcd_small.quasi_identifiers)
                   for v in result.minimal_vectors]
        for a in vectors:
            for b in vectors:
                if a != b:
                    assert not all(x <= y for x, y in zip(a, b))

    def test_pruning_reduces_checks(self, mcd_small, hierarchies):
        result = incognito(mcd_small, hierarchies, k=2)
        lattice_size = np.prod(
            [h.n_levels + 1 for h in hierarchies.values()]
        )
        assert result.n_checked < lattice_size

    def test_stricter_k_more_general_recodings(self, mcd_small, hierarchies):
        from repro.generalization import recoding_loss

        easy = incognito(mcd_small, hierarchies, k=2)
        hard = incognito(mcd_small, hierarchies, k=40)
        assert recoding_loss(hierarchies, hard.release.levels) >= recoding_loss(
            hierarchies, easy.release.levels
        )

    def test_validation(self, mcd_small, hierarchies):
        with pytest.raises(ValueError, match="k must be"):
            incognito(mcd_small, hierarchies, k=0)
        with pytest.raises(ValueError, match="t must be"):
            incognito(mcd_small, hierarchies, k=2, t=-0.1)
        with pytest.raises(ValueError, match="no hierarchy"):
            incognito(mcd_small, {}, k=2)


class TestSABRE:
    def test_t_close_k_anonymous(self, mcd_small):
        result = sabre(mcd_small, k=3, t=0.15)
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_bucket_count_at_least_analytic(self, mcd_small):
        """Greedy bucketization yields >= the analytic bucket count."""
        from repro.core import required_cluster_size

        result = sabre(mcd_small, k=2, t=0.1)
        assert result.info["n_buckets"] >= required_cluster_size(200, 0.1)

    def test_utility_not_better_than_tclose_first(self, mcd_small):
        """The paper's claim: SABRE's classes are at least as large."""
        from repro.core import tcloseness_first

        t = 0.1
        ours = tcloseness_first(mcd_small, k=2, t=t)
        theirs = sabre(mcd_small, k=2, t=t)
        assert theirs.mean_cluster_size >= ours.mean_cluster_size - 1e-9

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            sabre(mcd_small, k=0, t=0.1)
        with pytest.raises(ValueError, match="t must be"):
            sabre(mcd_small, k=2, t=-0.1)

    def test_multiple_confidential_rejected(self):
        from repro.data import load_census

        census = load_census(n=100).with_roles(
            quasi_identifiers=("TAXINC", "POTHVAL"),
            confidential=("FEDTAX", "FICA"),
        )
        with pytest.raises(ValueError, match="exactly one"):
            sabre(census, k=2, t=0.1)

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(20, 100),
        k=st.integers(2, 5),
        t=st.floats(0.05, 0.4),
        seed=st.integers(0, 30),
    )
    def test_always_valid_property(self, n, k, t, seed):
        data = random_dataset(n, seed)
        result = sabre(data, k=k, t=t)
        assert result.satisfies_t
        result.partition.validate_min_size(k)
        assert result.partition.sizes().sum() == n


class TestSABREHelpers:
    def test_greedy_buckets_cover_everything(self):
        rng = np.random.default_rng(1)
        conf = rng.normal(size=50)
        buckets = _greedy_buckets(conf, 5)
        all_records = np.sort(np.concatenate(buckets))
        np.testing.assert_array_equal(all_records, np.arange(50))

    def test_greedy_buckets_ordered_by_value(self):
        conf = np.array([5.0, 1.0, 3.0, 2.0, 4.0, 0.0])
        buckets = _greedy_buckets(conf, 3)
        tops = [conf[b].max() for b in buckets]
        bottoms = [conf[b].min() for b in buckets]
        for prev_top, next_bottom in zip(tops, bottoms[1:]):
            assert prev_top <= next_bottom

    def test_greedy_buckets_never_split_ties(self):
        conf = np.array([1.0, 1.0, 1.0, 2.0, 2.0, 3.0])
        buckets = _greedy_buckets(conf, 3)
        for bucket in buckets:
            values = set(conf[bucket].tolist())
            for other in buckets:
                if other is not bucket:
                    assert not values & set(conf[other].tolist())

    def test_class_totals_balanced(self):
        """SABRE class sizes differ by at most one before merging."""
        data = load_mcd(n=100)
        result = sabre(data, k=3, t=0.3)
        if result.info["n_merges"] == 0:
            sizes = result.partition.sizes()
            assert sizes.max() - sizes.min() <= 1
