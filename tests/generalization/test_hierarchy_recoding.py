"""Tests for hierarchies, global recoding and suppression."""

import numpy as np
import pytest

from repro.data import AttributeRole, Microdata, nominal, numeric
from repro.distance import Taxonomy
from repro.generalization import (
    NumericHierarchy,
    TaxonomyHierarchy,
    recode,
    recoding_loss,
    small_class_mask,
    suppress_small_classes,
    suppression_feasible,
)


class TestNumericHierarchy:
    def test_level0_exact(self):
        h = NumericHierarchy(0.0, 100.0, n_levels=3)
        values = np.array([5.0, 50.0])
        np.testing.assert_array_equal(h.generalize(values, 0), values)
        assert h.loss(0) == 0.0

    def test_top_level_single_bin(self):
        h = NumericHierarchy(0.0, 100.0, n_levels=3)
        out = h.generalize(np.array([1.0, 99.0]), 3)
        assert len(set(out)) == 1
        assert h.loss(3) == 1.0

    def test_level_bins_halve(self):
        h = NumericHierarchy(0.0, 8.0, n_levels=3)
        assert h.n_bins(1) == 4
        assert h.n_bins(2) == 2
        assert h.n_bins(3) == 1

    def test_interval_labels(self):
        h = NumericHierarchy(0.0, 8.0, n_levels=3)
        out = h.generalize(np.array([1.0, 7.0]), 2)
        assert out[0] == "[0, 4)"
        assert out[1] == "[4, 8)"

    def test_out_of_range_clamped(self):
        h = NumericHierarchy(0.0, 8.0, n_levels=3)
        out = h.generalize(np.array([-5.0, 99.0]), 1)
        assert out[0] == "[0, 2)"
        assert out[1] == "[6, 8)"

    def test_midpoints(self):
        h = NumericHierarchy(0.0, 8.0, n_levels=3)
        mids = h.interval_midpoints(np.array([1.0, 7.0]), 2)
        np.testing.assert_allclose(mids, [2.0, 6.0])

    def test_midpoints_level0(self):
        h = NumericHierarchy(0.0, 8.0, n_levels=3)
        np.testing.assert_allclose(
            h.interval_midpoints(np.array([1.5]), 0), [1.5]
        )

    def test_from_values(self):
        h = NumericHierarchy.from_values(np.array([3.0, 13.0]))
        assert h.lo == 3.0 and h.hi == 13.0

    def test_from_values_constant_column(self):
        h = NumericHierarchy.from_values(np.array([5.0, 5.0]))
        assert h.hi > h.lo

    def test_validation(self):
        with pytest.raises(ValueError, match="hi > lo"):
            NumericHierarchy(1.0, 1.0)
        with pytest.raises(ValueError, match="n_levels"):
            NumericHierarchy(0.0, 1.0, n_levels=0)
        h = NumericHierarchy(0.0, 1.0, n_levels=2)
        with pytest.raises(ValueError, match="level must be"):
            h.generalize(np.array([0.5]), 5)
        with pytest.raises(ValueError, match="exact values"):
            h.bin_indices(np.array([0.5]), 0)
        with pytest.raises(ValueError, match="empty"):
            NumericHierarchy.from_values(np.array([]))

    def test_loss_monotone(self):
        h = NumericHierarchy(0.0, 1.0, n_levels=4)
        losses = [h.loss(lv) for lv in range(5)]
        assert losses == sorted(losses)


class TestTaxonomyHierarchy:
    @pytest.fixture
    def tree(self):
        return Taxonomy.from_nested(
            {"Any": {"Tech": ["engineer", "chemist"], "Art": ["writer", "dancer"]}}
        )

    def test_levels(self, tree):
        h = TaxonomyHierarchy(tree)
        assert h.n_levels == 2
        values = np.array(["engineer", "dancer"], dtype=object)
        np.testing.assert_array_equal(h.generalize(values, 0), values)
        np.testing.assert_array_equal(h.generalize(values, 1), ["Tech", "Art"])
        np.testing.assert_array_equal(h.generalize(values, 2), ["Any", "Any"])

    def test_loss_endpoints(self, tree):
        h = TaxonomyHierarchy(tree)
        assert h.loss(0) == 0.0
        assert h.loss(2) == 1.0
        assert 0.0 < h.loss(1) < 1.0


@pytest.fixture
def jobs_data():
    tree_cats = ("engineer", "chemist", "writer", "dancer")
    return Microdata(
        {
            "age": np.array([25.0, 26.0, 60.0, 61.0]),
            "job": np.array(["engineer", "chemist", "writer", "dancer"], object),
            "salary": np.array([10.0, 20.0, 30.0, 40.0]),
        },
        [
            numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
            nominal("job", tree_cats, role=AttributeRole.QUASI_IDENTIFIER),
            numeric("salary", role=AttributeRole.CONFIDENTIAL),
        ],
    )


@pytest.fixture
def jobs_hierarchies(jobs_data):
    tree = Taxonomy.from_nested(
        {"Any": {"Tech": ["engineer", "chemist"], "Art": ["writer", "dancer"]}}
    )
    return {
        "age": NumericHierarchy.from_values(jobs_data.values("age"), n_levels=2),
        "job": TaxonomyHierarchy(tree),
    }


class TestRecode:
    def test_level_zero_identity_classes(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 0, "job": 0})
        assert release.k_level() == 1  # all rows distinct

    def test_generalization_merges_classes(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 2, "job": 1})
        # ages suppressed, jobs at Tech/Art: two classes of 2
        assert release.classes().n_clusters == 2
        assert release.k_level() == 2

    def test_t_level_decreases_with_generalization(self, jobs_data, jobs_hierarchies):
        fine = recode(jobs_data, jobs_hierarchies, {"age": 0, "job": 0})
        coarse = recode(jobs_data, jobs_hierarchies, {"age": 2, "job": 2})
        assert coarse.t_level() <= fine.t_level()

    def test_rows_include_confidential(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 2, "job": 1})
        rows = release.rows()
        assert len(rows) == 4
        assert rows[0][-1] == 10.0

    def test_missing_hierarchy_rejected(self, jobs_data, jobs_hierarchies):
        with pytest.raises(ValueError, match="no hierarchy"):
            recode(jobs_data, {"age": jobs_hierarchies["age"]}, {"age": 1})

    def test_unknown_level_attr_rejected(self, jobs_data, jobs_hierarchies):
        with pytest.raises(ValueError, match="unknown attributes"):
            recode(jobs_data, jobs_hierarchies, {"zzz": 1})

    def test_recoding_loss(self, jobs_hierarchies):
        zero = recoding_loss(jobs_hierarchies, {"age": 0, "job": 0})
        full = recoding_loss(jobs_hierarchies, {"age": 2, "job": 2})
        assert zero == 0.0
        assert full == 1.0
        assert recoding_loss({}, {}) == 0.0


class TestSuppression:
    def test_small_class_mask(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 0, "job": 0})
        mask = small_class_mask(release, 2)
        assert mask.all()  # every class is a singleton

    def test_suppress_small_classes(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 2, "job": 1})
        keep, rate = suppress_small_classes(release, 2)
        assert rate == 0.0
        assert keep.all()

    def test_feasibility_budget(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 0, "job": 0})
        assert not suppression_feasible(release, 2, max_rate=0.5)
        assert suppression_feasible(release, 2, max_rate=1.0)

    def test_validation(self, jobs_data, jobs_hierarchies):
        release = recode(jobs_data, jobs_hierarchies, {"age": 0, "job": 0})
        with pytest.raises(ValueError, match="k must be"):
            small_class_mask(release, 0)
        with pytest.raises(ValueError, match="max_rate"):
            suppression_feasible(release, 2, max_rate=1.5)
