"""Exhaustive cross-validation of the Incognito lattice search.

On a small lattice we can brute-force every recoding vector; Incognito's
pruned search must return (a) the same feasible set boundary and (b) a
release whose Loss Metric equals the brute-force optimum.
"""

from itertools import product

import numpy as np
import pytest

from repro.data import AttributeRole, Microdata, numeric
from repro.generalization import (
    NumericHierarchy,
    incognito,
    recode,
    recoding_loss,
)


@pytest.fixture
def setup():
    rng = np.random.default_rng(17)
    data = Microdata(
        {
            "a": rng.normal(size=60),
            "b": rng.normal(size=60),
            "s": rng.permutation(np.arange(60.0)),
        },
        [
            numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("b", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("s", role=AttributeRole.CONFIDENTIAL),
        ],
    )
    hierarchies = {
        "a": NumericHierarchy.from_values(data.values("a"), n_levels=3),
        "b": NumericHierarchy.from_values(data.values("b"), n_levels=3),
    }
    return data, hierarchies


def brute_force(data, hierarchies, k, t):
    """All feasible vectors and the optimal loss, by full enumeration."""
    names = list(hierarchies)
    feasible = []
    for vector in product(*(range(hierarchies[n].n_levels + 1) for n in names)):
        levels = dict(zip(names, vector))
        release = recode(data, hierarchies, levels)
        if release.k_level() < k:
            continue
        if t is not None and release.t_level() > t + 1e-12:
            continue
        feasible.append(levels)
    best = min(recoding_loss(hierarchies, lv) for lv in feasible)
    return feasible, best


@pytest.mark.parametrize("k,t", [(3, None), (3, 0.25), (10, None), (5, 0.15)])
def test_incognito_matches_brute_force(setup, k, t):
    data, hierarchies = setup
    feasible, best_loss = brute_force(data, hierarchies, k, t)
    result = incognito(data, hierarchies, k, t=t)

    # The chosen release is feasible and loss-optimal.
    assert result.release.k_level() >= k
    if t is not None:
        assert result.release.t_level() <= t + 1e-12
    assert recoding_loss(hierarchies, result.release.levels) == pytest.approx(
        best_loss
    )

    # Every brute-force feasible vector dominates (or is) a minimal vector.
    names = list(hierarchies)
    minimal = [tuple(v[n] for n in names) for v in result.minimal_vectors]
    for levels in feasible:
        vector = tuple(levels[n] for n in names)
        assert any(
            all(m <= x for m, x in zip(mv, vector)) for mv in minimal
        ), vector

    # And every minimal vector really is feasible.
    feasible_set = {tuple(v[n] for n in names) for v in feasible}
    for mv in minimal:
        assert mv in feasible_set
