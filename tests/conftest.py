"""Shared test configuration: hypothesis profiles.

Two profiles are registered:

* ``dev`` (default) — hypothesis defaults with deadlines disabled, so
  occasional slow numpy warm-up doesn't flake local runs.
* ``ci`` — additionally derandomized: every run executes the same example
  sequence, so the property suites are deterministic in CI (the
  ``hypothesis`` job in ``.github/workflows/ci.yml`` selects it via
  ``HYPOTHESIS_PROFILE=ci``).

A test's own ``@settings(...)`` overrides only the fields it names; the
active profile supplies the rest — which is how ``ci`` derandomizes even
tests that pin their own ``max_examples``.
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
