"""Tests for information-loss metrics (Eq. 5 SSE and companions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import anonymize
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.metrics import (
    average_class_size_metric,
    discernibility,
    normalized_sse,
    sse_ratio,
    within_cluster_sse,
)
from repro.microagg import Partition


@pytest.fixture
def pair():
    original = Microdata(
        {
            "a": np.array([0.0, 10.0]),
            "s": np.array([1.0, 2.0]),
        },
        [
            numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("s", role=AttributeRole.CONFIDENTIAL),
        ],
    )
    released = original.with_columns({"a": np.array([5.0, 5.0])})
    return original, released


class TestNormalizedSSE:
    def test_identity_release_zero(self, pair):
        original, _ = pair
        assert normalized_sse(original, original) == 0.0

    def test_hand_computed(self, pair):
        original, released = pair
        # Each record moved 5 over a range of 10 -> (0.5)^2 each -> mean 0.25.
        assert normalized_sse(original, released) == pytest.approx(0.25)

    def test_scale_invariance(self, pair):
        """Scaling an attribute by 1000x does not change the score."""
        original, released = pair
        scaled_orig = original.with_columns({"a": original.values("a") * 1000})
        scaled_rel = released.with_columns({"a": released.values("a") * 1000})
        assert normalized_sse(scaled_orig, scaled_rel) == pytest.approx(
            normalized_sse(original, released)
        )

    def test_constant_column_contributes_zero(self):
        md = Microdata(
            {"a": np.array([5.0, 5.0]), "s": np.array([0.0, 1.0])},
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        assert normalized_sse(md, md) == 0.0

    def test_row_mismatch_rejected(self, pair):
        original, _ = pair
        with pytest.raises(ValueError, match="records"):
            normalized_sse(original, original.subset([0]))

    def test_no_attributes_rejected(self, pair):
        original, released = pair
        with pytest.raises(ValueError, match="no attributes"):
            normalized_sse(original, released, names=[])

    def test_single_cluster_release_bounded_by_one(self):
        """Collapsing everything to the mean keeps Eq. 5 SSE <= 1."""
        data = load_mcd(n=100)
        release, _ = anonymize(data, k=100, t=1.0, method="merge")
        value = normalized_sse(data, release)
        assert 0.0 < value <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_larger_k_not_smaller_sse(self, seed):
        """More aggregation (larger k) cannot reduce Eq. 5 SSE under MDAV."""
        rng = np.random.default_rng(seed)
        data = Microdata(
            {
                "a": rng.normal(size=40),
                "s": rng.normal(size=40),
            },
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        release_small, _ = anonymize(data, k=2, t=1.0, method="merge")
        release_large, _ = anonymize(data, k=10, t=1.0, method="merge")
        assert normalized_sse(data, release_large) >= normalized_sse(
            data, release_small
        ) - 1e-9


class TestSSERatio:
    def test_identity_zero(self, pair):
        original, _ = pair
        assert sse_ratio(original, original) == 0.0

    def test_mean_collapse_is_one(self, pair):
        original, released = pair
        assert sse_ratio(original, released) == pytest.approx(1.0)

    def test_row_mismatch(self, pair):
        original, _ = pair
        with pytest.raises(ValueError, match="row-aligned"):
            sse_ratio(original, original.subset([0]))


class TestDiscernibility:
    def test_uniform_classes(self):
        assert discernibility(Partition([0, 0, 1, 1])) == 8.0

    def test_single_class_is_n_squared(self):
        assert discernibility(Partition.single_cluster(5)) == 25.0

    def test_minimum_at_k_sized_classes(self):
        balanced = Partition([0, 0, 1, 1, 2, 2])
        lopsided = Partition([0, 0, 0, 0, 1, 1])
        assert discernibility(balanced) < discernibility(lopsided)


class TestCAvg:
    def test_ideal_is_one(self):
        assert average_class_size_metric(Partition([0, 0, 1, 1]), 2) == 1.0

    def test_oversized_classes_above_one(self):
        assert average_class_size_metric(Partition.single_cluster(10), 2) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            average_class_size_metric(Partition([0]), 0)


class TestWithinClusterSSE:
    def test_zero_for_singletons(self):
        X = np.array([[1.0], [5.0]])
        assert within_cluster_sse(X, Partition([0, 1])) == 0.0

    def test_hand_value(self):
        X = np.array([[0.0], [2.0]])
        assert within_cluster_sse(X, Partition([0, 0])) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            within_cluster_sse(np.zeros(3), Partition([0, 0, 0]))
        with pytest.raises(ValueError, match="rows"):
            within_cluster_sse(np.zeros((2, 1)), Partition([0, 0, 0]))
