"""Tests for the analytical-utility workloads."""

import numpy as np
import pytest

from repro import anonymize
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.metrics import correlation_shift, range_query_error


@pytest.fixture(scope="module")
def pair():
    original = load_mcd(n=300)
    release, _ = anonymize(original, k=5, t=0.2)
    return original, release


class TestRangeQueries:
    def test_identity_release_zero_error(self):
        original = load_mcd(n=150)
        report = range_query_error(original, original, n_queries=50)
        assert report.mean_absolute_error == 0.0
        assert report.mean_relative_error == 0.0

    def test_anonymization_bounded_error(self, pair):
        original, release = pair
        report = range_query_error(original, release, n_queries=100)
        assert report.n_queries == 100
        assert 0.0 <= report.mean_relative_error < 1.0

    def test_determinism(self, pair):
        original, release = pair
        a = range_query_error(original, release, n_queries=30, seed=7)
        b = range_query_error(original, release, n_queries=30, seed=7)
        assert a == b

    def test_coarser_release_worse_queries(self):
        original = load_mcd(n=200)
        fine, _ = anonymize(original, k=2, t=1.0, method="merge")
        coarse, _ = anonymize(original, k=50, t=1.0, method="merge")
        fine_report = range_query_error(original, fine, n_queries=150)
        coarse_report = range_query_error(original, coarse, n_queries=150)
        assert (
            coarse_report.mean_relative_error
            >= fine_report.mean_relative_error - 0.01
        )

    def test_validation(self, pair):
        original, release = pair
        with pytest.raises(ValueError, match="selectivity"):
            range_query_error(original, release, selectivity=0.0)
        with pytest.raises(ValueError, match="n_queries"):
            range_query_error(original, release, n_queries=0)
        with pytest.raises(ValueError, match="row-aligned"):
            range_query_error(original, release.subset([0, 1]))


class TestCorrelationShift:
    def test_identity_zero(self):
        original = load_mcd(n=150)
        assert correlation_shift(original, original) == pytest.approx(0.0)

    def test_anonymization_small_shift(self, pair):
        original, release = pair
        shift = correlation_shift(original, release)
        assert 0.0 <= shift < 0.5

    def test_constant_column_handled(self):
        original = Microdata(
            {
                "a": np.array([1.0, 2.0, 3.0]),
                "b": np.array([2.0, 4.0, 6.0]),
            },
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("b", role=AttributeRole.QUASI_IDENTIFIER),
            ],
        )
        collapsed = original.with_columns({"a": np.full(3, 2.0)})
        shift = correlation_shift(original, collapsed, names=("a", "b"))
        assert shift == pytest.approx(1.0)  # corr 1 -> 0 (constant column)

    def test_needs_two_attributes(self):
        md = Microdata(
            {"a": np.array([1.0, 2.0])},
            [numeric("a", role=AttributeRole.QUASI_IDENTIFIER)],
        )
        with pytest.raises(ValueError, match="two numeric"):
            correlation_shift(md, md)

    def test_row_mismatch(self, pair):
        original, release = pair
        with pytest.raises(ValueError, match="row-aligned"):
            correlation_shift(original, release.subset([0]))
