"""Differential tests: sparse ordered-EMD paths vs the dense definition.

``OrderedEMDReference.emd_of_bins_sparse`` is the O(c log m) segment
evaluation that the incremental swap/merge engine of Algorithm 2 is built
on, and ``ClusterEMDTracker`` scores and commits swaps through the same
segment arithmetic.  Both must agree with the *dense* Definition-2
evaluation (``emd_of_bins`` — explicit histogram, cumulative sum, absolute
sum) to float precision on any cluster, any swap, and any adversarial
shape: clusters spanning empty bins, single-bin clusters, all-duplicate
datasets, a one-bin reference (m=1), and — exhaustively — every multiset
cluster and every (remove, add) pair over small bin grids.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.emd import (
    ClusterEMDTracker,
    NominalClusterTracker,
    NominalEMDReference,
    OrderedEMDReference,
)

#: Sparse and dense evaluations sum identical terms in different orders;
#: agreement is asserted to well below any decision margin in the library.
ATOL = 1e-12


def dense_swap_emd(ref, bins, j, add_bin):
    """Definitional EMD of ``bins`` with member ``j`` replaced by ``add_bin``."""
    swapped = np.asarray(bins).copy()
    swapped[j] = add_bin
    return ref.emd_of_bins(swapped)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 120),
    c=st.integers(1, 15),
    tied=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_sparse_matches_dense(n, c, tied, seed):
    rng = np.random.default_rng(seed)
    if tied:
        values = rng.integers(0, max(2, n // 3), size=n).astype(float)
    else:
        values = rng.permutation(np.arange(float(n)))
    ref = OrderedEMDReference(values, mode="distinct")
    bins = ref.bins_of(rng.choice(values, size=min(c, n), replace=False))
    assert ref.emd_of_bins_sparse(bins) == pytest.approx(
        ref.emd_of_bins(bins), abs=1e-12
    )


def test_sparse_requires_distinct_mode():
    ref = OrderedEMDReference(np.arange(5.0), mode="rank")
    with pytest.raises(ValueError, match="distinct"):
        ref.emd_of_bins_sparse(np.array([0]))


def test_sparse_full_table_is_zero():
    values = np.arange(9.0)
    ref = OrderedEMDReference(values, mode="distinct")
    assert ref.emd_of_bins_sparse(ref.bins_of(values)) == pytest.approx(0.0)


def test_sparse_single_bin_dataset():
    ref = OrderedEMDReference(np.full(4, 2.5), mode="distinct")
    assert ref.emd_of_bins_sparse(np.array([0, 0])) == pytest.approx(0.0)


class TestSparseAdversarial:
    """Hand-picked shapes where segment bookkeeping is easiest to get wrong."""

    def test_cluster_spanning_empty_bins(self):
        # Dataset mass concentrated at the ends; the cluster sits on bins
        # 0 and m-1 with a long run of interior bins it never touches —
        # one giant segment whose crossing point lies strictly inside.
        values = np.concatenate([np.zeros(5), np.arange(1.0, 9.0), np.full(5, 9.0)])
        ref = OrderedEMDReference(values, mode="distinct")
        bins = np.array([0, ref.m - 1])
        assert ref.emd_of_bins_sparse(bins) == pytest.approx(
            ref.emd_of_bins(bins), abs=ATOL
        )

    def test_single_bin_cluster_each_position(self):
        values = np.arange(7.0)
        ref = OrderedEMDReference(values, mode="distinct")
        for b in range(ref.m):
            bins = np.array([b])
            assert ref.emd_of_bins_sparse(bins) == pytest.approx(
                ref.emd_of_bins(bins), abs=ATOL
            )

    def test_all_duplicates_cluster(self):
        values = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 4.0])
        ref = OrderedEMDReference(values, mode="distinct")
        bins = np.zeros(6, dtype=int)  # six copies of the first bin
        assert ref.emd_of_bins_sparse(bins) == pytest.approx(
            ref.emd_of_bins(bins), abs=ATOL
        )

    def test_m_equals_one(self):
        # Degenerate reference: every dataset value identical, one bin,
        # denom clamped to 1; every cluster has EMD exactly 0.
        ref = OrderedEMDReference(np.full(6, 42.0), mode="distinct")
        for c in (1, 2, 5):
            bins = np.zeros(c, dtype=int)
            assert ref.emd_of_bins(bins) == 0.0
            assert ref.emd_of_bins_sparse(bins) == 0.0
            tracker = ClusterEMDTracker(ref, bins)
            assert tracker.emd == 0.0
            assert tracker.swap_emds(bins, 0) == pytest.approx(0.0)

    def test_cluster_size_larger_than_bins(self):
        values = np.array([0.0, 0.0, 1.0, 1.0, 2.0])
        ref = OrderedEMDReference(values, mode="distinct")
        bins = np.array([0, 0, 1, 1, 2, 2, 2])
        assert ref.emd_of_bins_sparse(bins) == pytest.approx(
            ref.emd_of_bins(bins), abs=ATOL
        )


class TestTrackerDifferential:
    """The incremental swap deltas vs the dense definitional evaluation."""

    @settings(max_examples=60)
    @given(
        n=st.integers(2, 80),
        c=st.integers(1, 10),
        tied=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_swap_emds_match_dense_definition(self, n, c, tied, seed):
        rng = np.random.default_rng(seed)
        if tied:
            values = rng.integers(0, max(2, n // 3), size=n).astype(float)
        else:
            values = rng.permutation(np.arange(float(n)))
        ref = OrderedEMDReference(values, mode="distinct")
        bins = rng.integers(0, ref.m, size=c)
        tracker = ClusterEMDTracker(ref, bins)
        add_bin = int(rng.integers(0, ref.m))
        scores = tracker.swap_emds(bins, add_bin)
        for j in range(c):
            assert scores[j] == pytest.approx(
                dense_swap_emd(ref, bins, j, add_bin), abs=ATOL
            )

    @settings(max_examples=40)
    @given(n=st.integers(2, 60), c=st.integers(1, 8), seed=st.integers(0, 10_000))
    def test_random_swap_walk_stays_on_dense_definition(self, n, c, seed):
        """After any sequence of applied swaps, cached, sparse and dense
        evaluations of the current cluster all agree."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, max(2, n // 2), size=n).astype(float)
        ref = OrderedEMDReference(values, mode="distinct")
        bins = rng.integers(0, ref.m, size=c)
        tracker = ClusterEMDTracker(ref, bins)
        for _ in range(12):
            j = int(rng.integers(c))
            add = int(rng.integers(ref.m))
            tracker.apply_swap(int(bins[j]), add)
            bins[j] = add
            assert tracker.emd == pytest.approx(ref.emd_of_bins(bins), abs=ATOL)
            assert tracker.exact_emd == pytest.approx(
                ref.emd_of_bins(bins), abs=ATOL
            )

    def test_exhaustive_small_m(self):
        """Every multiset cluster x every (remove, add) pair, m in 1..4.

        Small grids are where segment edge cases concentrate (leading
        segment empty, add_bin below/above every member, total mass 1 on
        the last bin); enumeration leaves no corner unvisited.
        """
        for m in range(1, 5):
            # A dataset with m distinct values, mildly non-uniform.
            values = np.repeat(np.arange(float(m)), np.arange(1, m + 1))
            ref = OrderedEMDReference(values, mode="distinct")
            assert ref.m == m
            for c in range(1, 4):
                for bins in itertools.combinations_with_replacement(range(m), c):
                    bins = np.array(bins)
                    tracker = ClusterEMDTracker(ref, bins)
                    assert tracker.emd == pytest.approx(
                        ref.emd_of_bins(bins), abs=ATOL
                    )
                    for j, add in itertools.product(range(c), range(m)):
                        expected = dense_swap_emd(ref, bins, j, add)
                        scores = tracker.swap_emds(bins, add)
                        assert scores[j] == pytest.approx(expected, abs=ATOL)
                        assert tracker.emd_with_swap(
                            int(bins[j]), add
                        ) == pytest.approx(expected, abs=ATOL)

    @settings(max_examples=30)
    @given(n=st.integers(2, 60), c=st.integers(1, 8), seed=st.integers(0, 10_000))
    def test_exact_arithmetic_within_band_of_sparse(self, n, c, seed):
        """The dense-adjudication values stay within the decision band
        (1e-12) of the sparse fast path — the invariant the banded
        tie-breaking in Algorithm 2 and the merge phase relies on."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, max(2, n // 2), size=n).astype(float)
        ref = OrderedEMDReference(values, mode="distinct")
        bins = rng.integers(0, ref.m, size=c)
        tracker = ClusterEMDTracker(ref, bins)
        assert abs(tracker.emd - tracker.exact_emd) < 1e-12
        add_bin = int(rng.integers(ref.m))
        scores = tracker.swap_emds(bins, add_bin)
        for j in range(c):
            exact = tracker.exact_swap_emd(int(bins[j]), add_bin)
            assert abs(scores[j] - exact) < 1e-12


class TestSwapContract:
    """Regression tests for the unified swap-contract of both trackers.

    The two ``swap_emds`` implementations historically drifted: the ordered
    docstring documented per-member semantics the nominal one lacked, the
    nominal scorer silently accepted out-of-range (even negative) bins via
    wrap-around indexing, and neither stated what committing an impossible
    removal does.  Both now share one contract: replace-at-constant-size
    semantics, ``remove_bin == add_bin`` scores exactly the current EMD,
    out-of-range bins raise ``IndexError`` everywhere, and committing a
    removal from an empty bin raises ``ValueError``.
    """

    @pytest.fixture
    def ordered(self):
        rng = np.random.default_rng(3)
        ref = OrderedEMDReference(rng.integers(0, 12, size=40).astype(float))
        bins = np.array([0, 2, 2, 5, 8])
        return ClusterEMDTracker(ref, bins), bins

    @pytest.fixture
    def nominal(self):
        codes = np.array([0, 0, 1, 2, 2, 2, 3, 4] * 3)
        ref = NominalEMDReference(codes, 5)
        bins = np.array([0, 2, 2, 3])
        return NominalClusterTracker(ref, bins), bins

    @pytest.mark.parametrize("which", ["ordered", "nominal"])
    def test_noop_swap_scores_current_emd_exactly(self, which, request):
        tracker, bins = request.getfixturevalue(which)
        base = tracker.emd
        scores = tracker.swap_emds(bins, int(bins[1]))
        noop = bins == bins[1]
        assert (scores[noop] == base).all()  # bitwise, not approx
        assert tracker.emd_with_swap(int(bins[1]), int(bins[1])) == base

    @pytest.mark.parametrize("which", ["ordered", "nominal"])
    def test_out_of_range_bins_raise_everywhere(self, which, request):
        tracker, bins = request.getfixturevalue(which)
        m = tracker.ref.m
        for bad in (-1, m, m + 7):
            with pytest.raises(IndexError, match="out of range"):
                tracker.swap_emds(np.array([bad]), 0)
            with pytest.raises(IndexError, match="out of range"):
                tracker.swap_emds(bins, bad)
            with pytest.raises(IndexError, match="out of range"):
                tracker.emd_with_swap(bad, 0)
            with pytest.raises(IndexError, match="out of range"):
                tracker.apply_swap(0, bad)

    @pytest.mark.parametrize("which", ["ordered", "nominal"])
    def test_removing_a_non_member_raises(self, which, request):
        tracker, bins = request.getfixturevalue(which)
        absent = next(
            b for b in range(tracker.ref.m) if b not in set(bins.tolist())
        )
        with pytest.raises(ValueError, match="not a member"):
            tracker.apply_swap(absent, int(bins[0]))

    @pytest.mark.parametrize("which", ["ordered", "nominal"])
    def test_replace_semantics_constant_size(self, which, request):
        """Swaps are simultaneous remove+add at constant cluster size: the
        scored value equals the from-scratch EMD of the swapped multiset,
        never of a (c-1)-sized intermediate."""
        tracker, bins = request.getfixturevalue(which)
        ref = tracker.ref
        add = int(bins[0])  # present elsewhere too: exercises multiplicity
        scores = tracker.swap_emds(bins, add)
        for j in range(len(bins)):
            swapped = bins.copy()
            swapped[j] = add
            assert scores[j] == pytest.approx(ref.emd_of_bins(swapped), abs=ATOL)

    def test_ordered_apply_commits_the_scored_value(self, ordered):
        tracker, bins = ordered
        add = (int(bins[-1]) + 1) % tracker.ref.m
        scores = tracker.swap_emds(bins, add)
        tracker.apply_swap(int(bins[2]), add)
        assert tracker.emd == scores[2]  # bitwise: the committed value IS the score

    def test_nominal_apply_consistent_with_scoring(self, nominal):
        tracker, bins = nominal
        add = (int(bins[-1]) + 1) % tracker.ref.m
        scores = tracker.swap_emds(bins, add)
        tracker.apply_swap(int(bins[2]), add)
        assert tracker.emd == pytest.approx(scores[2], abs=ATOL)
