"""Sparse (segment-wise) ordered EMD vs the dense histogram evaluation.

``OrderedEMDReference.emd_of_bins_sparse`` is the O(c log m) bulk-reporting
path used by ``ConfidentialModel.partition_emds``; it must agree with the
dense ``emd_of_bins`` to float precision on any cluster.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.emd import OrderedEMDReference


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 120),
    c=st.integers(1, 15),
    tied=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_sparse_matches_dense(n, c, tied, seed):
    rng = np.random.default_rng(seed)
    if tied:
        values = rng.integers(0, max(2, n // 3), size=n).astype(float)
    else:
        values = rng.permutation(np.arange(float(n)))
    ref = OrderedEMDReference(values, mode="distinct")
    bins = ref.bins_of(rng.choice(values, size=min(c, n), replace=False))
    assert ref.emd_of_bins_sparse(bins) == pytest.approx(
        ref.emd_of_bins(bins), abs=1e-12
    )


def test_sparse_requires_distinct_mode():
    ref = OrderedEMDReference(np.arange(5.0), mode="rank")
    with pytest.raises(ValueError, match="distinct"):
        ref.emd_of_bins_sparse(np.array([0]))


def test_sparse_full_table_is_zero():
    values = np.arange(9.0)
    ref = OrderedEMDReference(values, mode="distinct")
    assert ref.emd_of_bins_sparse(ref.bins_of(values)) == pytest.approx(0.0)


def test_sparse_single_bin_dataset():
    ref = OrderedEMDReference(np.full(4, 2.5), mode="distinct")
    assert ref.emd_of_bins_sparse(np.array([0, 0])) == pytest.approx(0.0)
