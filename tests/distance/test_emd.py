"""Tests for the ordered / nominal / hierarchical EMD implementations.

The two hand-computed anchors come from the worked example in the original
t-closeness paper (Li et al., ICDE 2007): against a table whose salary
column holds the nine equally spaced values 3k..11k, the class
{3k, 4k, 5k} has EMD 0.375 and the class {3k, 5k, 11k} has EMD 0.167.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_salary_toy
from repro.distance import (
    ClusterEMDTracker,
    OrderedEMDReference,
    Taxonomy,
    emd_hierarchical,
    emd_nominal,
    emd_ordered,
)

SALARIES = np.arange(3000.0, 12000.0, 1000.0)  # 3k..11k


class TestOrderedEMDHandChecked:
    def test_icde07_low_diversity_class(self):
        assert emd_ordered([3000, 4000, 5000], SALARIES) == pytest.approx(0.375)

    def test_icde07_spread_class(self):
        assert emd_ordered([3000, 5000, 11000], SALARIES) == pytest.approx(1 / 6)

    def test_salary_toy_matches_anchors(self):
        toy = load_salary_toy()
        ref = OrderedEMDReference(toy.values("salary"))
        assert ref.emd([3000, 4000, 5000]) == pytest.approx(0.375)
        assert ref.emd([3000, 5000, 11000]) == pytest.approx(1 / 6)

    def test_whole_dataset_has_zero_emd(self):
        assert emd_ordered(SALARIES, SALARIES) == pytest.approx(0.0, abs=1e-12)

    def test_single_extreme_value_near_one(self):
        # All mass at the bottom bin: EMD = mean rank distance = 0.5.
        assert emd_ordered([3000], SALARIES) == pytest.approx(0.5)

    def test_symmetric_classes_same_emd(self):
        low = emd_ordered([3000, 4000], SALARIES)
        high = emd_ordered([10000, 11000], SALARIES)
        assert low == pytest.approx(high)


class TestOrderedEMDReference:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            OrderedEMDReference(SALARIES, mode="euclid")

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="non-empty"):
            OrderedEMDReference([])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-D"):
            OrderedEMDReference(np.zeros((2, 2)))

    def test_bins_of_round_trip(self):
        ref = OrderedEMDReference(SALARIES)
        bins = ref.bins_of([5000.0, 3000.0, 11000.0])
        np.testing.assert_array_equal(ref.bin_values[bins], [5000.0, 3000.0, 11000.0])

    def test_bins_of_unknown_value(self):
        ref = OrderedEMDReference(SALARIES)
        with pytest.raises(ValueError, match="not present"):
            ref.bins_of([1234.5])

    def test_bins_of_requires_distinct_mode(self):
        ref = OrderedEMDReference(SALARIES, mode="rank")
        with pytest.raises(ValueError, match="distinct"):
            ref.bins_of([3000.0])

    def test_emd_of_bins_matches_emd(self):
        ref = OrderedEMDReference(SALARIES)
        values = [3000.0, 4000.0, 5000.0]
        assert ref.emd_of_bins(ref.bins_of(values)) == pytest.approx(ref.emd(values))

    def test_emd_of_histogram_shape_check(self):
        ref = OrderedEMDReference(SALARIES)
        with pytest.raises(ValueError, match="shape"):
            ref.emd_of_histogram(np.zeros(3))

    def test_histogram_unknown_value_rank_mode(self):
        ref = OrderedEMDReference(SALARIES, mode="rank")
        with pytest.raises(ValueError, match="not present"):
            ref.histogram([1.0])

    def test_single_bin_dataset_emd_zero(self):
        ref = OrderedEMDReference([7.0, 7.0, 7.0])
        assert ref.emd([7.0]) == 0.0

    def test_duplicated_dataset_distinct_mode(self):
        # Dataset {1,1,2}: q = (2/3, 1/3). Cluster {2}: p = (0, 1).
        # cumsum diff = (-2/3, 0) -> EMD = (2/3) / (m-1=1) = 2/3.
        assert emd_ordered([2.0], [1.0, 1.0, 2.0]) == pytest.approx(2 / 3)

    def test_rank_mode_spreads_ties(self):
        # Dataset {1,1,2}: three rank slots, value 1 owns slots 0-1.
        # Cluster {1}: p = (1/2, 1/2, 0); q = 1/3 each.
        # cumsums: 1/6, 1/3, 0 -> EMD = (1/6 + 1/3) / 2 = 1/4.
        assert emd_ordered([1.0], [1.0, 1.0, 2.0], mode="rank") == pytest.approx(0.25)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=50), min_size=2, max_size=40
        ),
        seed=st.integers(0, 1000),
    )
    def test_rank_equals_distinct_without_ties(self, data, seed):
        dataset = np.unique(np.asarray(data, dtype=float))
        if len(dataset) < 2:
            dataset = np.array([0.0, 1.0])
        rng = np.random.default_rng(seed)
        cluster = rng.choice(dataset, size=rng.integers(1, len(dataset) + 1), replace=False)
        d = emd_ordered(cluster, dataset, mode="distinct")
        r = emd_ordered(cluster, dataset, mode="rank")
        assert d == pytest.approx(r, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        dataset=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=60,
        ),
        seed=st.integers(0, 1000),
    )
    def test_emd_bounded_in_unit_interval(self, dataset, seed):
        dataset = np.asarray(dataset)
        rng = np.random.default_rng(seed)
        cluster = rng.choice(dataset, size=rng.integers(1, len(dataset) + 1), replace=False)
        for mode in ("distinct", "rank"):
            value = emd_ordered(cluster, dataset, mode=mode)
            assert -1e-12 <= value <= 1.0 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        dataset=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_emd_identity_property(self, dataset):
        """EMD of the whole dataset against itself is zero in both modes."""
        for mode in ("distinct", "rank"):
            assert emd_ordered(dataset, dataset, mode=mode) == pytest.approx(
                0.0, abs=1e-9
            )


class TestClusterEMDTracker:
    @pytest.fixture
    def ref(self):
        rng = np.random.default_rng(5)
        return OrderedEMDReference(rng.normal(size=200))

    def test_requires_distinct_mode(self):
        ref = OrderedEMDReference(SALARIES, mode="rank")
        with pytest.raises(ValueError, match="distinct"):
            ClusterEMDTracker(ref, np.array([0]))

    def test_rejects_empty_cluster(self, ref):
        with pytest.raises(ValueError, match="non-empty"):
            ClusterEMDTracker(ref, np.array([], dtype=int))

    def test_initial_emd_matches_direct(self, ref):
        bins = np.array([0, 10, 50, 120, 199])
        tracker = ClusterEMDTracker(ref, bins)
        assert tracker.emd == pytest.approx(ref.emd_of_bins(bins))

    def test_swap_emds_match_full_recompute(self, ref):
        rng = np.random.default_rng(9)
        bins = rng.choice(200, size=8, replace=False)
        tracker = ClusterEMDTracker(ref, bins)
        add_bin = 137
        scored = tracker.swap_emds(bins, add_bin)
        for j, removed in enumerate(bins):
            new_bins = bins.copy()
            new_bins[j] = add_bin
            assert scored[j] == pytest.approx(ref.emd_of_bins(new_bins))

    def test_emd_with_swap_matches_swap_emds(self, ref):
        bins = np.array([3, 77, 150])
        tracker = ClusterEMDTracker(ref, bins)
        scored = tracker.swap_emds(bins, 42)
        for j, removed in enumerate(bins):
            assert tracker.emd_with_swap(int(removed), 42) == pytest.approx(scored[j])

    def test_apply_swap_updates_state(self, ref):
        bins = np.array([3, 77, 150])
        tracker = ClusterEMDTracker(ref, bins)
        target = tracker.emd_with_swap(77, 42)
        tracker.apply_swap(77, 42)
        assert tracker.emd == pytest.approx(target)
        new_bins = np.array([3, 42, 150])
        assert tracker.emd == pytest.approx(ref.emd_of_bins(new_bins))

    def test_noop_swap(self, ref):
        tracker = ClusterEMDTracker(ref, np.array([5, 6]))
        before = tracker.emd
        assert tracker.emd_with_swap(5, 5) == pytest.approx(before)
        tracker.apply_swap(5, 5)
        assert tracker.emd == pytest.approx(before)

    def test_swap_out_of_range(self, ref):
        tracker = ClusterEMDTracker(ref, np.array([5]))
        with pytest.raises(IndexError, match="out of range"):
            tracker.emd_with_swap(5, 10_000)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_many_random_swaps_stay_consistent(self, seed):
        """Tracker EMD equals from-scratch EMD after a random swap walk."""
        rng = np.random.default_rng(seed)
        dataset = rng.normal(size=60)
        ref = OrderedEMDReference(dataset)
        bins = rng.choice(60, size=5, replace=False)
        tracker = ClusterEMDTracker(ref, bins)
        for _ in range(15):
            j = rng.integers(0, 5)
            add = int(rng.integers(0, ref.m))
            tracker.apply_swap(int(bins[j]), add)
            bins[j] = add
        assert tracker.emd == pytest.approx(ref.emd_of_bins(bins))


class TestNominalEMD:
    def test_identical_distributions(self):
        assert emd_nominal([0, 1, 2], [0, 1, 2], 3) == 0.0

    def test_disjoint_distributions(self):
        assert emd_nominal([0, 0], [1, 1], 2) == pytest.approx(1.0)

    def test_half_overlap(self):
        # p = (1, 0), q = (0.5, 0.5) -> TV = 0.5
        assert emd_nominal([0, 0], [0, 1], 2) == pytest.approx(0.5)

    def test_validates_code_range(self):
        with pytest.raises(ValueError, match="outside"):
            emd_nominal([5], [0], 2)

    def test_validates_n_categories(self):
        with pytest.raises(ValueError, match="n_categories"):
            emd_nominal([0], [0], 0)

    def test_validates_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            emd_nominal([], [0], 2)

    @settings(max_examples=50, deadline=None)
    @given(
        codes=st.lists(st.integers(0, 4), min_size=1, max_size=30),
        other=st.lists(st.integers(0, 4), min_size=1, max_size=30),
    )
    def test_bounded_and_symmetric(self, codes, other):
        forward = emd_nominal(codes, other, 5)
        backward = emd_nominal(other, codes, 5)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0


class TestHierarchicalEMD:
    @pytest.fixture
    def tree(self):
        return Taxonomy.from_nested(
            {
                "Any": {
                    "Respiratory": ["flu", "pneumonia", "bronchitis"],
                    "Gastric": ["gastritis", "gastric-ulcer", "stomach-cancer"],
                }
            }
        )

    def test_identical_distributions(self, tree):
        labels = ["flu", "gastritis", "pneumonia"]
        assert emd_hierarchical(labels, labels, tree) == pytest.approx(0.0)

    def test_within_subtree_cheaper_than_across(self, tree):
        dataset = ["flu", "pneumonia", "gastritis", "gastric-ulcer"]
        within = emd_hierarchical(["flu", "pneumonia"], dataset, tree)
        across = emd_hierarchical(["flu", "flu"], dataset, tree)
        assert within < across

    def test_all_mass_across_root(self, tree):
        # Cluster entirely respiratory vs dataset entirely gastric:
        # all mass crosses the root (height 2 / H 2 = 1) -> EMD 1.
        value = emd_hierarchical(
            ["flu", "pneumonia"], ["gastritis", "stomach-cancer"], tree
        )
        assert value == pytest.approx(1.0)

    def test_sibling_move_costs_half(self, tree):
        # {flu} vs {pneumonia}: mass 1 moves within "Respiratory"
        # (node height 1, H = 2) -> EMD = 0.5.
        assert emd_hierarchical(["flu"], ["pneumonia"], tree) == pytest.approx(0.5)

    def test_flat_taxonomy_equals_nominal(self):
        categories = ["a", "b", "c", "d"]
        flat = Taxonomy.flat(categories)
        rng = np.random.default_rng(3)
        cluster = rng.choice(categories, size=10).tolist()
        dataset = rng.choice(categories, size=40).tolist()
        nominal_value = emd_nominal(
            [categories.index(x) for x in cluster],
            [categories.index(x) for x in dataset],
            len(categories),
        )
        assert emd_hierarchical(cluster, dataset, flat) == pytest.approx(nominal_value)

    def test_unknown_label_rejected(self, tree):
        with pytest.raises(ValueError, match="not a leaf"):
            emd_hierarchical(["measles"], ["flu"], tree)

    def test_empty_rejected(self, tree):
        with pytest.raises(ValueError, match="non-empty"):
            emd_hierarchical([], ["flu"], tree)
