"""Tests for the Taxonomy tree."""

import pytest

from repro.distance import Taxonomy, TaxonomyError


@pytest.fixture
def jobs():
    return Taxonomy.from_nested(
        {
            "Any": {
                "Technical": {
                    "Engineering": ["engineer", "technician"],
                    "Science": ["chemist"],
                },
                "Artistic": ["writer", "dancer"],
            }
        }
    )


class TestConstruction:
    def test_leaves_preorder(self, jobs):
        assert jobs.leaves == ("engineer", "technician", "chemist", "writer", "dancer")

    def test_height(self, jobs):
        assert jobs.height == 3

    def test_root(self, jobs):
        assert jobs.root == "Any"

    def test_flat(self):
        flat = Taxonomy.flat(["a", "b"])
        assert flat.height == 1
        assert flat.leaves == ("a", "b")

    def test_multi_root_rejected(self):
        with pytest.raises(TaxonomyError, match="exactly one root"):
            Taxonomy.from_nested({"A": ["x"], "B": ["y"]})

    def test_duplicate_node_rejected(self):
        with pytest.raises(TaxonomyError, match="more than once"):
            Taxonomy.from_nested({"Any": {"A": ["x"], "B": ["x"]}})

    def test_bad_subtree_type_rejected(self):
        with pytest.raises(TaxonomyError, match="mapping or list"):
            Taxonomy.from_nested({"Any": 42})

    def test_unreachable_internal_rejected(self):
        with pytest.raises(TaxonomyError, match="not reachable"):
            Taxonomy("root", {"root": ["a"], "orphan": ["b"]})

    def test_leafless_rejected(self):
        with pytest.raises(TaxonomyError, match="height >= 1"):
            Taxonomy("root", {})


class TestQueries:
    def test_parent_child(self, jobs):
        assert jobs.parent("engineer") == "Engineering"
        assert jobs.parent("Any") is None
        assert jobs.children("Artistic") == ("writer", "dancer")
        assert jobs.children("dancer") == ()

    def test_depth_and_node_height(self, jobs):
        assert jobs.depth("Any") == 0
        assert jobs.depth("engineer") == 3
        assert jobs.node_height("Any") == 3
        assert jobs.node_height("Engineering") == 1

    def test_is_leaf(self, jobs):
        assert jobs.is_leaf("writer")
        assert not jobs.is_leaf("Technical")

    def test_contains(self, jobs):
        assert "chemist" in jobs
        assert "plumber" not in jobs

    def test_leaves_under(self, jobs):
        assert jobs.leaves_under("Technical") == ("engineer", "technician", "chemist")
        assert jobs.leaves_under("writer") == ("writer",)

    def test_ancestors(self, jobs):
        assert jobs.ancestors("engineer") == ("Engineering", "Technical", "Any")
        assert jobs.ancestors("Any") == ()

    def test_lca(self, jobs):
        assert jobs.lowest_common_ancestor("engineer", "technician") == "Engineering"
        assert jobs.lowest_common_ancestor("engineer", "chemist") == "Technical"
        assert jobs.lowest_common_ancestor("engineer", "dancer") == "Any"
        assert jobs.lowest_common_ancestor("writer", "writer") == "writer"

    def test_generalize(self, jobs):
        assert jobs.generalize("engineer", 0) == "engineer"
        assert jobs.generalize("engineer", 1) == "Engineering"
        assert jobs.generalize("engineer", 2) == "Technical"
        assert jobs.generalize("engineer", 99) == "Any"  # capped at root

    def test_generalize_negative_levels(self, jobs):
        with pytest.raises(TaxonomyError, match=">= 0"):
            jobs.generalize("engineer", -1)

    def test_leaf_distance(self, jobs):
        assert jobs.leaf_distance("writer", "writer") == 0.0
        assert jobs.leaf_distance("engineer", "technician") == pytest.approx(1 / 3)
        assert jobs.leaf_distance("engineer", "chemist") == pytest.approx(2 / 3)
        assert jobs.leaf_distance("engineer", "dancer") == pytest.approx(1.0)

    def test_unknown_node(self, jobs):
        with pytest.raises(TaxonomyError, match="unknown"):
            jobs.depth("plumber")
