"""Tests for record-distance helpers and the mixed-type embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal
from repro.distance import (
    QIEncoder,
    centroid,
    encode_mixed,
    farthest_index,
    k_nearest_indices,
    nearest_index,
    pairwise_sq_distances,
    sq_distances_to,
)


class TestSqDistances:
    def test_known_values(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        np.testing.assert_allclose(sq_distances_to(X, np.zeros(2)), [0.0, 25.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            sq_distances_to(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            sq_distances_to(np.zeros((2, 3)), np.zeros(2))

    @settings(max_examples=25, deadline=None)
    @given(
        X=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=20),
            elements=st.floats(-100, 100),
        )
    )
    def test_matches_norm_definition(self, X):
        x = X[0]
        expected = np.linalg.norm(X - x, axis=1) ** 2
        np.testing.assert_allclose(sq_distances_to(X, x), expected, atol=1e-8)

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 3))
        D = pairwise_sq_distances(X)
        np.testing.assert_allclose(D, D.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-9)

    def test_pairwise_matches_rowwise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(8, 2))
        D = pairwise_sq_distances(X)
        for i in range(8):
            np.testing.assert_allclose(D[i], sq_distances_to(X, X[i]), atol=1e-9)

    def test_pairwise_validates(self):
        with pytest.raises(ValueError, match="2-D"):
            pairwise_sq_distances(np.zeros(3))


class TestSelectors:
    def test_centroid(self):
        X = np.array([[0.0, 0.0], [2.0, 4.0]])
        np.testing.assert_allclose(centroid(X), [1.0, 2.0])

    def test_centroid_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            centroid(np.empty((0, 2)))

    def test_farthest_nearest(self):
        X = np.array([[0.0], [5.0], [1.0]])
        assert farthest_index(X, np.array([0.0])) == 1
        assert nearest_index(X, np.array([0.9])) == 2

    def test_k_nearest_sorted(self):
        X = np.array([[0.0], [5.0], [1.0], [3.0]])
        np.testing.assert_array_equal(
            k_nearest_indices(X, np.array([0.0]), 3), [0, 2, 3]
        )

    def test_k_nearest_k_larger_than_n(self):
        X = np.array([[0.0], [5.0]])
        np.testing.assert_array_equal(k_nearest_indices(X, np.array([4.0]), 10), [1, 0])

    def test_k_nearest_validates_k(self):
        with pytest.raises(ValueError, match="positive"):
            k_nearest_indices(np.zeros((2, 1)), np.zeros(1), 0)

    def test_k_nearest_stable_on_ties(self):
        X = np.array([[1.0], [1.0], [1.0]])
        np.testing.assert_array_equal(k_nearest_indices(X, np.array([1.0]), 2), [0, 1])


class TestEncodeMixed:
    @pytest.fixture
    def mixed(self):
        schema = [
            numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
            ordinal("level", ("low", "mid", "high"), role=AttributeRole.QUASI_IDENTIFIER),
            nominal("city", ("paris", "rome"), role=AttributeRole.QUASI_IDENTIFIER),
            numeric("salary", role=AttributeRole.CONFIDENTIAL),
        ]
        return Microdata(
            {
                "age": np.array([20.0, 40.0, 60.0]),
                "level": np.array([0, 1, 2]),
                "city": np.array([0, 0, 1]),
                "salary": np.array([1.0, 2.0, 3.0]),
            },
            schema,
        )

    def test_pure_numeric_standardized(self):
        md = Microdata(
            {"a": np.array([1.0, 2.0, 3.0])},
            [numeric("a", role=AttributeRole.QUASI_IDENTIFIER)],
        )
        X = encode_mixed(md)
        assert X.mean() == pytest.approx(0.0, abs=1e-12)
        assert X.std() == pytest.approx(1.0, abs=1e-12)

    def test_mixed_shape(self, mixed):
        X = encode_mixed(mixed)
        # age (1) + level (1) + city one-hot (2) = 4 columns
        assert X.shape == (3, 4)

    def test_nominal_distance_is_one(self, mixed):
        X = encode_mixed(mixed, names=("city",))
        d2 = np.sum((X[0] - X[2]) ** 2)
        assert d2 == pytest.approx(1.0)
        assert np.sum((X[0] - X[1]) ** 2) == pytest.approx(0.0)

    def test_ordinal_distance_normalized(self, mixed):
        X = encode_mixed(mixed, names=("level",))
        assert abs(X[2, 0] - X[0, 0]) == pytest.approx(1.0)
        assert abs(X[1, 0] - X[0, 0]) == pytest.approx(0.5)

    def test_numeric_range_normalized_in_mixed_mode(self, mixed):
        X = encode_mixed(mixed, names=("age", "city"))
        assert X[:, 0].min() == 0.0
        assert X[:, 0].max() == 1.0

    def test_defaults_to_quasi_identifiers(self, mixed):
        X = encode_mixed(mixed)
        assert X.shape[1] == 4  # salary (confidential) not included

    def test_constant_numeric_column(self):
        md = Microdata(
            {
                "a": np.array([5.0, 5.0]),
                "c": np.array([0, 1]),
            },
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                nominal("c", ("x", "y"), role=AttributeRole.QUASI_IDENTIFIER),
            ],
        )
        X = encode_mixed(md)
        np.testing.assert_array_equal(X[:, 0], [0.0, 0.0])


class TestQIEncoder:
    """The fitted encoder must reproduce encode_mixed exactly on fit data."""

    @pytest.fixture
    def mixed(self):
        schema = [
            numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
            ordinal("level", ("low", "mid", "high"), role=AttributeRole.QUASI_IDENTIFIER),
            nominal("city", ("paris", "rome"), role=AttributeRole.QUASI_IDENTIFIER),
            numeric("salary", role=AttributeRole.CONFIDENTIAL),
        ]
        return Microdata(
            {
                "age": np.array([20.0, 40.0, 60.0]),
                "level": np.array([0, 1, 2]),
                "city": np.array([0, 0, 1]),
                "salary": np.array([1.0, 2.0, 3.0]),
            },
            schema,
        )

    def test_matches_encode_mixed_on_mixed_fit_data(self, mixed):
        encoder = QIEncoder.fit(mixed)
        np.testing.assert_array_equal(
            encoder.encode_data(mixed), encode_mixed(mixed)
        )

    def test_matches_encode_mixed_on_numeric_fit_data(self):
        rng = np.random.default_rng(11)
        md = Microdata(
            {"a": rng.normal(size=30), "b": rng.normal(size=30) * 100},
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("b", role=AttributeRole.QUASI_IDENTIFIER),
            ],
        )
        encoder = QIEncoder.fit(md)
        np.testing.assert_array_equal(encoder.encode_data(md), encode_mixed(md))

    def test_batch_uses_fit_geometry_not_its_own(self, mixed):
        encoder = QIEncoder.fit(mixed)
        batch = mixed.subset([0])  # a 1-record batch: own range would collapse
        encoded = encoder.encode_data(batch)
        np.testing.assert_array_equal(encoded, encode_mixed(mixed)[[0]])

    def test_dict_round_trip_is_exact(self, mixed):
        import json

        encoder = QIEncoder.fit(mixed)
        payload = json.loads(json.dumps(encoder.to_dict()))
        clone = QIEncoder.from_dict(payload)
        np.testing.assert_array_equal(
            encoder.encode_data(mixed), clone.encode_data(mixed)
        )

    def test_rejects_wrong_width_and_bad_codes(self, mixed):
        encoder = QIEncoder.fit(mixed)
        with pytest.raises(ValueError, match="shape"):
            encoder.encode(np.zeros((2, 5)))
        bad = mixed.matrix(encoder.names)
        bad[0, 2] = 7  # nominal code outside the fitted categories
        with pytest.raises(ValueError, match="codes outside"):
            encoder.encode(bad)
