"""Metric axioms of the ordered EMD, verified by hypothesis.

The ordered EMD with ground distance |i-j|/(m-1) is the 1-Wasserstein
distance on the line (up to normalization), hence a true metric on
distributions over a fixed bin grid: non-negative, zero iff equal,
symmetric, and triangle-inequal.  The algorithms rely on these implicitly
(e.g. merging reasons about "closest" clusters), so they are pinned here
as executable properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def ordered_emd(p: np.ndarray, q: np.ndarray) -> float:
    """Ordered EMD between two histograms on the same m-bin grid."""
    assert p.shape == q.shape
    m = len(p)
    return float(np.abs(np.cumsum(p - q)).sum() / max(m - 1, 1))


def histograms(m: int):
    """Strategy: probability vector over m bins (from integer counts)."""
    return st.lists(st.integers(0, 8), min_size=m, max_size=m).filter(
        lambda c: sum(c) > 0
    ).map(lambda c: np.asarray(c, dtype=float) / sum(c))


@settings(max_examples=100, deadline=None)
@given(data=st.data(), m=st.integers(2, 12))
def test_non_negativity_and_identity(data, m):
    p = data.draw(histograms(m))
    q = data.draw(histograms(m))
    d = ordered_emd(p, q)
    assert d >= 0.0
    assert ordered_emd(p, p) == pytest.approx(0.0, abs=1e-12)
    if d < 1e-12:
        np.testing.assert_allclose(p, q, atol=1e-9)


@settings(max_examples=100, deadline=None)
@given(data=st.data(), m=st.integers(2, 12))
def test_symmetry(data, m):
    p = data.draw(histograms(m))
    q = data.draw(histograms(m))
    assert ordered_emd(p, q) == pytest.approx(ordered_emd(q, p), abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(data=st.data(), m=st.integers(2, 12))
def test_triangle_inequality(data, m):
    p = data.draw(histograms(m))
    q = data.draw(histograms(m))
    r = data.draw(histograms(m))
    assert ordered_emd(p, r) <= ordered_emd(p, q) + ordered_emd(q, r) + 1e-12


@settings(max_examples=50, deadline=None)
@given(data=st.data(), m=st.integers(2, 12))
def test_bounded_by_one(data, m):
    """The normalization keeps the EMD within [0, 1] (mass 1 moved m-1 bins)."""
    p = data.draw(histograms(m))
    q = data.draw(histograms(m))
    assert ordered_emd(p, q) <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(data=st.data(), m=st.integers(2, 12), lam=st.floats(0.0, 1.0))
def test_convexity_in_mixtures(data, m, lam):
    """EMD(lam*p + (1-lam)*q, q) scales linearly in lam (line geometry)."""
    p = data.draw(histograms(m))
    q = data.draw(histograms(m))
    mix = lam * p + (1 - lam) * q
    assert ordered_emd(mix, q) == pytest.approx(
        lam * ordered_emd(p, q), abs=1e-9
    )
