"""Unit tests for attribute specs and role/kind enums."""

import pytest

from repro.data import AttributeKind, AttributeRole, AttributeSpec, nominal, numeric, ordinal


class TestAttributeKind:
    def test_numeric_is_not_categorical(self):
        assert not AttributeKind.NUMERIC.is_categorical

    def test_ordinal_and_nominal_are_categorical(self):
        assert AttributeKind.ORDINAL.is_categorical
        assert AttributeKind.NOMINAL.is_categorical

    def test_nominal_is_not_rankable(self):
        assert not AttributeKind.NOMINAL.is_rankable

    def test_numeric_and_ordinal_are_rankable(self):
        assert AttributeKind.NUMERIC.is_rankable
        assert AttributeKind.ORDINAL.is_rankable


class TestAttributeSpec:
    def test_numeric_shorthand(self):
        spec = numeric("income", role=AttributeRole.QUASI_IDENTIFIER)
        assert spec.is_numeric
        assert spec.is_quasi_identifier
        assert spec.n_categories == 0

    def test_ordinal_shorthand_preserves_order(self):
        spec = ordinal("level", ["low", "mid", "high"])
        assert spec.categories == ("low", "mid", "high")
        assert spec.kind is AttributeKind.ORDINAL

    def test_nominal_shorthand(self):
        spec = nominal("job", ["nurse", "teacher"], role=AttributeRole.CONFIDENTIAL)
        assert spec.is_confidential
        assert spec.is_categorical

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            AttributeSpec(name="")

    def test_numeric_with_categories_rejected(self):
        with pytest.raises(ValueError, match="must not define categories"):
            AttributeSpec(name="x", kind=AttributeKind.NUMERIC, categories=("a",))

    def test_categorical_without_categories_rejected(self):
        with pytest.raises(ValueError, match="requires categories"):
            AttributeSpec(name="x", kind=AttributeKind.NOMINAL)

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            nominal("x", ["a", "b", "a"])

    def test_wrong_kind_type_rejected(self):
        with pytest.raises(TypeError, match="AttributeKind"):
            AttributeSpec(name="x", kind="numeric")  # type: ignore[arg-type]

    def test_wrong_role_type_rejected(self):
        with pytest.raises(TypeError, match="AttributeRole"):
            AttributeSpec(name="x", role="other")  # type: ignore[arg-type]

    def test_with_role_returns_new_spec(self):
        spec = numeric("x")
        qi = spec.with_role(AttributeRole.QUASI_IDENTIFIER)
        assert qi.is_quasi_identifier
        assert spec.role is AttributeRole.OTHER  # original untouched

    def test_code_label_round_trip(self):
        spec = ordinal("level", ["low", "mid", "high"])
        for i, label in enumerate(spec.categories):
            assert spec.code_of(label) == i
            assert spec.label_of(i) == label

    def test_code_of_unknown_label(self):
        spec = nominal("x", ["a"])
        with pytest.raises(KeyError, match="not a category"):
            spec.code_of("zzz")

    def test_label_of_out_of_range(self):
        spec = nominal("x", ["a"])
        with pytest.raises(KeyError, match="out of range"):
            spec.label_of(5)

    def test_categories_coerced_to_tuple(self):
        spec = AttributeSpec(
            name="x", kind=AttributeKind.NOMINAL, categories=["a", "b"]  # type: ignore[arg-type]
        )
        assert isinstance(spec.categories, tuple)

    def test_specs_hashable_and_equal(self):
        a = numeric("x")
        b = numeric("x")
        assert a == b
        assert hash(a) == hash(b)
