"""Tests for the synthetic-data building blocks (latent factor machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    dependent_latent,
    discretize,
    latent_factor_block,
    multiple_correlation,
    to_affine_positive,
    to_lognormal_income,
)


class TestLatentFactorBlock:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        X, s = latent_factor_block(rng, 500, 3)
        assert X.shape == (500, 3)
        assert s.shape == (500,)

    def test_marginals_standard_normal(self):
        rng = np.random.default_rng(0)
        X, _ = latent_factor_block(rng, 20_000, 2, shared_weight=0.7)
        np.testing.assert_allclose(X.mean(axis=0), 0.0, atol=0.05)
        np.testing.assert_allclose(X.std(axis=0), 1.0, atol=0.05)

    def test_pairwise_correlation_is_weight_squared(self):
        rng = np.random.default_rng(0)
        w = 0.6
        X, _ = latent_factor_block(rng, 50_000, 2, shared_weight=w)
        r = np.corrcoef(X[:, 0], X[:, 1])[0, 1]
        assert r == pytest.approx(w**2, abs=0.02)

    def test_weight_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="shared_weight"):
            latent_factor_block(rng, 10, 2, shared_weight=1.5)


class TestDependentLatent:
    @pytest.mark.parametrize("alpha", [0.13, 0.52, 0.92])
    def test_correlation_matches_alpha(self, alpha):
        rng = np.random.default_rng(1)
        driver = rng.standard_normal(50_000)
        y = dependent_latent(rng, driver, alpha)
        r = np.corrcoef(driver, y)[0, 1]
        assert r == pytest.approx(alpha, abs=0.02)

    def test_unit_variance(self):
        rng = np.random.default_rng(1)
        y = dependent_latent(rng, rng.standard_normal(50_000), 0.5)
        assert y.std() == pytest.approx(1.0, abs=0.02)

    def test_alpha_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="alpha"):
            dependent_latent(rng, np.array([1.0, 2.0]), -0.1)

    def test_constant_driver_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="zero variance"):
            dependent_latent(rng, np.ones(10), 0.5)


class TestTransforms:
    def test_lognormal_positive(self):
        x = to_lognormal_income(np.array([-3.0, 0.0, 3.0]), median=100.0)
        assert (x > 0).all()
        assert x[1] == pytest.approx(100.0)

    def test_lognormal_monotone(self):
        latent = np.linspace(-2, 2, 50)
        x = to_lognormal_income(latent, median=10.0)
        assert (np.diff(x) > 0).all()

    def test_lognormal_median_validation(self):
        with pytest.raises(ValueError, match="median"):
            to_lognormal_income(np.zeros(3), median=0.0)

    def test_affine_positive_clips(self):
        x = to_affine_positive(np.array([-10.0, 0.0]), center=5.0, spread=1.0)
        assert x[0] == 0.0
        assert x[1] == 5.0

    def test_affine_preserves_correlation(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(10_000)
        b = 0.7 * a + 0.3 * rng.standard_normal(10_000)
        mapped = to_affine_positive(b, center=100.0, spread=5.0)
        r_before = np.corrcoef(a, b)[0, 1]
        r_after = np.corrcoef(a, mapped)[0, 1]
        assert r_after == pytest.approx(r_before, abs=1e-6)


class TestDiscretize:
    def test_rounding(self):
        np.testing.assert_array_equal(
            discretize(np.array([1.2, 1.6]), step=1.0), [1.0, 2.0]
        )

    def test_clip(self):
        np.testing.assert_array_equal(
            discretize(np.array([-5.0, 500.0]), step=1.0, lo=0.0, hi=100.0),
            [0.0, 100.0],
        )

    def test_step_validation(self):
        with pytest.raises(ValueError, match="step"):
            discretize(np.array([1.0]), step=0.0)


class TestMultipleCorrelation:
    def test_perfect_linear(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = 3.0 * X[:, 0] + 2.0
        assert multiple_correlation(y, X) == pytest.approx(1.0)

    def test_independent_is_near_zero(self):
        rng = np.random.default_rng(3)
        y = rng.standard_normal(20_000)
        X = rng.standard_normal((20_000, 2))
        assert abs(multiple_correlation(y, X)) < 0.05

    def test_accepts_1d_x(self):
        x = np.arange(10.0)
        assert multiple_correlation(2 * x, x) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            multiple_correlation(np.zeros(3), np.zeros((4, 1)))

    def test_constant_y(self):
        assert multiple_correlation(np.ones(5), np.arange(5.0)) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(min_value=0.1, max_value=0.95), seed=st.integers(0, 10_000))
    def test_recovers_alpha_property(self, alpha, seed):
        """R(y, X) ≈ alpha when y = alpha * unit-combination(X) + noise."""
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((4_000, 2))
        driver = X.sum(axis=1)
        y = dependent_latent(rng, driver, alpha)
        assert multiple_correlation(y, X) == pytest.approx(alpha, abs=0.08)
