"""CSV round-trip tests."""

import numpy as np
import pytest

from repro.data import (
    AttributeRole,
    Microdata,
    SchemaError,
    nominal,
    numeric,
    read_csv,
    write_csv,
)
from repro.data.io import _infer_spec


@pytest.fixture
def mixed(tmp_path):
    schema = [
        numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("salary", role=AttributeRole.CONFIDENTIAL),
        nominal("city", ("paris", "rome")),
    ]
    md = Microdata(
        {
            "age": np.array([25.0, 30.5]),
            "salary": np.array([1000.0, 2000.0]),
            "city": np.array(["rome", "paris"], dtype=object),
        },
        schema,
    )
    path = tmp_path / "mixed.csv"
    return md, path


class TestRoundTrip:
    def test_round_trip_with_schema(self, mixed):
        md, path = mixed
        write_csv(md, path)
        back = read_csv(path, schema=md.schema)
        assert back.equals(md)

    def test_round_trip_inferred_schema(self, mixed):
        md, path = mixed
        write_csv(md, path)
        back = read_csv(path)
        np.testing.assert_allclose(back.values("age"), md.values("age"))
        np.testing.assert_array_equal(back.labels("city"), md.labels("city"))

    def test_integral_floats_written_without_decimal(self, mixed):
        md, path = mixed
        write_csv(md, path)
        text = path.read_text()
        assert "1000," not in text.splitlines()[0]
        assert "1000" in text  # no "1000.0"
        assert "30.5" in text

    def test_roles_assigned_on_read(self, mixed):
        md, path = mixed
        write_csv(md, path)
        back = read_csv(
            path, quasi_identifiers=["age"], confidential=["salary"]
        )
        assert back.quasi_identifiers == ("age",)
        assert back.confidential == ("salary",)


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match="row 3"):
            read_csv(path)

    def test_schema_attribute_not_in_header(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text("a\n1\n")
        with pytest.raises(SchemaError, match="not in header"):
            read_csv(path, schema=[numeric("zzz")])


class TestInference:
    def test_numeric_column_inferred(self):
        spec = _infer_spec("x", ["1", "2.5", ""])
        assert spec.is_numeric

    def test_text_column_inferred_nominal(self):
        spec = _infer_spec("x", ["a", "b", "a"])
        assert spec.is_categorical
        assert spec.categories == ("a", "b")

    def test_category_order_is_first_appearance(self):
        spec = _infer_spec("x", ["z", "a", "z", "m"])
        assert spec.categories == ("z", "a", "m")
