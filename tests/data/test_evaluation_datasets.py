"""Tests pinning the properties of the paper's surrogate data sets.

These assertions are what DESIGN.md §3 promises: record counts, schema
shape, and the correlation regimes the paper's analysis attributes the
algorithms' behaviour to.
"""

import numpy as np
import pytest

from repro.data import (
    CENSUS_N,
    HCD_CORRELATION,
    MCD_CORRELATION,
    PD_CORRELATION,
    load_adult,
    load_census,
    load_hcd,
    load_mcd,
    load_patient_discharge,
    load_salary_toy,
    load_uniform_toy,
    multiple_correlation,
)


class TestCensusSurrogate:
    def test_record_count(self):
        assert load_census().n_records == CENSUS_N == 1080

    def test_attribute_names(self):
        assert load_census().attribute_names == (
            "TAXINC",
            "POTHVAL",
            "FEDTAX",
            "FICA",
        )

    def test_mcd_roles(self):
        mcd = load_mcd()
        assert mcd.quasi_identifiers == ("TAXINC", "POTHVAL")
        assert mcd.confidential == ("FEDTAX",)
        assert "FICA" not in mcd.attribute_names

    def test_hcd_roles(self):
        hcd = load_hcd()
        assert hcd.confidential == ("FICA",)
        assert "FEDTAX" not in hcd.attribute_names

    def test_mcd_correlation_regime(self):
        mcd = load_mcd()
        r = multiple_correlation(mcd.values("FEDTAX"), mcd.qi_matrix(scale="none"))
        assert r == pytest.approx(MCD_CORRELATION, abs=0.05)

    def test_hcd_correlation_regime(self):
        hcd = load_hcd()
        r = multiple_correlation(hcd.values("FICA"), hcd.qi_matrix(scale="none"))
        assert r == pytest.approx(HCD_CORRELATION, abs=0.03)

    def test_confidential_values_tie_free(self):
        census = load_census()
        for name in ("FEDTAX", "FICA"):
            values = census.values(name)
            assert len(np.unique(values)) == len(values)

    def test_all_values_positive(self):
        census = load_census()
        for name in census.attribute_names:
            assert (census.values(name) >= 0).all()

    def test_income_marginals_right_skewed(self):
        census = load_census()
        for name in ("TAXINC", "POTHVAL"):
            values = census.values(name)
            assert values.mean() > np.median(values)  # long right tail

    def test_deterministic_given_seed(self):
        assert load_census(seed=42).equals(load_census(seed=42))

    def test_different_seed_differs(self):
        assert not load_census(seed=1).equals(load_census(seed=2))

    def test_custom_n(self):
        assert load_mcd(n=200).n_records == 200

    def test_minimum_n(self):
        with pytest.raises(ValueError, match="at least"):
            load_census(n=2)


class TestPatientDischargeSurrogate:
    def test_shape(self):
        pd = load_patient_discharge(n=500)
        assert pd.n_records == 500
        assert len(pd.quasi_identifiers) == 7
        assert pd.confidential == ("CHARGE",)

    def test_default_n_matches_paper(self):
        from repro.data import PATIENT_DISCHARGE_N

        assert PATIENT_DISCHARGE_N == 23_435

    def test_correlation_regime(self):
        pd = load_patient_discharge(n=10_000)
        r = multiple_correlation(pd.values("CHARGE"), pd.qi_matrix(scale="none"))
        assert r == pytest.approx(PD_CORRELATION, abs=0.05)

    def test_qis_are_discrete(self):
        pd = load_patient_discharge(n=300)
        for name in pd.quasi_identifiers:
            values = pd.values(name)
            np.testing.assert_array_equal(values, np.round(values))

    def test_age_bounds(self):
        pd = load_patient_discharge(n=5_000)
        age = pd.values("AGE")
        assert age.min() >= 0 and age.max() <= 100

    def test_length_of_stay_at_least_one_day(self):
        pd = load_patient_discharge(n=5_000)
        assert pd.values("LENGTH_OF_STAY").min() >= 1

    def test_charge_tie_free(self):
        pd = load_patient_discharge(n=5_000)
        charge = pd.values("CHARGE")
        assert len(np.unique(charge)) == len(charge)

    def test_deterministic(self):
        a = load_patient_discharge(n=100)
        b = load_patient_discharge(n=100)
        assert a.equals(b)

    def test_minimum_n(self):
        with pytest.raises(ValueError, match="at least"):
            load_patient_discharge(n=2)


class TestAdultSurrogate:
    def test_shape_and_roles(self):
        adult = load_adult(n=1_000)
        assert adult.n_records == 1_000
        assert set(adult.quasi_identifiers) == {
            "age",
            "education",
            "hours_per_week",
            "race",
            "sex",
        }
        assert set(adult.confidential) == {"occupation", "income_class"}

    def test_education_income_dependence(self):
        adult = load_adult(n=10_000)
        edu = adult.values("education")
        inc = adult.values("income_class").astype(float)
        high = inc[edu >= 12].mean()
        low = inc[edu <= 8].mean()
        assert high > low + 0.15  # degree holders earn >50K far more often

    def test_capital_gain_mostly_zero(self):
        adult = load_adult(n=10_000)
        frac_zero = (adult.values("capital_gain") == 0).mean()
        assert 0.85 < frac_zero < 0.98

    def test_category_codes_valid(self):
        adult = load_adult(n=2_000)
        for spec in adult.schema:
            if spec.is_categorical:
                codes = adult.values(spec.name)
                assert codes.min() >= 0
                assert codes.max() < spec.n_categories

    def test_minimum_n(self):
        with pytest.raises(ValueError, match="at least"):
            load_adult(n=3)


class TestToyData:
    def test_salary_toy_shape(self):
        toy = load_salary_toy()
        assert toy.n_records == 9
        assert toy.confidential == ("salary",)

    def test_salary_values_equally_spaced(self):
        toy = load_salary_toy()
        salary = np.sort(toy.values("salary"))
        np.testing.assert_array_equal(np.diff(salary), 1000.0)

    def test_uniform_toy_ranks_distinct(self):
        toy = load_uniform_toy(n=20)
        secret = toy.values("secret")
        np.testing.assert_array_equal(np.sort(secret), np.arange(1.0, 21.0))

    def test_uniform_toy_validation(self):
        with pytest.raises(ValueError, match="at least"):
            load_uniform_toy(n=1)
