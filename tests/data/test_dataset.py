"""Unit tests for the Microdata container."""

import numpy as np
import pytest

from repro.data import (
    AttributeRole,
    Microdata,
    SchemaError,
    nominal,
    numeric,
    ordinal,
)


@pytest.fixture
def small():
    schema = [
        numeric("age", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("income", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("tax", role=AttributeRole.CONFIDENTIAL),
        nominal("city", ("paris", "rome", "oslo")),
    ]
    columns = {
        "age": np.array([25.0, 30.0, 40.0, 55.0]),
        "income": np.array([10.0, 20.0, 30.0, 40.0]),
        "tax": np.array([1.0, 2.0, 3.0, 4.0]),
        "city": np.array(["paris", "rome", "oslo", "rome"], dtype=object),
    }
    return Microdata(columns, schema)


class TestConstruction:
    def test_shape(self, small):
        assert small.n_records == 4
        assert small.n_attributes == 4
        assert len(small) == 4

    def test_roles(self, small):
        assert small.quasi_identifiers == ("age", "income")
        assert small.confidential == ("tax",)
        assert small.non_confidential == ("city",)
        assert small.identifiers == ()

    def test_categorical_encoded(self, small):
        np.testing.assert_array_equal(small.values("city"), [0, 1, 2, 1])
        np.testing.assert_array_equal(
            small.labels("city"), np.array(["paris", "rome", "oslo", "rome"], object)
        )

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="missing from columns"):
            Microdata({}, [numeric("x")])

    def test_extra_column_rejected(self):
        with pytest.raises(SchemaError, match="without schema entry"):
            Microdata({"x": [1.0], "y": [2.0]}, [numeric("x")])

    def test_duplicate_schema_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Microdata({"x": [1.0]}, [numeric("x"), numeric("x")])

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="unequal lengths"):
            Microdata(
                {"x": [1.0, 2.0], "y": [1.0]}, [numeric("x"), numeric("y")]
            )

    def test_2d_column_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            Microdata({"x": np.zeros((2, 2))}, [numeric("x")])

    def test_non_numeric_values_rejected(self):
        with pytest.raises(SchemaError, match="not numeric"):
            Microdata({"x": ["a", "b"]}, [numeric("x")])

    def test_unknown_category_label_rejected(self):
        with pytest.raises(SchemaError, match="not a declared category"):
            Microdata({"c": ["zzz"]}, [nominal("c", ("a", "b"))])

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(SchemaError, match="codes outside"):
            Microdata({"c": [5]}, [nominal("c", ("a", "b"))])

    def test_categorical_accepts_integer_codes(self):
        md = Microdata({"c": [1, 0]}, [nominal("c", ("a", "b"))])
        np.testing.assert_array_equal(md.values("c"), [1, 0])

    def test_categorical_accepts_integral_floats(self):
        md = Microdata({"c": [1.0, 0.0]}, [nominal("c", ("a", "b"))])
        np.testing.assert_array_equal(md.values("c"), [1, 0])

    def test_categorical_rejects_fractional_floats(self):
        with pytest.raises(SchemaError, match="not integral codes"):
            Microdata({"c": [0.5]}, [nominal("c", ("a", "b"))])

    def test_from_arrays(self):
        md = Microdata.from_arrays(
            [np.array([1.0, 2.0]), np.array([3.0, 4.0])],
            [numeric("a"), numeric("b")],
        )
        assert md.attribute_names == ("a", "b")

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(SchemaError, match="schema entries"):
            Microdata.from_arrays([np.array([1.0])], [numeric("a"), numeric("b")])


class TestAccess:
    def test_values_read_only(self, small):
        view = small.values("age")
        with pytest.raises(ValueError):
            view[0] = 99.0

    def test_unknown_attribute(self, small):
        with pytest.raises(SchemaError, match="no attribute named"):
            small.values("nope")

    def test_contains(self, small):
        assert "age" in small
        assert "nope" not in small

    def test_matrix_default_all_columns(self, small):
        mat = small.matrix()
        assert mat.shape == (4, 4)
        np.testing.assert_array_equal(mat[:, 3], [0, 1, 2, 1])  # city codes

    def test_matrix_standardize(self, small):
        mat = small.matrix(["age", "income"], scale="standardize")
        np.testing.assert_allclose(mat.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(mat.std(axis=0), 1.0, atol=1e-12)

    def test_matrix_range(self, small):
        mat = small.matrix(["age"], scale="range")
        assert mat.min() == 0.0
        assert mat.max() == 1.0

    def test_matrix_constant_column_safe(self):
        md = Microdata({"x": [5.0, 5.0]}, [numeric("x")])
        np.testing.assert_array_equal(md.matrix(scale="standardize"), [[0.0], [0.0]])
        np.testing.assert_array_equal(md.matrix(scale="range"), [[0.0], [0.0]])

    def test_matrix_bad_scale(self, small):
        with pytest.raises(ValueError, match="unknown scale"):
            small.matrix(scale="zscore")

    def test_qi_matrix(self, small):
        assert small.qi_matrix().shape == (4, 2)

    def test_qi_matrix_without_qis(self):
        md = Microdata({"x": [1.0]}, [numeric("x")])
        with pytest.raises(SchemaError, match="no quasi-identifier"):
            md.qi_matrix()

    def test_empty_matrix(self):
        md = Microdata({"x": [1.0, 2.0]}, [numeric("x")])
        assert md.matrix([]).shape == (2, 0)


class TestTransform:
    def test_subset_by_indices(self, small):
        sub = small.subset([2, 0])
        assert sub.n_records == 2
        np.testing.assert_array_equal(sub.values("age"), [40.0, 25.0])
        assert sub.schema == small.schema

    def test_subset_by_mask(self, small):
        sub = small.subset(np.array([True, False, True, False]))
        np.testing.assert_array_equal(sub.values("age"), [25.0, 40.0])

    def test_subset_bad_mask_length(self, small):
        with pytest.raises(IndexError, match="boolean mask"):
            small.subset(np.array([True, False]))

    def test_with_columns(self, small):
        out = small.with_columns({"age": np.array([1.0, 2.0, 3.0, 4.0])})
        np.testing.assert_array_equal(out.values("age"), [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(small.values("age"), [25.0, 30.0, 40.0, 55.0])

    def test_with_columns_unknown(self, small):
        with pytest.raises(SchemaError, match="unknown columns"):
            small.with_columns({"nope": np.array([1.0])})

    def test_with_columns_wrong_length(self, small):
        with pytest.raises(SchemaError, match="rows"):
            small.with_columns({"age": np.array([1.0])})

    def test_with_roles(self, small):
        out = small.with_roles(quasi_identifiers=["city"], confidential=["age"])
        assert out.quasi_identifiers == ("city",)
        assert out.confidential == ("age",)
        # unfiled attributes reset to OTHER
        assert set(out.non_confidential) == {"income", "tax"}

    def test_with_roles_double_assignment(self, small):
        with pytest.raises(SchemaError, match="two roles"):
            small.with_roles(quasi_identifiers=["age"], confidential=["age"])

    def test_with_roles_unknown_attribute(self, small):
        with pytest.raises(SchemaError, match="no attribute"):
            small.with_roles(confidential=["nope"])

    def test_drop(self, small):
        out = small.drop(["city"])
        assert out.attribute_names == ("age", "income", "tax")

    def test_drop_unknown(self, small):
        with pytest.raises(SchemaError):
            small.drop(["nope"])

    def test_drop_identifiers(self, small):
        with_id = small.with_roles(
            identifiers=["city"], quasi_identifiers=["age", "income"],
            confidential=["tax"],
        )
        out = with_id.drop_identifiers()
        assert "city" not in out.attribute_names

    def test_drop_identifiers_noop(self, small):
        assert small.drop_identifiers() is small

    def test_copy_is_deep(self, small):
        dup = small.copy()
        assert dup.equals(small)

    def test_equals_tolerance(self, small):
        jittered = small.with_columns(
            {"age": small.values("age") + 1e-12}
        )
        assert not small.equals(jittered)
        assert small.equals(jittered, atol=1e-9)

    def test_equals_different_schema(self, small):
        other = small.with_roles(confidential=["age"])
        assert not small.equals(other)

    def test_equals_non_microdata(self, small):
        assert not small.equals("not a dataset")  # type: ignore[arg-type]
