"""Deterministic datasets shared by the golden fixture generator and tests.

The engine refactor (``repro.microagg.engine``) must produce partitions that
are identical — same labels, same tie-breaking — to the pre-refactor
reference implementations.  The reference labels were captured once, from
the seed implementations, by ``scripts/generate_engine_golden.py`` and live
in ``tests/microagg/fixtures/engine_golden.npz``; the datasets here
reconstruct the exact inputs those labels were computed from.

Everything is seeded, so the builders are bit-for-bit reproducible across
runs and machines with the same NumPy version.
"""

from __future__ import annotations

import numpy as np

from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal

#: (case name, n, d, k) for the raw-matrix partitioners (mdav / vmdav).
MATRIX_CASES = (
    ("num_small", 60, 2, 3),
    ("num_mid", 150, 4, 5),
    ("num_large", 400, 3, 10),
    ("num_k1", 45, 2, 1),
    ("num_dups", 120, 3, 4),  # duplicated rows => exact distance ties
    ("num_int", 126, 4, 7),  # integer grid => distinct records tie exactly
    ("num_int_dups", 90, 3, 4),  # integer grid + duplicated rows
    ("num_1d", 200, 1, 4),  # univariate: X.T is contiguous, compaction fires
)

#: gamma values exercised for vmdav on every matrix case (0.0 pins the
#: "never extend" boundary, where a spurious negative distance would flip).
VMDAV_GAMMAS = (0.0, 0.2, 1.0)

#: (case name, n, k, t) for the Microdata algorithms (kanon / tclose first).
MICRODATA_CASES = (
    ("md_numeric", 90, 3, 0.25),
    ("md_mixed", 120, 4, 0.3),
    ("md_mixed_strict", 150, 3, 0.1),
    ("md_tied_secret", 100, 5, 0.35),
    ("md_categorical", 110, 4, 0.3),  # ordinal/nominal QIs only: tie-dense
    ("md_int_grid", 154, 4, 0.3),  # integer-grid numeric QIs: exact ties
    #   between distinct records in distance to the (standardized) centroid
    ("md_single_qi", 160, 4, 0.3),  # one numeric QI: univariate geometry
)

#: (case name, dataset name, k, t) for the *end-to-end* kanon-first and
#: Algorithm-1 golden runs (``fixtures/kanon_first_golden.npz``).  The t
#: levels are deliberately tighter than :data:`MICRODATA_CASES` so the swap
#: phase accepts many swaps and the merge fallback actually merges — the two
#: phases the sparse EMD engine rewrote, pinned here bit-for-bit (labels,
#: swap/merge counters) against the pre-refactor dense implementation.
E2E_CASES = (
    ("md_numeric_tight", "md_numeric", 3, 0.125),  # swaps + 1 merge
    ("md_numeric_strict", "md_numeric", 3, 0.08),  # merge cascade (~21 merges)
    ("md_mixed_tight", "md_mixed", 4, 0.15),
    ("md_mixed_strict_tight", "md_mixed_strict", 3, 0.05),  # ~42 merges
    ("md_tied_tight", "md_tied_secret", 5, 0.12),  # tied secret: bin ties
    ("md_categorical_tight", "md_categorical", 4, 0.1),  # QI-tie dense
    ("md_int_grid_tight", "md_int_grid", 4, 0.1),
    ("md_single_qi_tight", "md_single_qi", 4, 0.1),
    ("md_nominal_secret", "md_nominal_secret", 4, 0.15),  # nominal tracker
    ("md_two_secrets", "md_two_secrets", 4, 0.2),  # max over two trackers
)


def matrix_case(name: str) -> np.ndarray:
    """Record matrix for one entry of :data:`MATRIX_CASES`."""
    for case, n, d, _k in MATRIX_CASES:
        if case == name:
            break
    else:
        raise KeyError(name)
    rng = np.random.default_rng(abs(hash_stable(name)) % (2**32))
    if name.startswith("num_int"):
        # Small integer grids make exact distance ties between *distinct*
        # records the norm, not the exception — the hardest tie-breaking
        # regime for any alternative distance kernel.
        X = rng.integers(0, 5, size=(n, d)).astype(np.float64)
    else:
        X = rng.normal(size=(n, d))
    if name.endswith("_dups"):
        # Duplicate a third of the rows on top of other rows so that exact
        # zero-distance ties exercise the id-order tie-breaking.
        src = rng.integers(0, n, size=n // 3)
        dst = rng.integers(0, n, size=n // 3)
        X[dst] = X[src]
    return X


def microdata_case(name: str) -> Microdata:
    """Microdata table for one entry of :data:`MICRODATA_CASES`."""
    for case, n, _k, _t in MICRODATA_CASES:
        if case == name:
            break
    else:
        raise KeyError(name)
    rng = np.random.default_rng(abs(hash_stable(name)) % (2**32))

    columns: dict[str, np.ndarray] = {}
    schema = []
    n_numeric = 0 if name == "md_categorical" else 2 if name != "md_numeric" else 3
    if name == "md_int_grid":
        n_numeric = 4
    elif name == "md_single_qi":
        n_numeric = 1
    for i in range(n_numeric):
        if name == "md_int_grid":
            columns[f"num{i}"] = rng.integers(0, 5, size=n).astype(float)
        else:
            columns[f"num{i}"] = rng.normal(size=n)
        schema.append(numeric(f"num{i}", role=AttributeRole.QUASI_IDENTIFIER))
    if name not in ("md_numeric", "md_int_grid", "md_single_qi"):
        columns["ord"] = rng.integers(0, 4, size=n)
        schema.append(
            ordinal("ord", ("a", "b", "c", "d"), role=AttributeRole.QUASI_IDENTIFIER)
        )
        columns["nom"] = rng.integers(0, 3, size=n)
        schema.append(
            nominal("nom", ("x", "y", "z"), role=AttributeRole.QUASI_IDENTIFIER)
        )
    if name == "md_categorical":
        columns["ord2"] = rng.integers(0, 3, size=n)
        schema.append(
            ordinal("ord2", ("lo", "mid", "hi"), role=AttributeRole.QUASI_IDENTIFIER)
        )
    if name == "md_tied_secret":
        secret = rng.integers(0, max(2, n // 4), size=n).astype(float)
    else:
        secret = rng.permutation(np.arange(float(n)))
    columns["secret"] = secret
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


def e2e_case(name: str) -> Microdata:
    """Microdata table for one *dataset* name of :data:`E2E_CASES`.

    Reuses :func:`microdata_case` for the shared datasets and adds two
    confidential-attribute schemas the partition-layer cases never needed:
    a nominal secret (exercising ``NominalClusterTracker``) and a pair of
    confidential attributes (exercising the max-over-attributes tracker
    set).
    """
    if name in {case for case, *_ in MICRODATA_CASES}:
        return microdata_case(name)
    if name not in ("md_nominal_secret", "md_two_secrets"):
        raise KeyError(name)
    rng = np.random.default_rng(abs(hash_stable(name)) % (2**32))
    n = 120
    columns: dict[str, np.ndarray] = {}
    schema = []
    for i in range(2):
        columns[f"num{i}"] = rng.normal(size=n)
        schema.append(numeric(f"num{i}", role=AttributeRole.QUASI_IDENTIFIER))
    if name == "md_nominal_secret":
        # Skewed five-way nominal secret: rare categories make clusters
        # overshoot t easily, forcing swap traffic on the nominal tracker.
        columns["disease"] = rng.choice(5, size=n, p=(0.45, 0.25, 0.15, 0.1, 0.05))
        schema.append(
            nominal(
                "disease",
                ("flu", "cold", "asthma", "ulcer", "cancer"),
                role=AttributeRole.CONFIDENTIAL,
            )
        )
    else:
        columns["salary"] = rng.integers(0, n // 3, size=n).astype(float)
        schema.append(numeric("salary", role=AttributeRole.CONFIDENTIAL))
        columns["disease"] = rng.integers(0, 3, size=n)
        schema.append(
            nominal("disease", ("a", "b", "c"), role=AttributeRole.CONFIDENTIAL)
        )
    return Microdata(columns, schema)


def hash_stable(text: str) -> int:
    """Deterministic 32-bit FNV-1a hash (``hash()`` is salted per process)."""
    h = 2166136261
    for byte in text.encode():
        h = ((h ^ byte) * 16777619) % (2**32)
    return h
