"""Golden equivalence: engine-backed partitions == seed implementations.

The fixtures in ``fixtures/engine_golden.npz`` hold the partition labels the
*pre-engine* reference implementations produced on the deterministic
datasets of ``golden_datasets.py`` (captured once by
``scripts/generate_engine_golden.py``; see that script's docstring).  These
tests assert that the engine-backed rewrites reproduce every one of them
bit-for-bit — same clusters, same labels, same tie-breaking — across
numeric and mixed quasi-identifier schemas, duplicate records (exact
distance ties), and several (n, k, t) combinations.

Every case runs under both registered compute backends
(``tests.backends.BACKENDS_UNDER_TEST``): the threaded backend's sharded
kernels and deterministic selection merges must reproduce the fixtures
bit-for-bit too, with its parallel paths forced on by tiny shard floors.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.kanon_first import kanonymity_first
from repro.core.tclose_first import tcloseness_first
from repro.microagg import mdav, vmdav

from ..backends import BACKENDS_UNDER_TEST
from .golden_datasets import (
    MATRIX_CASES,
    MICRODATA_CASES,
    VMDAV_GAMMAS,
    matrix_case,
    microdata_case,
)

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "engine_golden.npz"


@pytest.fixture(scope="module")
def golden():
    with np.load(FIXTURE_PATH) as stored:
        return {key: stored[key] for key in stored.files}


def test_fixture_is_complete(golden):
    """Every dataset/algorithm combination has a captured reference."""
    expected = {f"mdav/{name}" for name, *_ in MATRIX_CASES}
    expected |= {
        f"vmdav/{name}/g{gamma}"
        for name, *_ in MATRIX_CASES
        for gamma in VMDAV_GAMMAS
    }
    for algorithm in ("kanon-first", "tclose-first"):
        expected |= {f"{algorithm}/{name}" for name, *_ in MICRODATA_CASES}
    assert set(golden) == expected


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in MATRIX_CASES])
def test_mdav_matches_reference(golden, case, backend):
    _, _, _, k = next(c for c in MATRIX_CASES if c[0] == case)
    labels = mdav(matrix_case(case), k, backend=backend).labels
    np.testing.assert_array_equal(labels, golden[f"mdav/{case}"])


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in MATRIX_CASES])
@pytest.mark.parametrize("gamma", VMDAV_GAMMAS)
def test_vmdav_matches_reference(golden, case, gamma, backend):
    _, _, _, k = next(c for c in MATRIX_CASES if c[0] == case)
    labels = vmdav(matrix_case(case), k, gamma=gamma, backend=backend).labels
    np.testing.assert_array_equal(labels, golden[f"vmdav/{case}/g{gamma}"])


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in MICRODATA_CASES])
def test_kanon_first_matches_reference(golden, case, backend):
    _, _, k, t = next(c for c in MICRODATA_CASES if c[0] == case)
    labels = kanonymity_first(
        microdata_case(case), k, t, backend=backend
    ).partition.labels
    np.testing.assert_array_equal(labels, golden[f"kanon-first/{case}"])


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in MICRODATA_CASES])
def test_tclose_first_matches_reference(golden, case, backend):
    _, _, k, t = next(c for c in MICRODATA_CASES if c[0] == case)
    labels = tcloseness_first(
        microdata_case(case), k, t, backend=backend
    ).partition.labels
    np.testing.assert_array_equal(labels, golden[f"tclose-first/{case}"])
