"""Tests for optimal univariate microaggregation (Hansen–Mukherjee DP)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microagg import Partition, optimal_univariate, univariate_sse


def brute_force_optimal_sse(values: np.ndarray, k: int) -> float:
    """Exhaustive minimum SSE over contiguous sorted segmentations."""
    x = np.sort(values)
    n = len(x)

    def seg_sse(i, j):
        seg = x[i:j]
        return float(((seg - seg.mean()) ** 2).sum())

    best = {0: 0.0}
    for j in range(1, n + 1):
        candidates = [
            best[i] + seg_sse(i, j)
            for i in range(0, j - k + 1)
            if i in best and j - i >= k
        ]
        if candidates:
            best[j] = min(candidates)
    return best[n]


class TestOptimalUnivariate:
    def test_simple_two_groups(self):
        values = np.array([1.0, 2.0, 100.0, 101.0])
        p = optimal_univariate(values, 2)
        assert p.n_clusters == 2
        assert p.labels[0] == p.labels[1]
        assert p.labels[2] == p.labels[3]

    def test_cluster_sizes_within_bounds(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50)
        for k in (2, 3, 7):
            p = optimal_univariate(values, k)
            assert p.min_size >= k
            assert p.max_size <= 2 * k - 1

    def test_matches_brute_force_sse(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            values = rng.normal(size=rng.integers(4, 14))
            k = int(rng.integers(2, 4))
            if len(values) < k:
                continue
            p = optimal_univariate(values, k)
            assert univariate_sse(values, p) == pytest.approx(
                brute_force_optimal_sse(values, k), abs=1e-9
            )

    def test_not_worse_than_mdav(self):
        """The DP optimum is a lower bound for the MDAV heuristic."""
        from repro.microagg import mdav

        rng = np.random.default_rng(2)
        values = rng.exponential(size=120)
        for k in (3, 5):
            opt = univariate_sse(values, optimal_univariate(values, k))
            heur = univariate_sse(values, mdav(values[:, None], k))
            assert opt <= heur + 1e-9

    def test_single_cluster_when_n_below_2k(self):
        values = np.array([3.0, 1.0, 2.0])
        p = optimal_univariate(values, 2)
        assert p.n_clusters == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="1-D"):
            optimal_univariate(np.zeros((2, 2)), 1)
        with pytest.raises(ValueError, match="k must be"):
            optimal_univariate(np.zeros(3), 4)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e4, 1e4, allow_nan=False), min_size=2, max_size=40
        ),
        k=st.integers(2, 6),
    )
    def test_partition_invariants_property(self, values, k):
        values = np.asarray(values)
        if len(values) < k:
            return
        p = optimal_univariate(values, k)
        assert p.min_size >= k
        assert p.max_size <= 2 * k - 1
        assert p.sizes().sum() == len(values)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=4, max_size=24
        ),
    )
    def test_clusters_are_sorted_intervals(self, values):
        """Optimal univariate clusters are contiguous in sorted order."""
        values = np.asarray(values)
        p = optimal_univariate(values, 2)
        order = np.argsort(values, kind="stable")
        labels_in_sorted_order = p.labels[order]
        # Each label occupies one contiguous run.
        runs = [lab for lab, _ in itertools.groupby(labels_in_sorted_order.tolist())]
        assert len(runs) == len(set(runs))


class TestUnivariateSSE:
    def test_zero_for_singletons(self):
        values = np.array([5.0, 9.0])
        assert univariate_sse(values, Partition([0, 1])) == 0.0

    def test_known_value(self):
        values = np.array([0.0, 2.0])
        assert univariate_sse(values, Partition([0, 0])) == pytest.approx(2.0)
