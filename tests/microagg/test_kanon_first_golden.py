"""Golden end-to-end equivalence for the swap/merge-heavy algorithms.

``fixtures/kanon_first_golden.npz`` pins full runs of kanon-first (with and
without the merge fallback) and Algorithm 1 (MDAV + merge) on the tight-t
datasets of ``golden_datasets.E2E_CASES`` — the regimes where the swap
refinement and the merge phase make hundreds of EMD-driven decisions.  The
fixture was captured from the dense pre-refactor implementations (commit
2a51dac tree; see ``scripts/generate_engine_golden.py``); the sparse
incremental EMD engine must reproduce every decision:

* partition labels and swap/merge counters bit-for-bit — any flipped
  argmin, any accept/reject threshold crossing, any different merge
  partner changes these;
* per-cluster EMDs to 1e-12 — the *reported* values are evaluated through
  the sparse segment path, which sums the same terms in a different order
  than the dense cumulative evaluation and may therefore differ in the
  last ulp.

Every case runs under both registered compute backends
(``tests.backends.BACKENDS_UNDER_TEST``), with the threaded backend's
shard floors lowered so its parallel paths — including candidate-axis
sharding of the speculative swap-scoring blocks — really execute on the
fixture datasets.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.kanon_first import kanonymity_first
from repro.core.merge import microaggregation_merge

from ..backends import BACKENDS_UNDER_TEST
from .golden_datasets import E2E_CASES, e2e_case

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "kanon_first_golden.npz"

EMD_ATOL = 1e-12


@pytest.fixture(scope="module")
def golden():
    with np.load(FIXTURE_PATH) as stored:
        return {key: stored[key] for key in stored.files}


def case_params(case):
    _, dataset_name, k, t = next(c for c in E2E_CASES if c[0] == case)
    return e2e_case(dataset_name), k, t


def test_fixture_is_complete(golden):
    expected = set()
    for case, *_ in E2E_CASES:
        expected |= {
            f"{case}/labels",
            f"{case}/emds",
            f"{case}/counters",
            f"{case}/raw/labels",
            f"{case}/raw/emds",
            f"{case}/alg1/labels",
            f"{case}/alg1/emds",
            f"{case}/alg1/counters",
        }
    assert set(golden) == expected


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in E2E_CASES])
def test_kanon_first_end_to_end(golden, case, backend):
    data, k, t = case_params(case)
    result = kanonymity_first(data, k, t, backend=backend)
    np.testing.assert_array_equal(result.partition.labels, golden[f"{case}/labels"])
    np.testing.assert_allclose(
        result.cluster_emds, golden[f"{case}/emds"], atol=EMD_ATOL, rtol=0.0
    )
    n_swaps, n_merges, pre_merge = golden[f"{case}/counters"]
    assert result.info["n_swaps"] == n_swaps
    assert result.info["n_merges"] == n_merges
    assert result.info["clusters_before_merge"] == pre_merge


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in E2E_CASES])
def test_kanon_first_raw_swap_phase(golden, case, backend):
    """The swap phase alone (no merge fallback) is pinned separately."""
    data, k, t = case_params(case)
    result = kanonymity_first(data, k, t, merge_fallback=False, backend=backend)
    np.testing.assert_array_equal(
        result.partition.labels, golden[f"{case}/raw/labels"]
    )
    np.testing.assert_allclose(
        result.cluster_emds, golden[f"{case}/raw/emds"], atol=EMD_ATOL, rtol=0.0
    )


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("case", [c[0] for c in E2E_CASES])
def test_algorithm1_merge_phase(golden, case, backend):
    """Algorithm 1 exercises the rewritten merge loop from a MDAV start."""
    data, k, t = case_params(case)
    result = microaggregation_merge(data, k, t, backend=backend)
    np.testing.assert_array_equal(
        result.partition.labels, golden[f"{case}/alg1/labels"]
    )
    np.testing.assert_allclose(
        result.cluster_emds, golden[f"{case}/alg1/emds"], atol=EMD_ATOL, rtol=0.0
    )
    assert result.info["n_merges"] == golden[f"{case}/alg1/counters"][0]
