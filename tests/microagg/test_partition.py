"""Tests for the Partition container and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microagg import Partition, PartitionError


class TestConstruction:
    def test_labels_relabelled_contiguous(self):
        p = Partition([5, 5, 9, 9, 5])
        np.testing.assert_array_equal(p.labels, [0, 0, 1, 1, 0])
        assert p.n_clusters == 2

    def test_first_appearance_order(self):
        p = Partition([3, 0, 3, 0])
        np.testing.assert_array_equal(p.labels, [0, 1, 0, 1])

    def test_integral_floats_accepted(self):
        p = Partition(np.array([0.0, 1.0]))
        assert p.n_clusters == 2

    def test_fractional_floats_rejected(self):
        with pytest.raises(PartitionError, match="integers"):
            Partition(np.array([0.5, 1.0]))

    def test_negative_rejected(self):
        with pytest.raises(PartitionError, match="non-negative"):
            Partition([-1, 0])

    def test_empty_rejected(self):
        with pytest.raises(PartitionError, match="at least one"):
            Partition([])

    def test_2d_rejected(self):
        with pytest.raises(PartitionError, match="1-D"):
            Partition(np.zeros((2, 2), dtype=int))

    def test_from_clusters(self):
        p = Partition.from_clusters([[0, 2], [1, 3]], 4)
        np.testing.assert_array_equal(p.labels, [0, 1, 0, 1])

    def test_from_clusters_overlap_rejected(self):
        with pytest.raises(PartitionError, match="two clusters"):
            Partition.from_clusters([[0, 1], [1, 2]], 3)

    def test_from_clusters_uncovered_rejected(self):
        with pytest.raises(PartitionError, match="not assigned"):
            Partition.from_clusters([[0, 1]], 3)

    def test_from_clusters_empty_cluster_rejected(self):
        with pytest.raises(PartitionError, match="empty"):
            Partition.from_clusters([[0, 1], []], 2)

    def test_from_clusters_out_of_range_rejected(self):
        with pytest.raises(PartitionError, match="outside"):
            Partition.from_clusters([[0, 5]], 2)

    def test_single_cluster(self):
        p = Partition.single_cluster(4)
        assert p.n_clusters == 1
        assert p.min_size == 4

    def test_single_cluster_validates(self):
        with pytest.raises(PartitionError, match="positive"):
            Partition.single_cluster(0)


class TestAccessors:
    @pytest.fixture
    def p(self):
        return Partition([0, 1, 0, 1, 0, 2])

    def test_sizes(self, p):
        np.testing.assert_array_equal(p.sizes(), [3, 2, 1])

    def test_min_max_mean(self, p):
        assert p.min_size == 1
        assert p.max_size == 3
        assert p.mean_size == 2.0

    def test_cluster_members(self, p):
        np.testing.assert_array_equal(p.cluster(0), [0, 2, 4])
        np.testing.assert_array_equal(p.cluster(2), [5])

    def test_cluster_out_of_range(self, p):
        with pytest.raises(PartitionError, match="out of range"):
            p.cluster(3)

    def test_clusters_iteration_covers_everything(self, p):
        seen = np.concatenate(list(p.clusters()))
        np.testing.assert_array_equal(np.sort(seen), np.arange(6))

    def test_labels_read_only(self, p):
        with pytest.raises(ValueError):
            p.labels[0] = 9


class TestInvariantsAndOps:
    def test_validate_min_size_passes(self):
        Partition([0, 0, 1, 1]).validate_min_size(2)

    def test_validate_min_size_fails(self):
        with pytest.raises(PartitionError, match="smaller than k=2"):
            Partition([0, 0, 1]).validate_min_size(2)

    def test_validate_min_size_bad_k(self):
        with pytest.raises(PartitionError, match="positive"):
            Partition([0]).validate_min_size(0)

    def test_merge(self):
        p = Partition([0, 1, 2, 1])
        merged = p.merge(0, 2)
        assert merged.n_clusters == 2
        assert merged.labels[0] == merged.labels[2]

    def test_merge_self_rejected(self):
        with pytest.raises(PartitionError, match="itself"):
            Partition([0, 1]).merge(0, 0)

    def test_merge_out_of_range(self):
        with pytest.raises(PartitionError, match="out of range"):
            Partition([0, 1]).merge(0, 5)

    def test_equality_is_grouping_not_numbering(self):
        assert Partition([0, 0, 1]) == Partition([7, 7, 3])
        assert Partition([0, 0, 1]) != Partition([0, 1, 1])

    def test_equality_non_partition(self):
        assert Partition([0]) != "zzz"

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.integers(0, 6), min_size=1, max_size=60)
    )
    def test_clusters_partition_the_records(self, labels):
        """Invariant: clusters are disjoint and cover all records."""
        p = Partition(labels)
        all_members = np.concatenate(list(p.clusters()))
        assert len(all_members) == p.n_records
        np.testing.assert_array_equal(np.sort(all_members), np.arange(p.n_records))
        assert p.sizes().sum() == p.n_records

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.integers(0, 4), min_size=2, max_size=40),
        seed=st.integers(0, 100),
    )
    def test_merge_reduces_cluster_count_by_one(self, labels, seed):
        p = Partition(labels)
        if p.n_clusters < 2:
            return
        rng = np.random.default_rng(seed)
        g1, g2 = rng.choice(p.n_clusters, size=2, replace=False)
        merged = p.merge(int(g1), int(g2))
        assert merged.n_clusters == p.n_clusters - 1
        assert merged.n_records == p.n_records
