"""Unit tests for the clustering engine's primitives.

The equivalence suite (``test_engine_equivalence.py``) proves whole
partitions match the reference implementations; these tests pin down the
individual primitives — masked selections, incremental centroid, window
compaction, tie-breaking, buffer reuse across kills — against direct numpy
oracles.
"""

import numpy as np
import pytest

from repro.distance.records import (
    k_nearest_indices,
    pairwise_sq_distances,
    sq_distances_to,
)
from repro.microagg import ClusteringEngine


def make_engine(n=50, d=3, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    return X, ClusteringEngine(X, **kwargs)


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            ClusteringEngine(np.zeros(5))
        with pytest.raises(ValueError, match="at least one record"):
            ClusteringEngine(np.zeros((0, 3)))

    def test_rejects_bad_parameters(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError, match="compact_ratio"):
            ClusteringEngine(X, compact_ratio=1.5)
        with pytest.raises(ValueError, match="chunk_size"):
            ClusteringEngine(X, chunk_size=0)

    def test_kill_dead_record_raises(self):
        _, engine = make_engine()
        engine.kill(np.array([3]))
        with pytest.raises(ValueError, match="already assigned"):
            engine.kill(np.array([3]))

    def test_kill_duplicate_ids_in_one_batch_raises(self):
        _, engine = make_engine()
        n_alive = engine.n_alive
        with pytest.raises(ValueError, match="unique"):
            engine.kill(np.array([3, 3]))
        assert engine.n_alive == n_alive

    def test_centroid_requires_alive(self):
        _, engine = make_engine(n=2)
        engine.kill(np.array([0, 1]))
        with pytest.raises(ValueError, match="alive"):
            engine.centroid()


class TestSelections:
    def test_distances_match_reference_kernel(self):
        X, engine = make_engine()
        p = X[7]
        d2 = engine.eval_distances(p)
        np.testing.assert_array_equal(d2, sq_distances_to(X, p))

    def test_nearest_value_is_nonnegative_at_zero_distance(self):
        # A query point coinciding with a live record must report exactly
        # 0.0, never a cancellation artefact below zero (which would flip
        # vmdav's gamma=0 extension test against the reference behaviour).
        X, engine = make_engine()
        rec, value = engine.nearest_with_value(X[21].copy())
        assert rec == 21
        assert value == 0.0

    def test_farthest_and_nearest_against_oracle(self):
        X, engine = make_engine()
        dead = np.array([0, 5, 9])
        engine.kill(dead)
        alive = np.setdiff1d(np.arange(50), dead)
        p = X.mean(axis=0)
        d2 = sq_distances_to(X[alive], p)
        assert engine.farthest(p) == alive[np.argmax(d2)]
        near, value = engine.nearest_with_value(p)
        assert near == alive[np.argmin(d2)]
        assert value == pytest.approx(d2.min(), abs=1e-12)

    def test_k_nearest_matches_reference_selection(self):
        X, engine = make_engine()
        dead = np.arange(0, 50, 7)
        engine.kill(dead)
        alive = np.setdiff1d(np.arange(50), dead)
        ids = engine.k_nearest(6, point=X[1])
        expected = alive[k_nearest_indices(X[alive], X[1], 6)]
        np.testing.assert_array_equal(ids, expected)

    def test_sorted_alive_orders_by_distance_then_id(self):
        X, engine = make_engine()
        ids = engine.sorted_alive(point=X[3])
        d2 = sq_distances_to(X, X[3])
        expected = np.argsort(d2, kind="stable")
        np.testing.assert_array_equal(ids, expected)

    def test_duplicate_ties_break_to_lowest_id(self):
        X = np.zeros((6, 2))
        X[4] = X[2] = [1.0, 1.0]  # two identical far points
        engine = ClusteringEngine(X)
        assert engine.farthest(np.zeros(2)) == 2
        # All-zero rows tie at distance 0; ids win in ascending order.
        np.testing.assert_array_equal(
            engine.k_nearest(3, point=np.zeros(2)), [0, 1, 3]
        )

    def test_buffer_reuse_after_kill_sees_fresh_mask(self):
        X, engine = make_engine()
        p = X[0]
        first = engine.farthest(p)
        engine.kill(np.array([first]))
        second = engine.farthest()  # reuse: same distances, fewer alive
        alive = np.setdiff1d(np.arange(50), [first])
        d2 = sq_distances_to(X[alive], p)
        assert second == alive[np.argmax(d2)]
        assert second != first


class TestStateMaintenance:
    def test_centroid_is_bitwise_reference_mean(self):
        X, engine = make_engine()
        rng = np.random.default_rng(1)
        alive = np.ones(50, dtype=bool)
        for _ in range(8):
            candidates = np.flatnonzero(alive)
            kill = rng.choice(candidates, size=4, replace=False)
            engine.kill(kill)
            alive[kill] = False
            # centroid(): exactly the reference X[remaining].mean(axis=0);
            # centroid_fast(): running sum, equal to float precision only.
            np.testing.assert_array_equal(
                engine.centroid(), X[alive].mean(axis=0)
            )
            np.testing.assert_allclose(
                engine.centroid_fast(), X[alive].mean(axis=0), atol=1e-10
            )
            np.testing.assert_array_equal(engine.alive_ids(), np.flatnonzero(alive))

    def test_univariate_input_is_never_aliased_or_mutated(self):
        # For d=1 the transpose of a contiguous matrix is itself contiguous;
        # the working copy must still be a real copy, or compaction would
        # write through into the caller's array.
        from repro.microagg import mdav

        rng = np.random.default_rng(8)
        X = rng.normal(size=(100, 1))
        engine = ClusteringEngine(X)
        assert not np.shares_memory(engine._XwT, X)
        original = X.copy()
        mdav(X, 2)  # large enough that compaction fires
        np.testing.assert_array_equal(X, original)

    def test_double_kill_after_compaction_raises(self):
        # Stale positions of compacted-away records must not alias live
        # window slots: the liveness guard has to stay loud.
        _, engine = make_engine(n=200, seed=9, compact_ratio=0.7)
        engine.kill(np.arange(100))
        assert engine.stats["n_compactions"] >= 1
        n_alive_before = engine.n_alive
        with pytest.raises(ValueError, match="already assigned"):
            engine.kill(np.array([5]))
        assert engine.n_alive == n_alive_before
        np.testing.assert_array_equal(engine.alive_ids(), np.arange(100, 200))

    def test_compaction_preserves_results(self):
        # A low ratio forces many compactions; selections must be unaffected.
        X, eager = make_engine(n=200, seed=3, compact_ratio=0.95)
        _, lazy = make_engine(n=200, seed=3, compact_ratio=None)
        rng = np.random.default_rng(4)
        for _ in range(30):
            p = X[rng.integers(0, 200)]
            a, b = eager.k_nearest(3, point=p), lazy.k_nearest(3, point=p)
            np.testing.assert_array_equal(a, b)
            assert eager.farthest(p) == lazy.farthest(p)
            eager.kill(a)
            lazy.kill(b)
        assert eager.stats["n_compactions"] > 0
        assert lazy.stats["n_compactions"] == 0
        assert eager.window < 200

    def test_chunked_evaluation_is_bitwise_identical(self):
        # The kernel is row-wise, so the block layout cannot change results.
        X, whole = make_engine(n=97, seed=5)
        _, chunked = make_engine(n=97, seed=5, chunk_size=16)
        p = X[13]
        np.testing.assert_array_equal(
            whole.eval_distances(p), chunked.eval_distances(p)
        )
        np.testing.assert_array_equal(
            whole.eval_distances(p), sq_distances_to(X, p)
        )

    def test_positions_survive_until_compaction(self):
        X, engine = make_engine(n=64, compact_ratio=0.5)
        ids = np.arange(64)
        seen = engine.n_compactions
        pos = engine.positions_of(ids)
        np.testing.assert_array_equal(pos, ids)  # identity before compaction
        engine.kill(np.arange(0, 40))  # triggers a compaction
        assert engine.n_compactions == seen + 1
        fresh = engine.positions_of(engine.alive_ids())
        np.testing.assert_array_equal(fresh, np.arange(engine.n_alive))


class TestChunkedPairwise:
    def test_chunked_matches_direct(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(37, 4))
        direct = pairwise_sq_distances(X)
        chunked = pairwise_sq_distances(X, chunk_size=8)
        np.testing.assert_allclose(chunked, direct, atol=1e-12)

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="block_size"):
            pairwise_sq_distances(np.zeros((4, 2)), chunk_size=-1)


class TestKNearestSorted:
    def test_matches_sorted_alive_prefix_bitwise(self):
        X, engine = make_engine(n=120, d=2, seed=7)
        engine.eval_distances(X[3])
        full = engine.sorted_alive()
        for k in (1, 5, 40, 119, 120, 500):
            np.testing.assert_array_equal(
                engine.k_nearest_sorted(k), full[:k]
            )

    def test_boundary_ties_match_stable_order(self):
        # Duplicate rows create exact zero-distance and boundary ties; the
        # argpartition shortcut must reproduce the stable (distance, id)
        # order of the full argsort, including ties at the k-th value.
        rng = np.random.default_rng(11)
        X = rng.integers(0, 3, size=(90, 2)).astype(float)
        engine = ClusteringEngine(X)
        engine.eval_distances(X[0])
        full = engine.sorted_alive()
        for k in (1, 4, 17, 50, 89):
            np.testing.assert_array_equal(engine.k_nearest_sorted(k), full[:k])

    def test_respects_kills(self):
        X, engine = make_engine(n=40, d=2, seed=3)
        engine.eval_distances(X[0])
        engine.kill(engine.k_nearest_sorted(5))
        rest = engine.k_nearest_sorted(35)
        assert rest.size == 35
        np.testing.assert_array_equal(rest, engine.sorted_alive())


class TestReplaceRow:
    def test_updates_row_distances_and_centroid(self):
        X, engine = make_engine(n=30, d=3, seed=5)
        new_row = np.full(3, 0.25)
        engine.replace_row(4, new_row)
        np.testing.assert_array_equal(engine.row(4), new_row)
        d2 = engine.eval_distances(new_row)
        assert d2[engine.positions_of(np.array([4]))[0]] == 0.0
        mutated = X.copy()
        mutated[4] = new_row
        np.testing.assert_allclose(
            engine.centroid_fast(), mutated.mean(axis=0), atol=1e-12
        )

    def test_never_writes_through_to_caller_array(self):
        rng = np.random.default_rng(9)
        X = np.ascontiguousarray(rng.normal(size=(12, 2)))
        engine = ClusteringEngine(X)
        before = X.copy()
        engine.replace_row(0, np.zeros(2))
        np.testing.assert_array_equal(X, before)

    def test_dead_or_bad_rows_rejected(self):
        X, engine = make_engine(n=10, d=2, seed=1)
        engine.kill(np.array([3]))
        with pytest.raises(ValueError, match="already assigned"):
            engine.replace_row(3, np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            engine.replace_row(0, np.zeros(5))

    def test_ids_at_inverts_positions_of(self):
        X, engine = make_engine(n=25, d=2, seed=2)
        ids = np.array([1, 7, 19])
        np.testing.assert_array_equal(
            engine.ids_at(engine.positions_of(ids)), ids
        )
