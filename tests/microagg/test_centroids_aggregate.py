"""Tests for aggregation operators and anonymized-release construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal
from repro.microagg import (
    Partition,
    aggregate_partition,
    cluster_centroids,
    centroid_value,
    nominal_centroid,
    numeric_centroid,
    ordinal_centroid,
)


class TestCentroidOperators:
    def test_numeric_mean(self):
        assert numeric_centroid(np.array([1.0, 2.0, 6.0])) == pytest.approx(3.0)

    def test_numeric_empty(self):
        with pytest.raises(ValueError, match="empty"):
            numeric_centroid(np.array([]))

    def test_ordinal_lower_median(self):
        assert ordinal_centroid(np.array([0, 1, 2, 3])) == 1
        assert ordinal_centroid(np.array([0, 1, 2])) == 1
        assert ordinal_centroid(np.array([5])) == 5

    def test_ordinal_empty(self):
        with pytest.raises(ValueError, match="empty"):
            ordinal_centroid(np.array([]))

    def test_nominal_mode(self):
        assert nominal_centroid(np.array([2, 2, 1]), 3) == 2

    def test_nominal_tie_breaks_low(self):
        assert nominal_centroid(np.array([1, 0]), 2) == 0

    def test_nominal_validation(self):
        with pytest.raises(ValueError, match="empty"):
            nominal_centroid(np.array([]), 2)
        with pytest.raises(ValueError, match="n_categories"):
            nominal_centroid(np.array([0]), 0)

    def test_dispatch(self):
        assert centroid_value(np.array([2.0, 4.0]), numeric("x")) == 3.0
        assert centroid_value(
            np.array([0, 2, 2]), ordinal("x", ("a", "b", "c"))
        ) == 2.0
        assert centroid_value(
            np.array([0, 1, 1]), nominal("x", ("a", "b"))
        ) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_minimizes_sse_property(self, values):
        """The mean beats any member value as an SSE representative."""
        arr = np.asarray(values)
        mean = numeric_centroid(arr)
        sse_mean = ((arr - mean) ** 2).sum()
        for candidate in arr:
            assert sse_mean <= ((arr - candidate) ** 2).sum() + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(codes=st.lists(st.integers(0, 9), min_size=1, max_size=50))
    def test_median_minimizes_l1_property(self, codes):
        arr = np.asarray(codes)
        med = ordinal_centroid(arr)
        cost = np.abs(arr - med).sum()
        for candidate in range(10):
            assert cost <= np.abs(arr - candidate).sum()

    @settings(max_examples=40, deadline=None)
    @given(codes=st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_mode_minimizes_changes_property(self, codes):
        arr = np.asarray(codes)
        mode = nominal_centroid(arr, 6)
        changed = (arr != mode).sum()
        for candidate in range(6):
            assert changed <= (arr != candidate).sum()


@pytest.fixture
def dataset():
    schema = [
        numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
        ordinal("o", ("x", "y", "z"), role=AttributeRole.QUASI_IDENTIFIER),
        nominal("c", ("p", "q"), role=AttributeRole.QUASI_IDENTIFIER),
        numeric("secret", role=AttributeRole.CONFIDENTIAL),
    ]
    return Microdata(
        {
            "a": np.array([0.0, 2.0, 10.0, 20.0]),
            "o": np.array([0, 2, 1, 1]),
            "c": np.array([0, 0, 1, 1]),
            "secret": np.array([5.0, 6.0, 7.0, 8.0]),
        },
        schema,
    )


class TestAggregatePartition:
    def test_quasi_identifiers_replaced_by_centroids(self, dataset):
        p = Partition([0, 0, 1, 1])
        out = aggregate_partition(dataset, p)
        np.testing.assert_allclose(out.values("a"), [1.0, 1.0, 15.0, 15.0])
        np.testing.assert_array_equal(out.values("o"), [0, 0, 1, 1])
        np.testing.assert_array_equal(out.values("c"), [0, 0, 1, 1])

    def test_confidential_untouched(self, dataset):
        out = aggregate_partition(dataset, Partition([0, 0, 1, 1]))
        np.testing.assert_array_equal(out.values("secret"), [5.0, 6.0, 7.0, 8.0])

    def test_column_constant_within_cluster(self, dataset):
        p = Partition([0, 1, 0, 1])
        out = aggregate_partition(dataset, p)
        for members in p.clusters():
            for name in dataset.quasi_identifiers:
                assert len(np.unique(out.values(name)[members])) == 1

    def test_mean_preserved_globally(self, dataset):
        """Aggregating with the mean preserves each numeric QI's global mean."""
        out = aggregate_partition(dataset, Partition([0, 0, 1, 1]))
        assert out.values("a").mean() == pytest.approx(dataset.values("a").mean())

    def test_explicit_names(self, dataset):
        out = aggregate_partition(dataset, Partition([0, 0, 1, 1]), names=["a"])
        np.testing.assert_array_equal(out.values("o"), dataset.values("o"))

    def test_partition_size_mismatch(self, dataset):
        with pytest.raises(ValueError, match="partition covers"):
            aggregate_partition(dataset, Partition([0, 0]))

    def test_no_columns(self, dataset):
        stripped = dataset.with_roles(confidential=["secret"])
        with pytest.raises(ValueError, match="no columns"):
            aggregate_partition(stripped, Partition([0, 0, 1, 1]))


class TestClusterCentroids:
    def test_values(self, dataset):
        p = Partition([0, 0, 1, 1])
        table = cluster_centroids(dataset, p)
        np.testing.assert_allclose(table[:, 0], [1.0, 15.0])  # mean of "a"
        np.testing.assert_array_equal(table[:, 1], [0, 1])  # ordinal medians
        np.testing.assert_array_equal(table[:, 2], [0, 1])  # nominal modes

    def test_shape(self, dataset):
        table = cluster_centroids(dataset, Partition([0, 1, 2, 3]), names=["a"])
        assert table.shape == (4, 1)

    def test_validation(self, dataset):
        with pytest.raises(ValueError, match="partition covers"):
            cluster_centroids(dataset, Partition([0]))
        with pytest.raises(ValueError, match="no columns"):
            cluster_centroids(dataset, Partition([0, 0, 1, 1]), names=[])
