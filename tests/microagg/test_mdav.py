"""Tests for MDAV and V-MDAV partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_mcd
from repro.microagg import mdav, vmdav


class TestMDAVInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 120),
        k=st.integers(1, 12),
        d=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_cluster_size_bounds(self, n, k, d, seed):
        """Every MDAV cluster has between k and 2k-1 records."""
        if k > n:
            k = n
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        p = mdav(X, k)
        sizes = p.sizes()
        assert sizes.min() >= k
        assert sizes.max() <= 2 * k - 1
        assert sizes.sum() == n

    def test_exact_multiple_gives_equal_clusters(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        p = mdav(X, 5)
        assert p.n_clusters == 20
        np.testing.assert_array_equal(p.sizes(), np.full(20, 5))

    def test_k_equals_n_single_cluster(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(7, 2))
        p = mdav(X, 7)
        assert p.n_clusters == 1

    def test_k_one_singletons(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(9, 2))
        p = mdav(X, 1)
        assert p.n_clusters == 9
        assert p.max_size == 1

    def test_input_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            mdav(np.zeros(5), 2)
        with pytest.raises(ValueError, match="k must be"):
            mdav(np.zeros((5, 1)), 6)
        with pytest.raises(ValueError, match="k must be"):
            mdav(np.zeros((5, 1)), 0)

    def test_separated_blobs_recovered(self):
        """Three well-separated blobs of size k map to exactly 3 clusters."""
        rng = np.random.default_rng(1)
        blobs = [
            rng.normal(loc=center, scale=0.01, size=(4, 2))
            for center in ((0, 0), (100, 100), (-100, 100))
        ]
        X = np.vstack(blobs)
        p = mdav(X, 4)
        assert p.n_clusters == 3
        # Records of one blob always share a label.
        for b in range(3):
            labels = p.labels[b * 4 : (b + 1) * 4]
            assert len(set(labels.tolist())) == 1

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        assert mdav(X, 4) == mdav(X, 4)

    def test_homogeneity_beats_random_partition(self):
        """MDAV's within-cluster SSE is far below a random equal partition."""
        mcd = load_mcd(n=300)
        X = mcd.qi_matrix()
        p = mdav(X, 5)

        def sse(partition):
            total = 0.0
            for members in partition.clusters():
                c = X[members].mean(axis=0)
                total += ((X[members] - c) ** 2).sum()
            return total

        rng = np.random.default_rng(3)
        from repro.microagg import Partition

        random_labels = rng.permutation(np.repeat(np.arange(60), 5))
        assert sse(p) < 0.5 * sse(Partition(random_labels))


class TestVMDAV:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 100),
        k=st.integers(1, 10),
        gamma=st.floats(0.0, 3.0),
        seed=st.integers(0, 500),
    )
    def test_cluster_size_bounds(self, n, k, gamma, seed):
        """V-MDAV clusters stay within [k, 2k-1] like MDAV."""
        if k > n:
            k = n
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        p = vmdav(X, k, gamma=gamma)
        sizes = p.sizes()
        assert sizes.min() >= k
        assert sizes.max() <= 2 * k - 1
        assert sizes.sum() == n

    def test_gamma_zero_fixed_sizes_until_remainder(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(40, 2))
        p = vmdav(X, 5, gamma=0.0)
        sizes = np.sort(p.sizes())
        # With gamma=0 no extension happens: all clusters of size 5.
        assert sizes.max() <= 9
        assert (sizes[:-1] == 5).all()

    def test_large_gamma_produces_variable_sizes(self):
        """On clumpy data a generous gamma grows some clusters beyond k."""
        rng = np.random.default_rng(5)
        clumps = [
            rng.normal(loc=(i * 50, 0), scale=0.1, size=(7, 2)) for i in range(6)
        ]
        X = np.vstack(clumps)
        p = vmdav(X, 4, gamma=5.0)
        assert p.max_size > 4

    def test_input_validation(self):
        with pytest.raises(ValueError, match="gamma"):
            vmdav(np.zeros((5, 1)), 2, gamma=-1.0)
        with pytest.raises(ValueError, match="2-D"):
            vmdav(np.zeros(5), 2)
        with pytest.raises(ValueError, match="k must be"):
            vmdav(np.zeros((3, 1)), 9)

    def test_deterministic(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(50, 2))
        assert vmdav(X, 4, gamma=1.0) == vmdav(X, 4, gamma=1.0)
