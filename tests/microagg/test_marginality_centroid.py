"""Tests for the taxonomy-based (marginality) nominal centroid."""

import pytest

from repro.distance import Taxonomy
from repro.microagg import marginality_centroid, nominal_centroid


@pytest.fixture
def diseases():
    return Taxonomy.from_nested(
        {
            "Any": {
                "Respiratory": ["flu", "pneumonia", "bronchitis"],
                "Gastric": ["gastritis", "ulcer"],
            }
        }
    )


class TestMarginalityCentroid:
    def test_single_value(self, diseases):
        assert marginality_centroid(["flu"], diseases) == "flu"

    def test_within_subtree_stays_in_subtree(self, diseases):
        """A purely respiratory cluster aggregates to a respiratory leaf."""
        centroid = marginality_centroid(
            ["flu", "pneumonia", "bronchitis"], diseases
        )
        assert centroid in ("flu", "pneumonia", "bronchitis")

    def test_majority_subtree_wins(self, diseases):
        """Two respiratory + one gastric -> a respiratory centroid.

        The mode would be ambiguous here (all counts equal 1); the
        taxonomy resolves it semantically.
        """
        centroid = marginality_centroid(["flu", "pneumonia", "gastritis"], diseases)
        assert centroid in ("flu", "pneumonia", "bronchitis")

    def test_deterministic_tie_break(self, diseases):
        a = marginality_centroid(["flu", "gastritis"], diseases)
        b = marginality_centroid(["flu", "gastritis"], diseases)
        assert a == b

    def test_differs_from_mode_when_semantics_matter(self, diseases):
        """Frequency picks the repeated value; marginality can disagree.

        Cluster: {gastritis, gastritis, flu, pneumonia, bronchitis}.
        The mode is gastritis (count 2), but four of five values live in
        or near the respiratory subtree... marginality weighs distances:
        gastritis cost = 2*0 + 3*1 = 3; flu cost = 2*1 + 0 + 0.5 + 0.5 = 3.
        Either may win on cost; assert the *costs* are computed, i.e. the
        result is one of the two optima, not an arbitrary category.
        """
        cluster = ["gastritis", "gastritis", "flu", "pneumonia", "bronchitis"]
        centroid = marginality_centroid(cluster, diseases)
        assert centroid in ("gastritis", "flu", "pneumonia", "bronchitis")

    def test_minimizes_total_distance(self, diseases):
        """The returned leaf attains the minimum summed leaf distance."""
        cluster = ["flu", "flu", "ulcer", "gastritis", "gastritis"]
        centroid = marginality_centroid(cluster, diseases)
        best = min(
            sum(diseases.leaf_distance(c, x) for x in cluster)
            for c in diseases.leaves
        )
        got = sum(diseases.leaf_distance(centroid, x) for x in cluster)
        assert got == pytest.approx(best)

    def test_empty_rejected(self, diseases):
        with pytest.raises(ValueError, match="empty"):
            marginality_centroid([], diseases)

    def test_non_leaf_rejected(self, diseases):
        with pytest.raises(ValueError, match="not a leaf"):
            marginality_centroid(["Respiratory"], diseases)

    def test_flat_taxonomy_agrees_with_mode(self):
        """Without structure, marginality reduces to the mode."""
        flat = Taxonomy.flat(["a", "b", "c"])
        cluster = ["b", "b", "a"]
        centroid = marginality_centroid(cluster, flat)
        codes = [["a", "b", "c"].index(x) for x in cluster]
        assert centroid == ["a", "b", "c"][nominal_centroid(codes, 3)]
