"""Public-API surface tests.

Guard the contract downstream users import against: the names promised in
each package's ``__all__`` exist, the top-level convenience exports work,
and the package version matches the build metadata.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

PACKAGES = ["repro"] + [
    info.name
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if info.ispkg
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported is not None, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


def test_top_level_quickstart_names():
    for name in ("anonymize", "TClosenessAnonymizer", "Microdata", "METHODS"):
        assert hasattr(repro, name)


def test_methods_registry_matches_paper():
    assert set(repro.METHODS) == {"merge", "kanon-first", "tclose-first"}


def test_version_matches_pyproject():
    pyproject = (Path(repro.__file__).parents[2] / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


def test_console_script_target_exists():
    from repro.cli import main

    assert callable(main)
