"""Tests for the experiment harness (sweeps and table rendering)."""

import pytest

from repro.data import load_mcd
from repro.evaluation import (
    CellResult,
    format_series_table,
    format_size_table,
    format_table,
    run_cell,
    sweep,
)
from repro.generalization import sabre


@pytest.fixture(scope="module")
def mcd_tiny():
    return load_mcd(n=120)


class TestRunCell:
    def test_fields_populated(self, mcd_tiny):
        cell = run_cell(mcd_tiny, "tclose-first", k=3, t=0.2)
        assert cell.algorithm == "tclose-first"
        assert cell.k == 3 and cell.t == 0.2
        assert cell.min_size >= 3
        assert cell.satisfies_t
        assert cell.sse > 0.0
        assert cell.runtime_s > 0.0

    def test_callable_algorithm(self, mcd_tiny):
        cell = run_cell(mcd_tiny, sabre, k=3, t=0.2)
        assert cell.algorithm == "sabre"
        assert cell.satisfies_t

    def test_unknown_name(self, mcd_tiny):
        with pytest.raises(ValueError, match="unknown method"):
            run_cell(mcd_tiny, "nope", k=2, t=0.1)

    def test_size_cell_format(self):
        cell = CellResult(
            algorithm="x", k=2, t=0.1, min_size=4, avg_size=4.0,
            n_clusters=10, max_emd=0.05, satisfies_t=True, sse=0.1,
            runtime_s=0.5,
        )
        assert cell.size_cell == "4/4"
        ragged = CellResult(
            algorithm="x", k=2, t=0.1, min_size=4, avg_size=5.67,
            n_clusters=10, max_emd=0.05, satisfies_t=True, sse=0.1,
            runtime_s=0.5,
        )
        assert ragged.size_cell == "4/5.7"

    def test_kwargs_forwarded(self, mcd_tiny):
        cell = run_cell(
            mcd_tiny, "kanon-first", k=3, t=0.3, merge_fallback=False
        )
        assert cell.algorithm == "kanon-first"


class TestSweep:
    def test_grid_complete(self, mcd_tiny):
        grid = sweep(mcd_tiny, "tclose-first", ks=[2, 3], ts=[0.1, 0.2])
        assert set(grid) == {(2, 0.1), (2, 0.2), (3, 0.1), (3, 0.2)}
        for cell in grid.values():
            assert cell.satisfies_t


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_size_table(self, mcd_tiny):
        grid = sweep(mcd_tiny, "tclose-first", ks=[2], ts=[0.1, 0.2])
        text = format_size_table({"MCD": grid}, ks=[2], ts=[0.1, 0.2])
        assert "k=2" in text
        assert "t=0.1 MCD" in text

    def test_format_size_table_missing_cell(self, mcd_tiny):
        grid = sweep(mcd_tiny, "tclose-first", ks=[2], ts=[0.1])
        text = format_size_table({"MCD": grid}, ks=[2, 5], ts=[0.1])
        assert "-" in text

    def test_format_series_table(self):
        series = {"alg1": {0.1: 1.0, 0.2: 2.0}, "alg3": {0.1: 0.5}}
        text = format_series_table(series, ts=[0.1, 0.2], value_format="{:.1f}")
        assert "alg1" in text and "alg3" in text
        assert "-" in text  # missing alg3 value at t=0.2
