"""Tests for the microaggregation-assisted differential privacy extension."""

import numpy as np
import pytest

from repro.data import load_mcd
from repro.extensions import (
    dp_microaggregated_release,
    expected_noise_reduction,
    insensitive_partition,
)
from repro.metrics import normalized_sse


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=300)


class TestInsensitivePartition:
    def test_block_sizes(self, mcd_small):
        p = insensitive_partition(mcd_small, k=10)
        assert p.min_size >= 10
        assert p.n_clusters == 30

    def test_remainder_joins_last_block(self):
        data = load_mcd(n=103)
        p = insensitive_partition(data, k=10)
        sizes = sorted(p.sizes().tolist())
        assert sizes[:-1] == [10] * 9
        assert sizes[-1] == 13

    def test_blocks_contiguous_in_primary_qi(self, mcd_small):
        """Clusters are intervals of the lexicographic QI order."""
        p = insensitive_partition(mcd_small, k=15)
        primary = mcd_small.values(mcd_small.quasi_identifiers[0])
        maxima = {}
        minima = {}
        for g, members in enumerate(p.clusters()):
            maxima[g] = primary[members].max()
            minima[g] = primary[members].min()
        ordered = sorted(range(p.n_clusters), key=lambda g: minima[g])
        for a, b in zip(ordered, ordered[1:]):
            assert maxima[a] <= minima[b] + 1e-9

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            insensitive_partition(mcd_small, k=0)


class TestDPRelease:
    def test_release_shape(self, mcd_small):
        release = dp_microaggregated_release(mcd_small, k=10, epsilon=1.0)
        assert release.n_records == mcd_small.n_records
        assert set(release.attribute_names) == set(mcd_small.quasi_identifiers)

    def test_deterministic_given_seed(self, mcd_small):
        a = dp_microaggregated_release(mcd_small, k=10, epsilon=1.0, seed=3)
        b = dp_microaggregated_release(mcd_small, k=10, epsilon=1.0, seed=3)
        assert a.equals(b)

    def test_noise_shared_within_cluster(self, mcd_small):
        """The release publishes noisy centroids, not noisy records."""
        partition = insensitive_partition(mcd_small, k=10)
        release = dp_microaggregated_release(
            mcd_small, k=10, epsilon=1.0, partition=partition
        )
        for name in release.attribute_names:
            column = release.values(name)
            for members in partition.clusters():
                assert len(np.unique(column[members])) == 1

    def test_more_budget_less_error(self, mcd_small):
        """Across seeds, a larger epsilon yields lower expected SSE."""
        errors = {}
        for eps in (0.1, 10.0):
            sses = [
                normalized_sse(
                    mcd_small,
                    dp_microaggregated_release(
                        mcd_small, k=10, epsilon=eps, seed=seed
                    ),
                    names=mcd_small.quasi_identifiers,
                )
                for seed in range(5)
            ]
            errors[eps] = np.mean(sses)
        assert errors[10.0] < errors[0.1]

    def test_larger_k_less_noise_at_fixed_budget(self, mcd_small):
        """The VLDBJ headline: sensitivity (and noise) scale as 1/k."""
        def mean_abs_noise(k):
            partition = insensitive_partition(mcd_small, k=k)
            release = dp_microaggregated_release(
                mcd_small, k=k, epsilon=0.5, partition=partition, seed=1
            )
            name = mcd_small.quasi_identifiers[0]
            column = mcd_small.values(name)
            noisy = release.values(name)
            deviations = []
            for members in partition.clusters():
                deviations.append(abs(noisy[members][0] - column[members].mean()))
            return float(np.mean(deviations))

        assert mean_abs_noise(30) < mean_abs_noise(2)

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="epsilon"):
            dp_microaggregated_release(mcd_small, k=5, epsilon=0.0)

    def test_categorical_qi_rejected(self):
        from repro.data import load_adult

        adult = load_adult(n=100)
        with pytest.raises(ValueError, match="categorical"):
            dp_microaggregated_release(adult, k=5, epsilon=1.0)


class TestNoiseReduction:
    def test_headline_ratio(self):
        assert expected_noise_reduction(10) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            expected_noise_reduction(0)
