"""Smoke tests for the example scripts.

Importing an example executes its module level (imports + constants) but
not ``main()`` (guarded by ``__name__``), so this catches API drift —
renamed functions, changed signatures — without paying each example's full
runtime.  One cheap example's ``main()`` is executed end-to-end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name.removesuffix('.py')}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    """The deliverable floor: a quickstart plus domain scenarios."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_cleanly(name):
    module = _load(name)
    assert callable(module.main)
    assert module.__doc__  # every example documents its scenario


def test_quickstart_main_runs(capsys, monkeypatch):
    module = _load("quickstart.py")
    # Shrink the workload: quickstart defaults to the full 1,080 records.
    import repro.data

    monkeypatch.setattr(
        module, "load_mcd", lambda: repro.data.load_mcd(n=150), raising=True
    )
    module.main()
    out = capsys.readouterr().out
    assert "tclose-first" in out
    assert "Privacy audit" in out
