"""Property-based privacy invariants for all four anonymization paths.

For *every* generated table — mixed quasi-identifier schemas crossed with
the full sensitive-attribute distribution space of ``tests.strategies``
(tie-free numeric, heavily tied numeric, skewed ordinal, skewed nominal,
multi-attribute) — and every drawn (k, t), the output of each algorithm
path must satisfy both formal guarantees:

* **k-anonymity**: every cluster holds at least k records and the clusters
  cover the table exactly;
* **t-closeness**: the *dense* Definition-2 verifier of
  ``repro.privacy.tcloseness`` accepts the partition.  The verifier
  evaluates EMDs with the dense histogram arithmetic (``sparse=False``),
  deliberately independent of the sparse segment evaluations and
  incremental trackers the algorithms themselves now run on — if a sparse
  fast path ever under-estimated an EMD, the algorithms would stop
  refining too early and this suite would catch the violation.

The four paths: Algorithm 1 over MDAV, Algorithm 1 over V-MDAV,
Algorithm 2 (kanon-first, swap refinement + merge fallback) and
Algorithm 3 (tclose-first, t-close by construction).

The main invariant test additionally runs every path under both
registered compute backends (``tests.backends.BACKENDS_UNDER_TEST``), so
the formal guarantees are asserted over the threaded backend's sharded
kernels and scoring blocks across the full generated input space — not
just on the fixed golden datasets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import anonymize, kanonymity_first, microaggregation_merge
from repro.core.tclose_first import tcloseness_first
from repro.microagg import vmdav
from repro.privacy.tcloseness import is_t_close, t_closeness_level

from ..backends import BACKENDS_UNDER_TEST
from ..strategies import microdata

#: Sensitive kinds with a single rankable column — Algorithm 3's input
#: contract (it needs a total order on confidential values).
RANKABLE_KINDS = ("numeric", "numeric-tied", "ordinal")

RUNNERS = {
    "merge-mdav": lambda data, k, t, backend=None: microaggregation_merge(
        data, k, t, backend=backend
    ),
    "merge-vmdav": lambda data, k, t, backend=None: microaggregation_merge(
        data,
        k,
        t,
        partitioner=lambda X, kk, backend=backend: vmdav(
            X, kk, gamma=0.2, backend=backend
        ),
        backend=backend,
    ),
    "kanon-first": lambda data, k, t, backend=None: kanonymity_first(
        data, k, t, backend=backend
    ),
    "tclose-first": lambda data, k, t, backend=None: tcloseness_first(
        data, k, t, backend=backend
    ),
}


def assert_privacy_invariants(data, result, k, t):
    """The two formal guarantees plus partition sanity, verified densely."""
    # k-anonymity at the cluster level (the release masks each cluster to
    # one QI representative, so classes coincide with clusters).
    result.partition.validate_min_size(k)
    assert result.partition.sizes().sum() == data.n_records
    # Formal dense t-closeness verifier, independent of the sparse paths.
    assert is_t_close(data, t, classes=result.partition), (
        f"dense verifier rejects: achieved "
        f"{t_closeness_level(data, classes=result.partition)} > t={t}"
    )
    # The reported per-cluster EMDs must agree with the dense verdict to
    # float precision (they may be evaluated sparsely).
    assert result.max_emd <= t + 1e-9


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("name", ["merge-mdav", "merge-vmdav", "kanon-first"])
@settings(max_examples=25)
@given(
    data=microdata(confidential="any"),
    k=st.integers(2, 5),
    t=st.floats(0.05, 0.5),
)
def test_privacy_invariants(name, backend, data, k, t):
    result = RUNNERS[name](data, k, t, backend=backend)
    assert_privacy_invariants(data, result, k, t)


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@settings(max_examples=25)
@given(
    data=microdata(confidential="numeric"),
    k=st.integers(2, 5),
    t=st.floats(0.05, 0.5),
)
def test_privacy_invariants_tclose_first(backend, data, k, t):
    """Tie-free confidential values, *release path*: rank and distinct EMD
    coincide, so Proposition 2 covers every one-record-per-bucket cluster —
    but the extra-record rule (the ``n mod k'`` leftovers parked centrally,
    Figures 3-4) sits outside the proposition, and on small tables a
    cluster holding an extra record can exceed t.  The release lifecycle
    repairs exactly that (``repro.core.repair``), so the released partition
    must always pass the dense verifier."""
    _, result = anonymize(data, k, t, method="tclose-first", backend=backend)
    assert_privacy_invariants(data, result, k, t)


@settings(max_examples=25)
@given(
    data=microdata(confidential="numeric"),
    k=st.integers(2, 5),
    t=st.floats(0.05, 0.5),
)
def test_tclose_first_raw_construction_bound(data, k, t):
    """The raw construction, without repair: when the effective cluster
    size divides n — equal buckets, no extra records, exactly Proposition
    2's setting (tie-free values make distinct EMD equal rank EMD, the
    bound's formulation) — every cluster is within the bound.  With a
    remainder, both the uneven buckets and the extra-record rule fall
    outside the proposition and the bound may be exceeded (which is what
    the release path's repair exists for)."""
    result = tcloseness_first(data, k, t)
    result.partition.validate_min_size(k)
    assert result.partition.sizes().sum() == data.n_records
    if data.n_records % result.info["effective_k"] == 0:
        assert result.info["n_extra_records"] == 0
        assert (result.cluster_emds <= result.info["emd_bound"] + 1e-9).all()


@settings(max_examples=25)
@given(
    data=microdata(confidential=RANKABLE_KINDS),
    k=st.integers(2, 5),
    t=st.floats(0.05, 0.5),
)
def test_privacy_invariants_tclose_first_rank_mode(data, k, t):
    """Tied/ordinal confidential values, *release path*: Proposition 2 is
    stated for the rank (per-record bins) formulation, so the dense
    rank-mode verifier is the formal check — distinct-mode EMD may
    legitimately exceed t on ties (the paper's construction slices
    *ranks*, not distinct values).  The extra-record caveat applies in
    rank mode exactly as in distinct mode (the rule sits outside the
    proposition whenever k' does not divide n), so the guarantee is made
    on the repaired release, not the raw construction."""
    _, result = anonymize(data, k, t, method="tclose-first", emd_mode="rank")
    result.partition.validate_min_size(k)
    assert result.partition.sizes().sum() == data.n_records
    assert is_t_close(data, t, classes=result.partition, emd_mode="rank")


@settings(max_examples=15)
@given(
    data=microdata(confidential="any"),
    k=st.integers(2, 4),
    t=st.floats(0.05, 0.4),
)
def test_kanon_first_swap_phase_never_weakens_privacy(data, k, t):
    """Even without the merge fallback the swap phase preserves k-anonymity
    and never reports an EMD below what the dense verifier measures."""
    result = kanonymity_first(data, k, t, merge_fallback=False)
    result.partition.validate_min_size(k)
    assert result.partition.sizes().sum() == data.n_records
    achieved = t_closeness_level(data, classes=result.partition)
    # Reported (sparse) worst EMD agrees with the dense measurement.
    assert result.max_emd == pytest.approx(achieved, abs=1e-9)
    # satisfies_t must never claim more privacy than the dense verifier.
    if result.satisfies_t:
        assert is_t_close(data, t, classes=result.partition)
