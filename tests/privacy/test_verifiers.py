"""Tests for k-anonymity / l-diversity / t-closeness / p-sensitivity checks."""

import numpy as np
import pytest

from repro.data import AttributeRole, Microdata, nominal, numeric
from repro.privacy import (
    class_emds,
    distinct_l_diversity,
    entropy_l_diversity,
    equivalence_classes,
    is_k_anonymous,
    is_nt_close,
    is_p_sensitive_k_anonymous,
    is_recursive_cl_diverse,
    is_t_close,
    k_anonymity_level,
    nt_closeness_level,
    p_sensitivity_level,
    t_closeness_level,
)


def make_release(qi_values, secrets, diseases=None):
    """Released table: one numeric QI, numeric secret, optional disease."""
    columns = {
        "qi": np.asarray(qi_values, dtype=float),
        "secret": np.asarray(secrets, dtype=float),
    }
    schema = [
        numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
        numeric("secret", role=AttributeRole.CONFIDENTIAL),
    ]
    if diseases is not None:
        columns["disease"] = np.asarray(diseases, dtype=object)
        cats = tuple(dict.fromkeys(diseases))
        schema.append(nominal("disease", cats, role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


@pytest.fixture
def release():
    # Two classes of 3 (qi=1.0) and 2 (qi=2.0) records.
    return make_release(
        [1.0, 1.0, 1.0, 2.0, 2.0],
        [10.0, 20.0, 30.0, 10.0, 10.0],
    )


class TestKAnonymity:
    def test_classes_grouped_by_qi(self, release):
        classes = equivalence_classes(release)
        assert classes.n_clusters == 2
        np.testing.assert_array_equal(np.sort(classes.sizes()), [2, 3])

    def test_level(self, release):
        assert k_anonymity_level(release) == 2

    def test_is_k_anonymous(self, release):
        assert is_k_anonymous(release, 2)
        assert not is_k_anonymous(release, 3)

    def test_k_validation(self, release):
        with pytest.raises(ValueError, match="k must be"):
            is_k_anonymous(release, 0)

    def test_requires_qis(self):
        md = Microdata({"x": [1.0]}, [numeric("x")])
        with pytest.raises(ValueError, match="no quasi-identifier"):
            equivalence_classes(md)

    def test_multi_qi_grouping(self):
        md = Microdata(
            {
                "a": np.array([1.0, 1.0, 1.0, 1.0]),
                "b": np.array([1.0, 1.0, 2.0, 2.0]),
                "s": np.array([1.0, 2.0, 3.0, 4.0]),
            },
            [
                numeric("a", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("b", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        assert equivalence_classes(md).n_clusters == 2


class TestLDiversity:
    def test_distinct_level(self, release):
        # Class 1 has 3 distinct secrets, class 2 has 1 -> level 1.
        assert distinct_l_diversity(release) == 1

    def test_distinct_level_diverse_table(self):
        md = make_release([1.0, 1.0, 2.0, 2.0], [5.0, 7.0, 1.0, 3.0])
        assert distinct_l_diversity(md) == 2

    def test_entropy_level_uniform_class(self):
        md = make_release([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert entropy_l_diversity(md) == pytest.approx(3.0)

    def test_entropy_level_degenerate_class(self, release):
        assert entropy_l_diversity(release) == pytest.approx(1.0)

    def test_worst_attribute_wins(self):
        md = make_release(
            [1.0, 1.0], [10.0, 20.0], diseases=["flu", "flu"]
        )
        assert distinct_l_diversity(md) == 1  # disease column is uniform

    def test_explicit_attribute(self):
        md = make_release(
            [1.0, 1.0], [10.0, 20.0], diseases=["flu", "flu"]
        )
        assert distinct_l_diversity(md, "secret") == 2
        assert distinct_l_diversity(md, "disease") == 1

    def test_recursive_cl(self):
        # Counts (2, 1, 1): r1=2 < c*(r2+r3)=2*(1+1) -> (2, 2)-diverse.
        md = make_release(
            [1.0] * 4, [5.0, 5.0, 6.0, 7.0]
        )
        assert is_recursive_cl_diverse(md, c=2.0, l=2)
        assert not is_recursive_cl_diverse(md, c=0.5, l=2)

    def test_recursive_cl_insufficient_values(self):
        md = make_release([1.0, 1.0], [5.0, 5.0])
        assert not is_recursive_cl_diverse(md, c=10.0, l=2)

    def test_recursive_validation(self, release):
        with pytest.raises(ValueError, match="c must be"):
            is_recursive_cl_diverse(release, c=0.0, l=2)
        with pytest.raises(ValueError, match="l must be"):
            is_recursive_cl_diverse(release, c=1.0, l=0)

    def test_requires_confidential(self):
        md = Microdata(
            {"q": [1.0, 1.0]},
            [numeric("q", role=AttributeRole.QUASI_IDENTIFIER)],
        )
        with pytest.raises(ValueError, match="no confidential"):
            distinct_l_diversity(md)


class TestTCloseness:
    def test_perfectly_mirrored_classes(self):
        # Both classes hold {1, 2}: distributions equal the table's.
        md = make_release([1.0, 1.0, 2.0, 2.0], [1.0, 2.0, 1.0, 2.0])
        assert t_closeness_level(md) == pytest.approx(0.0, abs=1e-12)
        assert is_t_close(md, 0.0)

    def test_skewed_classes(self):
        md = make_release([1.0, 1.0, 2.0, 2.0], [1.0, 1.0, 2.0, 2.0])
        # Each class holds one value only: EMD = 0.5 per class.
        assert t_closeness_level(md) == pytest.approx(0.5)
        assert not is_t_close(md, 0.3)

    def test_class_emds_shape(self, release):
        emds = class_emds(release)
        assert emds.shape == (2,)

    def test_t_validation(self, release):
        with pytest.raises(ValueError, match="t must be"):
            is_t_close(release, -0.1)

    def test_anonymized_output_passes_verifier(self):
        """End-to-end: algorithm output passes the independent verifier."""
        from repro import anonymize
        from repro.data import load_mcd

        data = load_mcd(n=200)
        release, result = anonymize(data, k=3, t=0.2)
        assert is_k_anonymous(release, 3)
        assert is_t_close(release, 0.2)
        assert t_closeness_level(release) == pytest.approx(result.max_emd)


class TestPSensitive:
    def test_level(self, release):
        assert p_sensitivity_level(release) == 1

    def test_is_p_sensitive(self):
        md = make_release([1.0, 1.0, 2.0, 2.0], [5.0, 7.0, 1.0, 3.0])
        assert is_p_sensitive_k_anonymous(md, p=2, k=2)
        assert not is_p_sensitive_k_anonymous(md, p=3, k=2)
        assert not is_p_sensitive_k_anonymous(md, p=2, k=3)

    def test_validation(self, release):
        with pytest.raises(ValueError, match="p must be"):
            is_p_sensitive_k_anonymous(release, p=0, k=1)
        with pytest.raises(ValueError, match="k must be"):
            is_p_sensitive_k_anonymous(release, p=1, k=0)


class TestNTCloseness:
    def test_looser_than_t_closeness(self):
        """(n, t)-closeness level never exceeds the t-closeness level."""
        md = make_release(
            [1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        t_level = t_closeness_level(md)
        nt_level = nt_closeness_level(md, n=4)
        assert nt_level <= t_level + 1e-12

    def test_n_equals_total_recovers_t_closeness(self):
        md = make_release(
            [1.0, 1.0, 2.0, 2.0], [1.0, 2.0, 3.0, 4.0]
        )
        assert nt_closeness_level(md, n=4) == pytest.approx(t_closeness_level(md))

    def test_is_nt_close(self):
        md = make_release([1.0, 1.0, 2.0, 2.0], [1.0, 2.0, 1.0, 2.0])
        assert is_nt_close(md, n=2, t=0.01)

    def test_validation(self, release):
        with pytest.raises(ValueError, match="n must be"):
            nt_closeness_level(release, n=0)
        with pytest.raises(ValueError, match="exceeds"):
            nt_closeness_level(release, n=100)
        with pytest.raises(ValueError, match="t must be"):
            is_nt_close(release, n=2, t=-0.5)
