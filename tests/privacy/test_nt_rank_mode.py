"""Extra coverage: (n,t)-closeness under the rank EMD and superset logic."""

import numpy as np
import pytest

from repro.data import AttributeRole, Microdata, numeric
from repro.privacy import nt_closeness_level, t_closeness_level


@pytest.fixture
def release():
    # Three classes of 2 records each; confidential values interleaved so
    # neighbouring classes complement each other's distributions.
    return Microdata(
        {
            "qi": np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0]),
            "secret": np.array([1.0, 4.0, 2.0, 5.0, 3.0, 6.0]),
        },
        [
            numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


def test_rank_mode_matches_distinct_on_tie_free_data(release):
    distinct = nt_closeness_level(release, n=4, emd_mode="distinct")
    rank = nt_closeness_level(release, n=4, emd_mode="rank")
    assert rank == pytest.approx(distinct, abs=1e-9)


def test_larger_n_not_easier(release):
    """Raising n restricts the candidate supersets, so the level rises."""
    small = nt_closeness_level(release, n=2)
    large = nt_closeness_level(release, n=6)
    assert large >= small - 1e-12


def test_superset_comparison_uses_local_reference(release):
    """A class compared against its own 2-class neighbourhood, not the table.

    Class {1,4} with its nearest class {2,5} forms the superset
    {1,2,4,5}; the class EMD to that superset differs from its EMD to the
    whole table, and the (n,t) level must reflect the former.
    """
    nt = nt_closeness_level(release, n=4)
    t = t_closeness_level(release)
    assert nt != pytest.approx(t) or nt <= t
    assert nt <= t + 1e-12
