"""Tests for disclosure-risk estimators and the audit report."""

import numpy as np
import pytest

from repro import anonymize
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.microagg import Partition
from repro.privacy import (
    PrivacyAudit,
    audit,
    equivalence_classes,
    expected_reidentification_rate,
    interval_disclosure_rate,
    record_linkage_risk,
    reidentification_upper_bound,
)


@pytest.fixture(scope="module")
def anonymized_pair():
    original = load_mcd(n=200)
    release, result = anonymize(original, k=4, t=0.2)
    return original, release, result


class TestStructuralRisk:
    def test_uniform_classes(self):
        classes = Partition([0, 0, 1, 1])
        assert expected_reidentification_rate(classes) == pytest.approx(0.5)

    def test_mixed_classes(self):
        # Sizes 1 and 3: mean(1, 1/3, 1/3, 1/3) = 0.5
        classes = Partition([0, 1, 1, 1])
        assert expected_reidentification_rate(classes) == pytest.approx(0.5)

    def test_upper_bound_is_inverse_k(self, anonymized_pair):
        _, release, _ = anonymized_pair
        k = equivalence_classes(release).min_size
        assert reidentification_upper_bound(release) == pytest.approx(1.0 / k)


class TestRecordLinkage:
    def test_identity_release_fully_linkable(self):
        original = load_mcd(n=80)
        assert record_linkage_risk(original, original) == pytest.approx(1.0)

    def test_anonymization_reduces_linkage(self, anonymized_pair):
        original, release, _ = anonymized_pair
        risk = record_linkage_risk(original, release)
        assert risk < 0.5  # k=4 caps structural risk at 0.25 + noise

    def test_linkage_at_most_structural_ceiling(self, anonymized_pair):
        """Linking into a centroid class cannot beat uniform guessing."""
        original, release, result = anonymized_pair
        risk = record_linkage_risk(original, release)
        ceiling = expected_reidentification_rate(result.partition)
        assert risk <= ceiling + 0.05

    def test_sampling_determinism(self, anonymized_pair):
        original, release, _ = anonymized_pair
        r1 = record_linkage_risk(original, release, max_records=50, seed=3)
        r2 = record_linkage_risk(original, release, max_records=50, seed=3)
        assert r1 == r2

    def test_row_mismatch_rejected(self):
        a = load_mcd(n=50)
        b = load_mcd(n=60)
        with pytest.raises(ValueError, match="records"):
            record_linkage_risk(a, b)


class TestIntervalDisclosure:
    def test_identity_release_full_disclosure(self):
        original = load_mcd(n=60)
        assert interval_disclosure_rate(original, original) == pytest.approx(1.0)

    def test_masking_reduces_disclosure(self, anonymized_pair):
        original, release, _ = anonymized_pair
        rate = interval_disclosure_rate(original, release, width=0.01)
        assert rate < 1.0

    def test_wider_interval_higher_rate(self, anonymized_pair):
        original, release, _ = anonymized_pair
        narrow = interval_disclosure_rate(original, release, width=0.01)
        wide = interval_disclosure_rate(original, release, width=0.2)
        assert wide >= narrow

    def test_validation(self, anonymized_pair):
        original, release, _ = anonymized_pair
        with pytest.raises(ValueError, match="width"):
            interval_disclosure_rate(original, release, width=0.0)

    def test_constant_column(self):
        md = Microdata(
            {"q": np.array([5.0, 5.0]), "s": np.array([1.0, 2.0])},
            [
                numeric("q", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        assert interval_disclosure_rate(md, md) == pytest.approx(1.0)


class TestAudit:
    def test_audit_fields(self, anonymized_pair):
        original, release, result = anonymized_pair
        report = audit(release, original)
        assert isinstance(report, PrivacyAudit)
        assert report.n_records == 200
        assert report.k_level >= 4
        assert report.t_level <= 0.2 + 1e-9
        assert report.n_classes == result.partition.n_clusters
        assert report.linkage_risk is not None

    def test_audit_without_original(self, anonymized_pair):
        _, release, _ = anonymized_pair
        report = audit(release)
        assert report.linkage_risk is None

    def test_format_contains_key_lines(self, anonymized_pair):
        original, release, _ = anonymized_pair
        text = audit(release, original).format()
        for needle in ("k-anonymity", "t-closeness", "l-diversity", "linkage"):
            assert needle in text

    def test_format_omits_linkage_without_original(self, anonymized_pair):
        _, release, _ = anonymized_pair
        assert "linkage" not in audit(release).format()
