"""Tests for the named implementation registries."""

import pytest

from repro import EMD_MODES, METHODS, PARTITIONERS
from repro.registry import Registry, RegistryError


class TestRegistry:
    def test_register_decorator_and_lookup(self):
        reg = Registry("widget")

        @reg.register("alpha")
        def alpha():
            return "a"

        assert reg.resolve("alpha") is alpha
        assert reg["alpha"] is alpha
        assert "alpha" in reg
        assert reg.names() == ("alpha",)

    def test_register_direct_form(self):
        reg = Registry("widget")
        fn = lambda: None  # noqa: E731
        assert reg.register("x", fn) is fn
        assert reg["x"] is fn

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("x", object())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", object())

    def test_unregister_roundtrip(self):
        reg = Registry("widget")
        fn = object()
        reg.register("x", fn)
        assert reg.unregister("x") is fn
        assert "x" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("x")

    def test_unknown_name_lists_alternatives(self):
        reg = Registry("widget")
        reg.register("alpha", object())
        reg.register("beta", object())
        with pytest.raises(RegistryError, match=r"unknown widget 'x'.*alpha.*beta"):
            reg.resolve("x")

    def test_error_satisfies_both_legacy_types(self):
        """Pre-registry callers caught ValueError; mapping users expect KeyError."""
        reg = Registry("widget")
        with pytest.raises(ValueError):
            reg["missing"]
        with pytest.raises(KeyError):
            reg["missing"]

    def test_mapping_get_keeps_stdlib_contract(self):
        reg = Registry("widget")
        fn = object()
        reg.register("x", fn)
        assert reg.get("x") is fn
        assert reg.get("missing") is None
        assert reg.get("missing", "fallback") == "fallback"

    def test_invalid_names_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="non-empty string"):
            reg.register("", object())


class TestBuiltinRegistries:
    def test_methods_prepopulated(self):
        assert set(METHODS) == {"merge", "kanon-first", "tclose-first"}

    def test_partitioners_prepopulated(self):
        assert set(PARTITIONERS) >= {"mdav", "vmdav"}

    def test_emd_modes_prepopulated(self):
        assert set(EMD_MODES) == {"distinct", "rank"}
        assert EMD_MODES["distinct"].supports_trackers
        assert not EMD_MODES["rank"].supports_trackers

    def test_merge_accepts_partitioner_by_name(self):
        from repro.core import microaggregation_merge
        from repro.data import load_mcd
        from repro.microagg import vmdav

        data = load_mcd(n=80)
        by_name = microaggregation_merge(data, 3, 0.3, partitioner="vmdav")
        by_callable = microaggregation_merge(data, 3, 0.3, partitioner=vmdav)
        assert by_name.partition == by_callable.partition

    def test_merge_rejects_unknown_partitioner_name(self):
        from repro.core import microaggregation_merge
        from repro.data import load_mcd

        with pytest.raises(ValueError, match="unknown partitioner"):
            microaggregation_merge(load_mcd(n=40), 2, 0.3, partitioner="kmeans")

    def test_custom_method_registration_reaches_anonymize(self):
        from repro import anonymize
        from repro.core.tclose_first import tcloseness_first
        from repro.data import load_mcd
        from repro.registry import register_method

        register_method("test-custom", tcloseness_first)
        try:
            _, result = anonymize(load_mcd(n=60), 2, 0.3, method="test-custom")
            assert result.partition.min_size >= 2
        finally:
            METHODS.unregister("test-custom")