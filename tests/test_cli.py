"""End-to-end CLI tests (anonymize and audit subcommands)."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import load_mcd, read_csv, write_csv
from repro.privacy import distinct_l_diversity, is_k_anonymous, is_t_close


@pytest.fixture
def census_csv(tmp_path):
    path = tmp_path / "census.csv"
    write_csv(load_mcd(n=150), path)
    return path


class TestAnonymizeCommand:
    def test_end_to_end(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.2",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "tclose-first" in stdout
        release = read_csv(
            out,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        assert release.n_records == 150
        assert is_k_anonymous(release, 3)
        assert is_t_close(release, 0.2 + 1e-9)

    def test_method_selection(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "2",
                "-t",
                "0.25",
                "--method",
                "merge",
            ]
        )
        assert code == 0
        assert "merge" in capsys.readouterr().out

    def test_report_flag(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.2",
                "--report",
            ]
        )
        stdout = capsys.readouterr().out
        assert "Privacy audit" in stdout
        assert "record-linkage risk" in stdout

    def test_identifier_dropped(self, tmp_path, capsys):
        src = tmp_path / "in.csv"
        data = load_mcd(n=60)
        # Reuse FICA-free census; add a synthetic id column via CSV text.
        write_csv(data, src)
        text = src.read_text().splitlines()
        text[0] = "ID," + text[0]
        for i in range(1, len(text)):
            text[i] = f"{i}," + text[i]
        src.write_text("\n".join(text) + "\n")
        out = tmp_path / "out.csv"
        main(
            [
                "anonymize",
                str(src),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "--identifier",
                "ID",
                "-k",
                "2",
                "-t",
                "0.3",
            ]
        )
        header = out.read_text().splitlines()[0]
        assert "ID" not in header.split(",")

    def test_unknown_method_rejected(self, census_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "anonymize",
                    str(census_csv),
                    str(tmp_path / "o.csv"),
                    "--qi",
                    "TAXINC",
                    "--confidential",
                    "FEDTAX",
                    "-k",
                    "2",
                    "-t",
                    "0.2",
                    "--method",
                    "wizardry",
                ]
            )


class TestRequireFlag:
    def test_require_policy_release_passes_audit(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "--require",
                "k=5,t=0.15,l=2",
            ]
        )
        assert code == 0
        release = read_csv(
            out,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        assert is_k_anonymous(release, 5)
        assert is_t_close(release, 0.15 + 1e-9)
        assert distinct_l_diversity(release) >= 2

    def test_require_combines_with_k_and_t_flags(self, census_csv, tmp_path):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "4",
                "--require",
                "t=0.2",
            ]
        )
        assert code == 0
        release = read_csv(
            out,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        assert is_k_anonymous(release, 4)

    def test_duplicate_requirement_is_an_error(self, census_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(tmp_path / "o.csv"),
                "--qi",
                "TAXINC",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.2",
                "--require",
                "k=5",
            ]
        )
        assert code == 2
        assert "duplicate" in capsys.readouterr().err

    def test_infeasible_policy_is_a_clean_error(self, census_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(tmp_path / "o.csv"),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "--require",
                "k=3,t=0.5,l=500",
            ]
        )
        assert code == 2
        assert "policy requires 500 distinct" in capsys.readouterr().err

    def test_no_requirements_is_an_error(self, census_csv, tmp_path, capsys):
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(tmp_path / "o.csv"),
                "--qi",
                "TAXINC",
                "--confidential",
                "FEDTAX",
            ]
        )
        assert code == 2
        assert "no privacy requirements" in capsys.readouterr().err


class TestFitApplyCommands:
    def test_fit_then_apply_round_trip(self, census_csv, tmp_path, capsys):
        model = tmp_path / "model.npz"
        release = tmp_path / "release.csv"
        code = main(
            [
                "fit",
                str(census_csv),
                str(model),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "--require",
                "k=4,t=0.2",
                "--release",
                str(release),
            ]
        )
        assert code == 0
        assert model.exists()
        assert model.with_suffix(".json").exists()
        assert release.exists()
        stdout = capsys.readouterr().out
        assert "Run report" in stdout
        assert "satisfied" in stdout

        out = tmp_path / "applied.csv"
        code = main(["apply", str(model), str(census_csv), str(out)])
        assert code == 0
        applied = read_csv(
            out,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        assert applied.n_records == 150
        # Every applied quasi-identifier row is one of the fitted
        # representatives (a record may map to a *different* cluster's
        # representative than at fit time, so exact class sizes — and thus
        # batch-level k — are not guaranteed; the generalized values are).
        fitted_release = read_csv(
            release,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        reps = {
            tuple(row) for row in fitted_release.matrix(["TAXINC", "POTHVAL"])
        }
        for row in applied.matrix(["TAXINC", "POTHVAL"]):
            assert tuple(row) in reps

    def test_apply_rejects_batch_missing_qi(self, census_csv, tmp_path, capsys):
        model = tmp_path / "model.npz"
        main(
            [
                "fit",
                str(census_csv),
                str(model),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.3",
            ]
        )
        capsys.readouterr()
        bad = tmp_path / "bad.csv"
        lines = census_csv.read_text().splitlines()
        header = lines[0].split(",")
        drop = header.index("TAXINC")
        bad.write_text(
            "\n".join(
                ",".join(c for i, c in enumerate(line.split(",")) if i != drop)
                for line in lines
            )
            + "\n"
        )
        # Schema mismatches are caught at the CLI boundary: a clean
        # diagnostic on stderr and exit code 2, not a traceback.
        code = main(["apply", str(model), str(bad), str(tmp_path / "o.csv")])
        assert code == 2
        assert "missing quasi-identifier" in capsys.readouterr().err


class TestAuditCommand:
    def test_audit_prints_report(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "4",
                "-t",
                "0.2",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "audit",
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "k-anonymity level    : 4" in stdout or "k-anonymity" in stdout

    def test_audit_exit_codes_follow_declared_requirements(
        self, census_csv, tmp_path, capsys
    ):
        """Satellite: audit returns 1 when the release fails the declared
        requirements (matching anonymize's behavior), 0 when it passes."""
        out = tmp_path / "release.csv"
        main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "4",
                "-t",
                "0.2",
            ]
        )
        capsys.readouterr()
        common = [
            "audit",
            str(out),
            "--qi",
            "TAXINC,POTHVAL",
            "--confidential",
            "FEDTAX",
        ]
        assert main(common + ["--require", "k=4,t=0.2"]) == 0
        stdout = capsys.readouterr().out
        assert "PASS" in stdout and "policy satisfied" in stdout

        assert main(common + ["--require", "k=100,t=0.2"]) == 1
        stdout = capsys.readouterr().out
        assert "FAIL" in stdout and "VIOLATED" in stdout

        # Without declared requirements the command stays informational.
        assert main(common) == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
