"""End-to-end CLI tests (anonymize and audit subcommands)."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import load_mcd, read_csv, write_csv
from repro.privacy import is_k_anonymous, is_t_close


@pytest.fixture
def census_csv(tmp_path):
    path = tmp_path / "census.csv"
    write_csv(load_mcd(n=150), path)
    return path


class TestAnonymizeCommand:
    def test_end_to_end(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.2",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "tclose-first" in stdout
        release = read_csv(
            out,
            quasi_identifiers=["TAXINC", "POTHVAL"],
            confidential=["FEDTAX"],
        )
        assert release.n_records == 150
        assert is_k_anonymous(release, 3)
        assert is_t_close(release, 0.2 + 1e-9)

    def test_method_selection(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        code = main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "2",
                "-t",
                "0.25",
                "--method",
                "merge",
            ]
        )
        assert code == 0
        assert "merge" in capsys.readouterr().out

    def test_report_flag(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "3",
                "-t",
                "0.2",
                "--report",
            ]
        )
        stdout = capsys.readouterr().out
        assert "Privacy audit" in stdout
        assert "record-linkage risk" in stdout

    def test_identifier_dropped(self, tmp_path, capsys):
        src = tmp_path / "in.csv"
        data = load_mcd(n=60)
        # Reuse FICA-free census; add a synthetic id column via CSV text.
        write_csv(data, src)
        text = src.read_text().splitlines()
        text[0] = "ID," + text[0]
        for i in range(1, len(text)):
            text[i] = f"{i}," + text[i]
        src.write_text("\n".join(text) + "\n")
        out = tmp_path / "out.csv"
        main(
            [
                "anonymize",
                str(src),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "--identifier",
                "ID",
                "-k",
                "2",
                "-t",
                "0.3",
            ]
        )
        header = out.read_text().splitlines()[0]
        assert "ID" not in header.split(",")

    def test_unknown_method_rejected(self, census_csv, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "anonymize",
                    str(census_csv),
                    str(tmp_path / "o.csv"),
                    "--qi",
                    "TAXINC",
                    "--confidential",
                    "FEDTAX",
                    "-k",
                    "2",
                    "-t",
                    "0.2",
                    "--method",
                    "wizardry",
                ]
            )


class TestAuditCommand:
    def test_audit_prints_report(self, census_csv, tmp_path, capsys):
        out = tmp_path / "release.csv"
        main(
            [
                "anonymize",
                str(census_csv),
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
                "-k",
                "4",
                "-t",
                "0.2",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "audit",
                str(out),
                "--qi",
                "TAXINC,POTHVAL",
                "--confidential",
                "FEDTAX",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "k-anonymity level    : 4" in stdout or "k-anonymity" in stdout

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
