"""Cross-cutting property tests: any valid input -> a verifiable release.

These run each public algorithm over randomly generated mixed-schema
microdata (see ``tests/strategies.py``) and check the *external* contract:
the release passes the independent verifiers, covers every record, and
never perturbs confidential values.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import anonymize
from repro.privacy import is_k_anonymous, t_closeness_level

from ..strategies import microdata

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON_SETTINGS)
@given(data=microdata(), k=st.integers(2, 4), t=st.floats(0.05, 0.5))
def test_merge_contract(data, k, t):
    k = min(k, data.n_records)
    release, result = anonymize(data, k=k, t=t, method="merge")
    assert is_k_anonymous(release, k)
    assert result.satisfies_t
    np.testing.assert_array_equal(
        release.values("secret"), data.values("secret")
    )


@settings(**COMMON_SETTINGS)
@given(data=microdata(), k=st.integers(2, 4), t=st.floats(0.05, 0.5))
def test_kanon_first_contract(data, k, t):
    k = min(k, data.n_records)
    release, result = anonymize(data, k=k, t=t, method="kanon-first")
    assert is_k_anonymous(release, k)
    assert result.satisfies_t
    assert t_closeness_level(release) <= t + 1e-9


@settings(**COMMON_SETTINGS)
@given(
    data=microdata(allow_ties=False),
    k=st.integers(2, 4),
    t=st.floats(0.05, 0.5),
)
def test_tclose_first_contract(data, k, t):
    k = min(k, data.n_records)
    release, result = anonymize(data, k=k, t=t, method="tclose-first")
    k_eff = result.info["effective_k"]
    assert is_k_anonymous(release, min(k, k_eff))
    # Tie-free data: the Proposition 2 guarantee is exact in rank EMD and
    # equals distinct EMD; allow only the k+1-extra-record slack.
    assert result.max_emd <= t + result.info["emd_bound"] + 1e-9


@settings(**COMMON_SETTINGS)
@given(data=microdata(), k=st.integers(2, 3))
def test_release_is_deterministic(data, k):
    k = min(k, data.n_records)
    a, _ = anonymize(data, k=k, t=0.3, method="merge")
    b, _ = anonymize(data, k=k, t=0.3, method="merge")
    assert a.equals(b)
