"""End-to-end integration tests across the whole stack.

Each test exercises a realistic pipeline — load data, anonymize, verify
with the independent auditors, measure utility — rather than any single
module.  These are the tests that would catch wiring mistakes between
subsystems that unit tests cannot see.
"""

import numpy as np
import pytest

from repro import METHODS, anonymize
from repro.data import (
    load_adult,
    load_hcd,
    load_mcd,
    load_patient_discharge,
    load_salary_toy,
)
from repro.metrics import normalized_sse, range_query_error
from repro.privacy import (
    audit,
    equivalence_classes,
    is_k_anonymous,
    is_t_close,
    record_linkage_risk,
    t_closeness_level,
)


class TestFullPipelineCensus:
    @pytest.mark.parametrize("method", sorted(METHODS))
    @pytest.mark.parametrize("loader", [load_mcd, load_hcd])
    def test_release_verifies_on_both_datasets(self, method, loader):
        data = loader(n=240)
        release, result = anonymize(data, k=4, t=0.18, method=method)
        assert is_k_anonymous(release, 4)
        assert is_t_close(release, 0.18)
        # The verifier recomputes classes from released values; they must
        # coincide with the algorithm's clusters.
        classes = equivalence_classes(release)
        assert classes.n_clusters == result.partition.n_clusters

    def test_utility_privacy_tradeoff_monotone_in_t(self):
        """Stricter t costs utility, for every algorithm."""
        data = load_mcd(n=300)
        for method in sorted(METHODS):
            strict_release, _ = anonymize(data, k=2, t=0.03, method=method)
            loose_release, _ = anonymize(data, k=2, t=0.3, method=method)
            assert (
                normalized_sse(data, strict_release)
                >= normalized_sse(data, loose_release) - 1e-9
            ), method

    def test_linkage_risk_falls_with_k(self):
        data = load_mcd(n=300)
        risky, _ = anonymize(data, k=2, t=0.3)
        safe, _ = anonymize(data, k=20, t=0.3)
        assert record_linkage_risk(data, safe) <= record_linkage_risk(
            data, risky
        )


class TestFullPipelinePatientDischarge:
    def test_seven_qi_release(self):
        data = load_patient_discharge(n=600)
        release, result = anonymize(data, k=10, t=0.2)
        assert is_k_anonymous(release, 10)
        assert is_t_close(release, 0.2)
        report = audit(release, data)
        assert report.k_level >= 10
        assert report.expected_reid_rate <= 0.1
        queries = range_query_error(data, release, n_queries=50)
        assert queries.mean_relative_error < 1.0


class TestFullPipelineCategorical:
    def test_adult_nominal_confidential(self):
        adult = load_adult(n=400).drop(["income_class"])
        release, result = anonymize(adult, k=4, t=0.3, method="merge")
        assert is_k_anonymous(release, 4)
        assert t_closeness_level(release) <= 0.3 + 1e-9

    def test_adult_ordinal_confidential_tclose_first(self):
        adult = load_adult(n=400).drop(["occupation"])
        release, result = anonymize(adult, k=4, t=0.3, method="tclose-first")
        assert is_k_anonymous(release, 4)
        assert result.satisfies_t

    def test_categorical_centroids_are_valid_codes(self):
        adult = load_adult(n=300).drop(["income_class"])
        release, _ = anonymize(adult, k=3, t=0.4, method="merge")
        for name in adult.quasi_identifiers:
            spec = adult.spec(name)
            if spec.is_categorical:
                codes = release.values(name)
                assert codes.min() >= 0
                assert codes.max() < spec.n_categories


class TestToyHandVerifiable:
    def test_salary_toy_three_clusters(self):
        """The ICDE'07 running example ends 0.167-close with 3-record classes."""
        toy = load_salary_toy()
        release, result = anonymize(toy, k=3, t=0.25, method="tclose-first")
        assert result.partition.sizes().tolist() == [3, 3, 3]
        # Each cluster draws one salary from {3k,4k,5k}, {6k,7k,8k},
        # {9k,10k,11k} — the Proposition 2 construction.
        for members in result.partition.clusters():
            salaries = np.sort(toy.values("salary")[members])
            assert salaries[0] <= 5000
            assert 6000 <= salaries[1] <= 8000
            assert salaries[2] >= 9000
        assert result.max_emd <= 1 / 6 + 1e-12  # Prop 2 bound for n=9, k=3


class TestReproducibility:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_same_input_same_output(self, method):
        data = load_mcd(n=150)
        first, _ = anonymize(data, k=3, t=0.2, method=method)
        second, _ = anonymize(data, k=3, t=0.2, method=method)
        assert first.equals(second)
