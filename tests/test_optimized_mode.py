"""Guards against ``python -O`` silently stripping library error paths.

``python -O`` removes every ``assert`` statement at compile time, so a
bare assert guarding an invariant in library code becomes a silent
no-op under optimized bytecode — the exact bug class fixed in PR 7
(``centroids.py`` / ``ldiversity.py`` / ``confidential.py`` carried
``assert x is not None`` guards on paths that would then return or
crash nonsensically).  Two layers keep it from returning:

* a static scan that forbids ``assert`` statements anywhere in the
  installed library source (tests are free to use them), and
* an end-to-end smoke run of the anonymize lifecycle in a ``python -O``
  subprocess, proving the library works — and still raises its typed
  errors — without asserts.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent


def test_library_source_has_no_assert_statements():
    offenders: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{node.lineno}")
    assert not offenders, (
        "bare assert statements in library code are stripped by `python -O`; "
        "raise a typed exception instead: " + ", ".join(offenders)
    )


_SMOKE = """
import sys

if not sys.flags.optimize:
    raise SystemExit("smoke must run under -O")

from repro import Anonymizer, KAnonymity, TCloseness, anonymize
from repro.data import load_salary_toy
from repro.privacy import distinct_l_diversity

data = load_salary_toy()
release, result = anonymize(data, k=3, t=0.4)
if not result.satisfies_t:
    raise SystemExit("release misses t under -O")

model = Anonymizer(KAnonymity(3) & TCloseness(0.4)).fit(data)
if not model.audit().satisfied:
    raise SystemExit("audit fails under -O")
if distinct_l_diversity(model.release_) < 1:
    raise SystemExit("l-diversity degenerate under -O")

# Typed validation errors must still fire with asserts stripped.
try:
    distinct_l_diversity(data, "no-such-attribute")
except (KeyError, ValueError):
    pass
else:
    raise SystemExit("missing-attribute error path vanished under -O")
print("optimized-mode smoke ok")
"""


def test_optimized_mode_end_to_end_smoke():
    env = dict(os.environ)
    src = str(SRC_ROOT.parent)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-O", "-c", _SMOKE],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "optimized-mode smoke ok" in proc.stdout
