"""Tests for the merge-partner policy ablation hook in Algorithm 1."""

import numpy as np
import pytest

from repro.core import merge_to_t_closeness
from repro.data import AttributeRole, Microdata, numeric
from repro.microagg import mdav


@pytest.fixture
def data():
    rng = np.random.default_rng(21)
    n = 80
    return Microdata(
        {
            "q1": rng.normal(size=n),
            "q2": rng.normal(size=n),
            "secret": rng.permutation(np.arange(float(n))),
        },
        [
            numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


@pytest.mark.parametrize("policy", ["nearest-qi", "lowest-emd", "random"])
def test_all_policies_reach_t_closeness(data, policy):
    partition = mdav(data.qi_matrix(), 3)
    merged, emds, n_merges = merge_to_t_closeness(
        data, partition, 0.1, partner_policy=policy
    )
    assert emds.max() <= 0.1 + 1e-12
    assert merged.min_size >= 3


def test_lowest_emd_picks_the_emd_optimal_partner(data):
    """One lowest-emd step merges the pair minimizing the merged EMD."""
    from repro.core import ConfidentialModel

    partition = mdav(data.qi_matrix(), 2)
    model = ConfidentialModel(data)
    emds = model.partition_emds(list(partition.clusters()))
    worst = int(np.argmax(emds))
    # Pick t so that exactly one merge is needed.
    t = float(np.sort(emds)[-2])
    merged, _, n_merges = merge_to_t_closeness(
        data, partition, t, partner_policy="lowest-emd"
    )
    if n_merges == 1:
        members = list(partition.clusters())
        best = min(
            model.cluster_emd(np.concatenate([members[worst], members[g]]))
            for g in range(partition.n_clusters)
            if g != worst
        )
        new_emds = model.partition_emds(list(merged.clusters()))
        merged_cluster_emd = min(
            new_emds[g]
            for g, m in enumerate(merged.clusters())
            if len(m) > partition.max_size - 1
            or set(members[worst]) <= set(m.tolist())
        )
        assert merged_cluster_emd == pytest.approx(best)


def test_random_policy_deterministic_given_seed(data):
    partition = mdav(data.qi_matrix(), 2)
    a = merge_to_t_closeness(data, partition, 0.1, partner_policy="random", seed=5)
    b = merge_to_t_closeness(data, partition, 0.1, partner_policy="random", seed=5)
    assert a[0] == b[0]


def test_unknown_policy_rejected(data):
    partition = mdav(data.qi_matrix(), 2)
    with pytest.raises(ValueError, match="partner_policy"):
        merge_to_t_closeness(data, partition, 0.1, partner_policy="psychic")
