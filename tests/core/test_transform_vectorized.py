"""Serving-path regression: backend ``assign`` == the old per-cluster loop.

``Anonymizer.assign`` used to scan the fitted representatives in a Python
loop (one canonical-kernel dispatch per cluster, strict-less update); it
now issues one backend-executed nearest-representative query
(:meth:`repro.backend.ComputeBackend.assign_nearest`).  This suite pins

* bitwise equality of the new query against a re-implementation of the
  retired loop on a 10k-record serving batch (heavy exact ties included,
  where a changed tie rule would flip assignments);
* serial/threaded equality of ``assign`` and ``transform``;
* backend choice-independence across ``save``/``load``: a model fitted
  and saved under one backend must transform identically when loaded
  under any other.
"""

import numpy as np
import pytest

from repro import Anonymizer, KAnonymity, TCloseness
from repro.data import AttributeRole, Microdata, numeric

from ..backends import threaded_for_tests

BATCH_ROWS = 10_000


def reference_assign(model, batch):
    """The retired per-cluster Python loop, verbatim."""
    from repro.distance.records import sq_distances_to

    encoded = model._encoder.encode(batch.matrix(model._qi_names))
    n = encoded.shape[0]
    best_d2 = np.full(n, np.inf)
    assignment = np.zeros(n, dtype=np.int64)
    for g, rep in enumerate(model._encoded_representatives):
        d2 = sq_distances_to(encoded, rep)
        better = d2 < best_d2
        assignment[better] = g
        best_d2[better] = d2[better]
    return assignment


def make_dataset(n, seed, *, grid=False):
    """Income-shaped fit table; ``grid=True`` coarsens QIs so exact
    distance ties between distinct records are plentiful."""
    rng = np.random.default_rng(seed)
    columns, schema = {}, []
    for i in range(3):
        values = 30_000.0 * np.exp(0.5 * rng.standard_normal(n))
        if grid:
            values = np.round(values / 10_000.0) * 10_000.0
        columns[f"qi{i}"] = values
        schema.append(numeric(f"qi{i}", role=AttributeRole.QUASI_IDENTIFIER))
    columns["secret"] = rng.permutation(np.arange(float(n)))
    schema.append(numeric("secret", role=AttributeRole.CONFIDENTIAL))
    return Microdata(columns, schema)


@pytest.fixture(scope="module")
def fitted():
    return Anonymizer(KAnonymity(5) & TCloseness(0.3)).fit(make_dataset(800, 0))


@pytest.fixture(scope="module")
def fitted_grid():
    return Anonymizer(KAnonymity(4) & TCloseness(0.4)).fit(
        make_dataset(600, 1, grid=True)
    )


@pytest.fixture(scope="module")
def batch_10k():
    return make_dataset(BATCH_ROWS, 2)


class TestAssignMatchesRetiredLoop:
    def test_10k_batch_bitwise(self, fitted, batch_10k):
        np.testing.assert_array_equal(
            fitted.assign(batch_10k), reference_assign(fitted, batch_10k)
        )

    def test_tie_heavy_batch_bitwise(self, fitted_grid):
        batch = make_dataset(2_000, 3, grid=True)
        np.testing.assert_array_equal(
            fitted_grid.assign(batch), reference_assign(fitted_grid, batch)
        )

    def test_fit_table_assigns_to_own_clusters(self, fitted_grid):
        """Sanity: the reference loop itself is the behaviour transform
        promises — batch == fit table maps each record into a cluster whose
        representative it is nearest to."""
        data = make_dataset(600, 1, grid=True)
        assignment = fitted_grid.assign(data)
        assert assignment.shape == (600,)
        assert assignment.min() >= 0
        assert assignment.max() < fitted_grid.result_.partition.n_clusters


class TestBackendChoiceIndependence:
    def test_assign_serial_vs_threaded(self, fitted, batch_10k):
        serial = fitted.assign(batch_10k)
        threaded_model = Anonymizer(
            fitted.policy, backend=threaded_for_tests()
        )
        # Share the fitted state without refitting the clustering.
        threaded_model.__dict__.update(
            {k: v for k, v in fitted.__dict__.items() if k != "backend"}
        )
        np.testing.assert_array_equal(serial, threaded_model.assign(batch_10k))

    def test_transform_serial_vs_threaded(self, fitted, batch_10k):
        released_serial = fitted.transform(batch_10k)
        threaded_model = Anonymizer(
            fitted.policy, backend=threaded_for_tests()
        )
        threaded_model.__dict__.update(
            {k: v for k, v in fitted.__dict__.items() if k != "backend"}
        )
        released_threaded = threaded_model.transform(batch_10k)
        for name in released_serial.attribute_names:
            np.testing.assert_array_equal(
                released_serial.values(name), released_threaded.values(name)
            )

    def test_save_load_transform_identical_under_any_backend(
        self, fitted, batch_10k, tmp_path
    ):
        npz, _ = fitted.save(tmp_path / "model.npz")
        loaded_serial = Anonymizer.load(npz, backend="serial")
        loaded_threaded = Anonymizer.load(npz, backend=threaded_for_tests())
        out_fitted = fitted.transform(batch_10k)
        out_serial = loaded_serial.transform(batch_10k)
        out_threaded = loaded_threaded.transform(batch_10k)
        for name in out_fitted.attribute_names:
            np.testing.assert_array_equal(
                out_fitted.values(name), out_serial.values(name)
            )
            np.testing.assert_array_equal(
                out_fitted.values(name), out_threaded.values(name)
            )

    def test_fit_identical_under_backends(self):
        data = make_dataset(300, 7, grid=True)
        serial = Anonymizer(KAnonymity(4) & TCloseness(0.3)).fit(data)
        threaded = Anonymizer(
            KAnonymity(4) & TCloseness(0.3), backend=threaded_for_tests()
        ).fit(data)
        np.testing.assert_array_equal(
            serial.result_.partition.labels, threaded.result_.partition.labels
        )
        np.testing.assert_array_equal(
            serial.result_.cluster_emds, threaded.result_.cluster_emds
        )
        for name in serial.release_.attribute_names:
            np.testing.assert_array_equal(
                serial.release_.values(name), threaded.release_.values(name)
            )
