"""Tests for the high-level anonymize() API and result object."""

import numpy as np
import pytest

from repro import METHODS, TClosenessAnonymizer, TClosenessResult, anonymize
from repro.core import ConfidentialModel
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.microagg import Partition


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=200)


class TestAnonymizeFunction:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_all_methods_produce_t_close_release(self, mcd_small, method):
        release, result = anonymize(mcd_small, k=3, t=0.2, method=method)
        assert result.satisfies_t
        result.partition.validate_min_size(3)
        assert release.n_records == mcd_small.n_records

    def test_release_qis_constant_within_clusters(self, mcd_small):
        release, result = anonymize(mcd_small, k=4, t=0.2)
        for members in result.partition.clusters():
            for name in mcd_small.quasi_identifiers:
                assert len(np.unique(release.values(name)[members])) == 1

    def test_release_confidential_untouched(self, mcd_small):
        release, _ = anonymize(mcd_small, k=4, t=0.2)
        np.testing.assert_array_equal(
            release.values("FEDTAX"), mcd_small.values("FEDTAX")
        )

    def test_identifiers_dropped_from_release(self):
        rng = np.random.default_rng(0)
        data = Microdata(
            {
                "ssn": np.arange(40.0),
                "q": rng.normal(size=40),
                "s": rng.permutation(np.arange(40.0)),
            },
            [
                numeric("ssn", role=AttributeRole.IDENTIFIER),
                numeric("q", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        release, _ = anonymize(data, k=2, t=0.3)
        assert "ssn" not in release.attribute_names

    def test_unknown_method(self, mcd_small):
        with pytest.raises(ValueError, match="unknown method"):
            anonymize(mcd_small, k=2, t=0.2, method="magic")

    def test_method_kwargs_forwarded(self, mcd_small):
        _, result = anonymize(
            mcd_small, k=3, t=0.3, method="kanon-first", merge_fallback=False
        )
        assert result.info["merge_fallback"] is False


class TestAnonymizerClass:
    def test_anonymize_and_result(self, mcd_small):
        anonymizer = TClosenessAnonymizer(k=5, t=0.15)
        release = anonymizer.anonymize(mcd_small)
        assert release.n_records == mcd_small.n_records
        assert anonymizer.result_ is not None
        assert anonymizer.result_.satisfies_t

    def test_unknown_method_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown method"):
            TClosenessAnonymizer(k=2, t=0.1, method="nope")

    def test_result_none_before_run(self):
        assert TClosenessAnonymizer(k=2, t=0.1).result_ is None


class TestResultObject:
    def test_emd_count_must_match_clusters(self):
        with pytest.raises(ValueError, match="EMD values"):
            TClosenessResult(
                algorithm="merge",
                k=2,
                t=0.1,
                partition=Partition([0, 0, 1, 1]),
                cluster_emds=np.array([0.1]),
            )

    def test_properties(self):
        result = TClosenessResult(
            algorithm="merge",
            k=2,
            t=0.2,
            partition=Partition([0, 0, 1, 1, 1]),
            cluster_emds=np.array([0.05, 0.15]),
        )
        assert result.max_emd == pytest.approx(0.15)
        assert result.satisfies_t
        assert result.min_cluster_size == 2
        assert result.mean_cluster_size == 2.5

    def test_summary_flags_violation(self):
        result = TClosenessResult(
            algorithm="merge",
            k=2,
            t=0.1,
            partition=Partition([0, 0, 1, 1]),
            cluster_emds=np.array([0.05, 0.35]),
        )
        assert not result.satisfies_t
        assert "NOT t-close" in result.summary()


class TestCrossAlgorithmShape:
    def test_paper_ordering_alg3_beats_alg1_on_cluster_size(self, mcd_small):
        """Average cluster size: Algorithm 3 <= Algorithm 2 <= Algorithm 1.

        This is the consistent ordering in Tables 1-3 of the paper for
        moderate t; cluster size is the primary driver of information loss.
        """
        t = 0.10
        _, a1 = anonymize(mcd_small, k=3, t=t, method="merge")
        _, a2 = anonymize(mcd_small, k=3, t=t, method="kanon-first")
        _, a3 = anonymize(mcd_small, k=3, t=t, method="tclose-first")
        assert a3.mean_cluster_size <= a2.mean_cluster_size <= a1.mean_cluster_size

    def test_all_results_verifiable_externally(self, mcd_small):
        """Each algorithm's reported EMDs match an independent recompute."""
        model = ConfidentialModel(mcd_small)
        for method in sorted(METHODS):
            _, result = anonymize(mcd_small, k=3, t=0.15, method=method)
            recomputed = model.partition_emds(list(result.partition.clusters()))
            np.testing.assert_allclose(
                result.cluster_emds, recomputed, atol=1e-12, err_msg=method
            )
