"""Tests for Propositions 1-2 and Equations 3-4.

The propositions are tested both against hand values and *executably*:
random clusters must respect the Proposition 1 lower bound, and
one-record-per-bucket clusters must respect the Proposition 2 upper bound,
under the rank-based EMD they are stated for.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    adjust_cluster_size,
    emd_lower_bound,
    emd_upper_bound,
    required_cluster_size,
    tclose_first_cluster_size,
)
from repro.distance import emd_ordered


class TestFormulas:
    def test_lower_bound_formula(self):
        # (n+k)(n-k) / (4 n (n-1) k) with n=12, k=3:
        # 15*9 / (4*12*11*3) = 135/1584
        assert emd_lower_bound(12, 3) == pytest.approx(135 / 1584)

    def test_upper_bound_formula(self):
        # (n-k) / (2 (n-1) k) with n=12, k=3: 9/66
        assert emd_upper_bound(12, 3) == pytest.approx(9 / 66)

    def test_k_equals_n_gives_zero(self):
        assert emd_lower_bound(10, 10) == 0.0
        assert emd_upper_bound(10, 10) == 0.0

    def test_n_one(self):
        assert emd_lower_bound(1, 1) == 0.0
        assert emd_upper_bound(1, 1) == 0.0

    def test_upper_dominates_lower(self):
        for n in (10, 100, 1080):
            for k in (2, 5, 30):
                if k > n:
                    continue
                assert emd_upper_bound(n, k) >= emd_lower_bound(n, k)

    def test_bounds_decrease_with_k(self):
        values = [emd_upper_bound(1000, k) for k in range(2, 50)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="n must be"):
            emd_lower_bound(0, 1)
        with pytest.raises(ValueError, match="k must be"):
            emd_upper_bound(5, 6)
        with pytest.raises(ValueError, match="k must be"):
            emd_lower_bound(5, 0)


class TestRequiredClusterSize:
    def test_paper_table3_k2_row(self):
        """The k=2 row of Table 3: effective sizes 49/10/6/4/3/3/2."""
        expected = {0.01: 49, 0.05: 10, 0.09: 6, 0.13: 4, 0.17: 3, 0.21: 3, 0.25: 2}
        for t, size in expected.items():
            assert tclose_first_cluster_size(1080, t, 2) == size, t

    def test_table3_respects_user_k(self):
        """For t >= 0.05 and k in {5,...,30} Table 3 shows max(k, k(t))."""
        for k in (5, 10, 15, 20, 25, 30):
            assert tclose_first_cluster_size(1080, 0.25, k) == k
        assert tclose_first_cluster_size(1080, 0.01, 30) == 49

    def test_bound_actually_met(self):
        """Eq. 3's k satisfies Proposition 2's bound <= t."""
        for n in (100, 1080, 9999):
            for t in (0.01, 0.05, 0.2):
                k = required_cluster_size(n, t)
                assert emd_upper_bound(n, k) <= t + 1e-12

    def test_minimality(self):
        """k-1 would violate the bound (when k > 1)."""
        for n in (100, 1080):
            for t in (0.01, 0.05, 0.2):
                k = required_cluster_size(n, t)
                if k > 1:
                    assert emd_upper_bound(n, k - 1) > t

    def test_t_zero_forces_single_cluster(self):
        assert required_cluster_size(500, 0.0) == 500

    def test_large_t_no_constraint(self):
        assert required_cluster_size(500, 1.0, k=3) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="t must be"):
            required_cluster_size(10, -0.1)

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(2, 5000), t=st.floats(0.001, 0.5), k=st.integers(1, 50))
    def test_result_in_range_property(self, n, t, k):
        k = min(k, n)
        out = required_cluster_size(n, t, k)
        assert k <= out <= n
        assert emd_upper_bound(n, out) <= t + 1e-9


class TestAdjustClusterSize:
    def test_divisible_unchanged(self):
        assert adjust_cluster_size(1080, 10) == 10

    def test_paper_t001_case(self):
        """n=1080, Eq.3 gives 48; 1080 mod 48 = 24 > floor-share -> k=49."""
        assert required_cluster_size(1080, 0.01) == 48
        assert adjust_cluster_size(1080, 48) == 49

    def test_small_remainder_kept(self):
        # n=1080, k=49: r=2 <= floor(1080/49)=22 clusters -> unchanged.
        assert adjust_cluster_size(1080, 49) == 49

    def test_oversized_remainder_bumps(self):
        # n=10, k=4: floor=2 clusters, r=2 -> bump by 1.
        assert adjust_cluster_size(10, 4) == 5

    def test_k_equals_n(self):
        assert adjust_cluster_size(7, 7) == 7

    @settings(max_examples=100, deadline=None)
    @given(n=st.integers(1, 10_000), k=st.integers(1, 200))
    def test_remainder_fits_property(self, n, k):
        """After adjustment, extras fit one-per-cluster: r <= floor(n/k)."""
        k = min(k, n)
        out = adjust_cluster_size(n, k)
        assert k <= out <= n
        assert n % out <= n // out


class TestPropositionsExecutable:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(4, 200),
        k=st.integers(2, 20),
        seed=st.integers(0, 10_000),
    )
    def test_proposition1_lower_bound_holds(self, n, k, seed):
        """No k-record cluster beats the Proposition 1 EMD lower bound."""
        k = min(k, n)
        rng = np.random.default_rng(seed)
        dataset = np.arange(1.0, n + 1.0)  # n distinct ranked values
        cluster = rng.choice(dataset, size=k, replace=False)
        emd = emd_ordered(cluster, dataset, mode="rank")
        assert emd >= emd_lower_bound(n, k) - 1e-9

    def test_proposition1_tight_when_k_divides_n(self):
        """The median-of-each-block cluster attains the bound exactly."""
        n, k = 20, 4  # n/k = 5 (odd), medians well defined
        dataset = np.arange(1.0, n + 1.0)
        block = n // k
        medians = [dataset[i * block + (block - 1) // 2] for i in range(k)]
        emd = emd_ordered(medians, dataset, mode="rank")
        assert emd == pytest.approx(emd_lower_bound(n, k), abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        blocks=st.integers(2, 12),
        per_block=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    def test_proposition2_upper_bound_holds(self, blocks, per_block, seed):
        """One record per bucket keeps EMD within Proposition 2's bound."""
        n, k = blocks * per_block, blocks
        dataset = np.arange(1.0, n + 1.0)
        rng = np.random.default_rng(seed)
        cluster = [
            dataset[i * per_block + rng.integers(per_block)] for i in range(k)
        ]
        emd = emd_ordered(cluster, dataset, mode="rank")
        assert emd <= emd_upper_bound(n, k) + 1e-9

    def test_proposition2_tight_at_block_edges(self):
        """Picking every bucket's minimum attains the upper bound."""
        n, k = 24, 4
        dataset = np.arange(1.0, n + 1.0)
        per_block = n // k
        mins = [dataset[i * per_block] for i in range(k)]
        emd = emd_ordered(mins, dataset, mode="rank")
        assert emd == pytest.approx(emd_upper_bound(n, k), abs=1e-12)
