"""Tests for the ConfidentialModel / ClusterTrackerSet abstraction."""

import numpy as np
import pytest

from repro.core import ConfidentialModel
from repro.data import AttributeRole, Microdata, nominal, numeric, ordinal
from repro.distance import OrderedEMDReference, emd_nominal


@pytest.fixture
def numeric_data():
    rng = np.random.default_rng(11)
    return Microdata(
        {
            "qi": rng.normal(size=40),
            "secret": rng.permutation(np.arange(40.0)),
        },
        [
            numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


@pytest.fixture
def mixed_conf_data():
    rng = np.random.default_rng(12)
    return Microdata(
        {
            "qi": rng.normal(size=30),
            "salary": rng.permutation(np.arange(30.0)),
            "disease": rng.integers(0, 4, size=30),
        },
        [
            numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("salary", role=AttributeRole.CONFIDENTIAL),
            nominal("disease", ("a", "b", "c", "d"), role=AttributeRole.CONFIDENTIAL),
        ],
    )


class TestConfidentialModel:
    def test_requires_confidential_attribute(self):
        md = Microdata({"x": [1.0, 2.0]}, [numeric("x")])
        with pytest.raises(ValueError, match="no confidential"):
            ConfidentialModel(md)

    def test_cluster_emd_matches_reference(self, numeric_data):
        model = ConfidentialModel(numeric_data)
        ref = OrderedEMDReference(numeric_data.values("secret"))
        members = np.array([0, 5, 9])
        expected = ref.emd(numeric_data.values("secret")[members])
        assert model.cluster_emd(members) == pytest.approx(expected)

    def test_cluster_emd_max_over_attributes(self, mixed_conf_data):
        model = ConfidentialModel(mixed_conf_data)
        members = np.array([0, 1, 2])
        salary_ref = OrderedEMDReference(mixed_conf_data.values("salary"))
        salary_emd = salary_ref.emd(mixed_conf_data.values("salary")[members])
        disease_emd = emd_nominal(
            mixed_conf_data.values("disease")[members],
            mixed_conf_data.values("disease"),
            4,
        )
        assert model.cluster_emd(members) == pytest.approx(
            max(salary_emd, disease_emd)
        )

    def test_empty_cluster_rejected(self, numeric_data):
        model = ConfidentialModel(numeric_data)
        with pytest.raises(ValueError, match="non-empty"):
            model.cluster_emd(np.array([], dtype=int))

    def test_partition_emds(self, numeric_data):
        model = ConfidentialModel(numeric_data)
        clusters = [np.array([0, 1]), np.array([2, 3, 4])]
        emds = model.partition_emds(clusters)
        assert emds.shape == (2,)
        assert emds[0] == pytest.approx(model.cluster_emd(clusters[0]))

    def test_rank_mode_evaluation(self, numeric_data):
        model = ConfidentialModel(numeric_data, emd_mode="rank")
        assert not model.supports_trackers
        # Tie-free data: rank EMD equals distinct EMD.
        distinct = ConfidentialModel(numeric_data)
        members = np.array([3, 17, 29])
        assert model.cluster_emd(members) == pytest.approx(
            distinct.cluster_emd(members)
        )

    def test_rank_mode_rejects_trackers(self, numeric_data):
        model = ConfidentialModel(numeric_data, emd_mode="rank")
        with pytest.raises(ValueError, match="distinct"):
            model.make_tracker(np.array([0, 1]))

    def test_ordinal_confidential_supported(self):
        md = Microdata(
            {
                "qi": np.arange(6.0),
                "level": np.array([0, 0, 1, 1, 2, 2]),
            },
            [
                numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
                ordinal("level", ("lo", "mid", "hi"), role=AttributeRole.CONFIDENTIAL),
            ],
        )
        model = ConfidentialModel(md)
        # Cluster {lo, mid, hi} mirrors the table distribution exactly.
        assert model.cluster_emd(np.array([0, 2, 4])) == pytest.approx(0.0)
        # Cluster of only "lo" is maximally skewed.
        assert model.cluster_emd(np.array([0, 1])) > 0.3


class TestClusterTrackerSet:
    def test_tracker_emd_matches_model(self, mixed_conf_data):
        model = ConfidentialModel(mixed_conf_data)
        members = np.array([0, 7, 14])
        tracker = model.make_tracker(members)
        assert tracker.emd == pytest.approx(model.cluster_emd(members))

    def test_swap_emds_match_full_recompute(self, mixed_conf_data):
        model = ConfidentialModel(mixed_conf_data)
        members = np.array([0, 7, 14, 21])
        tracker = model.make_tracker(members)
        candidate = 3
        scores = tracker.swap_emds(members, candidate)
        for j in range(len(members)):
            swapped = members.copy()
            swapped[j] = candidate
            assert scores[j] == pytest.approx(model.cluster_emd(swapped))

    def test_apply_swap_consistency(self, mixed_conf_data):
        model = ConfidentialModel(mixed_conf_data)
        members = np.array([2, 9, 16])
        tracker = model.make_tracker(members)
        tracker.apply_swap(9, 25)
        members[1] = 25
        assert tracker.emd == pytest.approx(model.cluster_emd(members))

    def test_empty_cluster_rejected(self, numeric_data):
        model = ConfidentialModel(numeric_data)
        with pytest.raises(ValueError, match="non-empty"):
            model.make_tracker(np.array([], dtype=int))

    def test_random_walk_consistency(self, mixed_conf_data):
        rng = np.random.default_rng(13)
        model = ConfidentialModel(mixed_conf_data)
        members = np.array([0, 5, 10, 15])
        tracker = model.make_tracker(members)
        for _ in range(25):
            j = int(rng.integers(len(members)))
            candidate = int(rng.integers(mixed_conf_data.n_records))
            tracker.apply_swap(int(members[j]), candidate)
            members[j] = candidate
            assert tracker.emd == pytest.approx(model.cluster_emd(members))
