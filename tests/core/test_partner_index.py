"""Differential suite pinning ``_PartnerIndex`` to the flat partner scan.

The block-pruned index (:class:`repro.core.merge._PartnerIndex`) promises
*bit-for-bit* the partner choices of the reference linear scan
(:func:`repro.core.merge._nearest_partner`) — same kernel floats, same
near-tie band expression, same dense re-adjudication.  These tests replay
full merge cascades through both paths side by side, including the
adversarial geometries where "almost equal" implementations diverge:
exact distance ties, duplicate centroids, heavy-tailed spreads, d = 1,
and index rebuilds mid-cascade.
"""

import numpy as np
import pytest

import repro.core.merge as merge_mod
from repro.core.merge import _nearest_partner, _PartnerIndex, microaggregation_merge
from repro.data import AttributeRole, Microdata, numeric
from repro.microagg.engine import ClusteringEngine


def _make_engine(X):
    return ClusteringEngine(np.ascontiguousarray(X, dtype=np.float64))


def _merge_cascade(X, n_merges, seed):
    """Replay ``n_merges`` commits; every query runs both paths and must agree.

    Mirrors the merge loop's commit sequence exactly: query, replace the
    survivor's centroid with the size-weighted mean, kill the absorbed
    cluster, notify the index.
    """
    rng = np.random.default_rng(seed)
    eng = _make_engine(X)
    alive = [True] * len(X)
    sizes = [1] * len(X)
    index = _PartnerIndex(eng, alive)
    live = [g for g in range(len(X)) if alive[g]]
    for _ in range(n_merges):
        worst = int(rng.choice(live))
        flat = _nearest_partner(eng, worst)
        fast = index.nearest(worst)
        assert fast == flat
        sw, sb = sizes[worst], sizes[fast]
        eng.replace_row(worst, (sw * eng.row(worst) + sb * eng.row(fast)) / (sw + sb))
        eng.kill_one(fast)
        index.on_merge(worst, fast)
        sizes[worst] = sw + sb
        alive[fast] = False
        live.remove(fast)
    return eng, alive, index


class TestDifferentialCascades:
    def test_heavy_tailed_cloud(self):
        rng = np.random.default_rng(7)
        X = 30_000.0 * np.exp(0.6 * rng.standard_normal((500, 4)))
        X = (X - X.mean(axis=0)) / X.std(axis=0)
        _merge_cascade(X, n_merges=300, seed=11)

    def test_rebuild_mid_cascade(self):
        # n = 480 rebuilds after max(64, 120) commits; 400 merges force
        # several rebuilds, each from a shrunken live set.
        rng = np.random.default_rng(3)
        X = rng.standard_normal((480, 3))
        eng, alive, index = _merge_cascade(X, n_merges=400, seed=5)
        assert sum(alive) == 80

    def test_one_dimensional_centroids(self):
        rng = np.random.default_rng(9)
        X = np.sort(rng.standard_normal((300, 1)), axis=0)
        _merge_cascade(X, n_merges=200, seed=13)

    def test_all_duplicate_centroids(self):
        # Every distance is exactly 0.0: the whole table sits inside the
        # near-tie band and the dense re-adjudication must pick the lowest
        # cluster id — on both paths, at every step.
        X = np.ones((150, 3)) * 2.5
        _merge_cascade(X, n_merges=120, seed=1)

    def test_duplicate_centroid_pairs(self):
        # Tight co-located pairs: the partner is always an exact-tie
        # decision between at least two candidates at distance ~0.
        rng = np.random.default_rng(21)
        half = rng.standard_normal((120, 2)) * 10.0
        X = np.repeat(half, 2, axis=0)
        _merge_cascade(X, n_merges=150, seed=2)

    def test_lattice_ties(self):
        # Integer grid: every point has 2–4 axis neighbours at identical
        # distance 1.0, so near-tie adjudication fires on most queries.
        g = np.arange(18, dtype=np.float64)
        X = np.stack(np.meshgrid(g, g), axis=-1).reshape(-1, 2)
        _merge_cascade(X, n_merges=200, seed=4)


class TestIndexBookkeeping:
    def test_dead_cluster_never_returned(self):
        rng = np.random.default_rng(17)
        X = rng.standard_normal((200, 2))
        eng = _make_engine(X)
        alive = [True] * 200
        index = _PartnerIndex(eng, alive)
        # Kill the two nearest neighbours of cluster 0 and re-query: the
        # masked columns must yield +inf, never a dead partner.
        for _ in range(2):
            partner = index.nearest(0)
            assert alive[partner]
            eng.kill_one(partner)
            index.on_merge(0, partner)  # no survivor move: row 0 unchanged
            alive[partner] = False
        assert alive[index.nearest(0)]

    def test_survivor_radius_grows_with_move(self):
        # Move a centroid far outside its block's original radius; the
        # grown covering bound must keep it findable as a partner.
        X = np.asarray(
            [[float(i), 0.0] for i in range(100)]
        )
        eng = _make_engine(X)
        alive = [True] * 100
        index = _PartnerIndex(eng, alive)
        index.nearest(0)  # force build with original geometry
        eng.replace_row(99, np.array([0.0, 0.5]))  # jump across the line
        eng.kill_one(98)
        alive[98] = False
        index.on_merge(99, 98)  # survivor 99 moved, absorbed 98
        assert index.nearest(0) == _nearest_partner(eng, 0)


def _merge_dataset(n, seed):
    rng = np.random.default_rng(seed)
    cols = {
        f"q{i}": 30_000.0 * np.exp(0.6 * rng.standard_normal(n)) for i in range(3)
    }
    cols["secret"] = rng.permutation(np.arange(float(n)))
    schema = [
        numeric(f"q{i}", role=AttributeRole.QUASI_IDENTIFIER) for i in range(3)
    ] + [numeric("secret", role=AttributeRole.CONFIDENTIAL)]
    return Microdata(cols, schema)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("t", [0.12, 0.05])
    def test_forced_index_matches_forced_flat(self, monkeypatch, t):
        data = _merge_dataset(900, seed=31)
        monkeypatch.setattr(merge_mod, "_INDEX_MIN_CLUSTERS", 10**9)
        ref = microaggregation_merge(data, 3, t)
        monkeypatch.setattr(merge_mod, "_INDEX_MIN_CLUSTERS", 8)
        fast = microaggregation_merge(data, 3, t)
        assert np.array_equal(ref.partition.labels, fast.partition.labels)
        np.testing.assert_array_equal(ref.cluster_emds, fast.cluster_emds)
        assert ref.info["n_merges"] == fast.info["n_merges"]

    def test_default_threshold_skips_index_below_crossover(self, monkeypatch):
        # Below _INDEX_MIN_CLUSTERS the index must never be consulted —
        # the flat scan is the measured-faster path there.
        calls = []
        original = _PartnerIndex.nearest

        def spying(self, worst):
            calls.append(worst)
            return original(self, worst)

        monkeypatch.setattr(_PartnerIndex, "nearest", spying)
        data = _merge_dataset(400, seed=8)
        microaggregation_merge(data, 3, 0.1)
        assert calls == []
