"""Tests for the fit/transform lifecycle, model serialization and repair."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Anonymizer,
    DistinctLDiversity,
    KAnonymity,
    PSensitivity,
    TCloseness,
    anonymize,
)
from repro.core.base import TClosenessResult
from repro.core.model import NotFittedError, RunReport
from repro.core.policy import PrivacyPolicy
from repro.core.repair import (
    PolicyInfeasibleError,
    cluster_distinct_counts,
    enforce_policy,
)
from repro.data import AttributeRole, Microdata, load_mcd, load_salary_toy, numeric
from repro.microagg import Partition
from repro.privacy import is_k_anonymous, is_t_close


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=200)


@pytest.fixture(scope="module")
def fitted(mcd_small):
    policy = KAnonymity(4) & TCloseness(0.2) & DistinctLDiversity(2)
    return Anonymizer(policy).fit(mcd_small)


class TestFit:
    def test_fit_returns_self_and_sets_state(self, mcd_small, fitted):
        assert fitted.is_fitted
        assert fitted.release_.n_records == mcd_small.n_records
        assert fitted.result_.partition.min_size >= 4
        assert fitted.result_.satisfies_t

    def test_report_structure(self, fitted):
        report = fitted.report_
        assert isinstance(report, RunReport)
        assert report.algorithm == "tclose-first"
        assert report.policy == "k=4,t=0.2,l=2"
        assert report.satisfied
        assert set(report.timings) == {"cluster", "repair", "aggregate", "verify"}
        assert all(seconds >= 0.0 for seconds in report.timings.values())
        assert report.achieved["k"] >= 4
        assert report.achieved["t"] <= 0.2 + 1e-12
        assert report.achieved["l"] >= 2
        # Algorithm-specific counters survive under details.
        assert "effective_k" in report.details

    def test_report_dict_round_trip(self, fitted):
        report = fitted.report_
        assert RunReport.from_dict(report.to_dict()) == report

    def test_policy_accepts_spec_string(self, mcd_small):
        model = Anonymizer("k=3,t=0.25", method="merge").fit(mcd_small)
        assert model.result_.algorithm == "merge"
        assert model.result_.partition.min_size >= 3

    def test_unknown_method_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown method"):
            Anonymizer("k=2,t=0.1", method="wizardry")

    def test_unfitted_operations_raise(self, mcd_small):
        model = Anonymizer("k=2,t=0.3")
        with pytest.raises(NotFittedError):
            model.transform(mcd_small)
        with pytest.raises(NotFittedError):
            model.save("/tmp/never-written.npz")
        with pytest.raises(NotFittedError):
            model.audit()

    def test_fit_transform_matches_release(self, mcd_small):
        model = Anonymizer("k=3,t=0.25")
        release = model.fit_transform(mcd_small)
        assert release is model.release_


class TestShimEquivalence:
    """anonymize() must be a behavior-preserving shim over the lifecycle."""

    def test_release_and_result_match_lifecycle(self, mcd_small):
        release_a, result_a = anonymize(mcd_small, 4, 0.2, method="merge")
        model = Anonymizer(KAnonymity(4) & TCloseness(0.2), method="merge")
        model.fit(mcd_small)
        assert release_a.equals(model.release_)
        assert result_a.partition == model.result_.partition
        np.testing.assert_array_equal(
            result_a.cluster_emds, model.result_.cluster_emds
        )
        assert result_a.info == model.result_.info

    def test_merge_fallback_false_keeps_raw_partition(self, mcd_small):
        """The explicit opt-out must bypass the repair phase entirely."""
        _, result = anonymize(
            mcd_small, 3, 0.01, method="kanon-first", merge_fallback=False
        )
        assert result.info["merge_fallback"] is False
        assert "repair_merges" not in result.info


class TestTransform:
    def test_transform_maps_to_fitted_representatives(self, mcd_small, fitted):
        batch = mcd_small.subset(np.arange(40))
        served = fitted.transform(batch)
        assert served.n_records == 40
        # Every served quasi-identifier row is one of the fitted
        # representatives (categorical codes included).
        reps = {tuple(row) for row in fitted._representatives}
        qi = served.matrix(fitted._qi_names)
        for row in qi:
            assert tuple(row) in reps
        # Confidential values pass through untouched.
        for name in mcd_small.confidential:
            np.testing.assert_array_equal(
                served.values(name), batch.values(name)
            )

    def test_transform_drops_identifiers(self, mcd_small):
        rng = np.random.default_rng(3)
        data = Microdata(
            {
                "ssn": np.arange(60.0),
                "q1": rng.normal(size=60),
                "q2": rng.normal(size=60),
                "s": rng.permutation(np.arange(60.0)),
            },
            [
                numeric("ssn", role=AttributeRole.IDENTIFIER),
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        model = Anonymizer("k=3,t=0.3").fit(data)
        served = model.transform(data.subset(np.arange(10)))
        assert "ssn" not in served.attribute_names

    def test_transform_rejects_mismatched_schema(self, fitted):
        rng = np.random.default_rng(0)
        stranger = Microdata(
            {"x": rng.normal(size=10)},
            [numeric("x", role=AttributeRole.QUASI_IDENTIFIER)],
        )
        with pytest.raises(ValueError, match="missing quasi-identifier"):
            fitted.transform(stranger)

    def test_assign_is_nearest_in_fit_geometry(self, mcd_small, fitted):
        batch = mcd_small.subset(np.arange(25))
        assignment = fitted.assign(batch)
        encoded = fitted._encoder.encode(batch.matrix(fitted._qi_names))
        reps = fitted._encoded_representatives
        for i, g in enumerate(assignment):
            d2 = ((reps - encoded[i]) ** 2).sum(axis=1)
            assert d2[g] == pytest.approx(d2.min())


class TestSaveLoad:
    def test_round_trip_preserves_transform_bit_for_bit(
        self, mcd_small, fitted, tmp_path
    ):
        npz_path, sidecar = fitted.save(tmp_path / "model.npz")
        assert npz_path.exists() and sidecar.exists()
        loaded = Anonymizer.load(npz_path)
        batch = mcd_small.subset(np.arange(80))
        a, b = fitted.transform(batch), loaded.transform(batch)
        assert a.schema == b.schema
        for name in a.attribute_names:
            np.testing.assert_array_equal(a.values(name), b.values(name))

    def test_round_trip_preserves_result_and_report(self, fitted, tmp_path):
        loaded = Anonymizer.load(fitted.save(tmp_path / "m")[0])
        assert loaded.policy == fitted.policy
        assert loaded.method == fitted.method
        assert loaded.result_.partition == fitted.result_.partition
        np.testing.assert_array_equal(
            loaded.result_.cluster_emds, fitted.result_.cluster_emds
        )
        assert loaded.report_ == fitted.report_

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(rows=st.lists(st.integers(0, 199), min_size=1, max_size=40))
    def test_round_trip_transform_property(self, mcd_small, fitted, tmp_path, rows):
        """Satellite property: save -> load -> transform is bit-for-bit
        identical to the in-memory model, for arbitrary serving batches
        (duplicates and any row order included)."""
        loaded = Anonymizer.load(fitted.save(tmp_path / "prop")[0])
        batch = mcd_small.subset(np.asarray(rows))
        a, b = fitted.transform(batch), loaded.transform(batch)
        for name in a.attribute_names:
            np.testing.assert_array_equal(a.values(name), b.values(name))

    def test_version_guard(self, fitted, tmp_path):
        from repro.core.model import MODEL_FORMAT_VERSION
        from repro.runtime import ArtifactVersionError

        npz_path, sidecar = fitted.save(tmp_path / "model.npz")
        payload = sidecar.read_text().replace(
            f'"format_version": {MODEL_FORMAT_VERSION}', '"format_version": 99'
        )
        sidecar.write_text(payload)
        with pytest.raises(ArtifactVersionError, match="format version"):
            Anonymizer.load(npz_path)


class TestRepair:
    def test_distinct_counts(self):
        data = load_salary_toy()
        partition = Partition([0, 0, 0, 1, 1, 1, 2, 2, 2])
        counts = cluster_distinct_counts(data, partition)
        # salary is tie-free (3 distinct per cluster); disease has
        # duplicates within clusters.
        assert counts.shape == (3,)
        assert (counts >= 1).all() and (counts <= 3).all()

    def test_noop_returns_same_object(self, mcd_small):
        _, result = anonymize(mcd_small, 3, 0.2)
        repaired = enforce_policy(
            mcd_small, result, KAnonymity(3) & TCloseness(0.2)
        )
        assert repaired is result

    def test_repairs_t_violation_by_merging(self, mcd_small):
        from repro.core.tclose_first import tcloseness_first

        raw = tcloseness_first(mcd_small, 3, 0.25)
        # Fabricate a violating result: split the table into halves by
        # confidential rank — maximally t-distant clusters.
        order = np.argsort(mcd_small.values(mcd_small.confidential[0]))
        labels = np.zeros(mcd_small.n_records, dtype=np.int64)
        labels[order[mcd_small.n_records // 2 :]] = 1
        bad = TClosenessResult(
            algorithm="tclose-first",
            k=3,
            t=0.05,
            partition=Partition(labels),
            cluster_emds=np.array([0.5, 0.5]),
            info=dict(raw.info),
        )
        repaired = enforce_policy(
            mcd_small, bad, KAnonymity(3) & TCloseness(0.05)
        )
        assert repaired is not bad
        assert repaired.info["repair_merges"] >= 1
        assert is_t_close(mcd_small, 0.05, classes=repaired.partition)

    def test_repairs_diversity_violation(self):
        # Two spatial clusters whose confidential values are constant
        # within one of them: distinct count 1 < l=2 forces a merge.
        qi = np.array([0.0, 0.1, 0.2, 10.0, 10.1, 10.2])
        conf = np.array([5.0, 5.0, 5.0, 1.0, 2.0, 3.0])
        data = Microdata(
            {"q": qi, "s": conf},
            [
                numeric("q", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        result = TClosenessResult(
            algorithm="merge",
            k=3,
            t=1.0,
            partition=Partition([0, 0, 0, 1, 1, 1]),
            cluster_emds=np.array([0.4, 0.4]),
            info={"emd_mode": "distinct"},
        )
        policy = KAnonymity(3) & TCloseness(1.0) & DistinctLDiversity(2)
        repaired = enforce_policy(data, result, policy)
        assert repaired.info["diversity_merges"] == 1
        assert cluster_distinct_counts(data, repaired.partition).min() >= 2

    def test_infeasible_policy_raises(self):
        data = Microdata(
            {
                "q": np.arange(6.0),
                "s": np.array([1.0, 1.0, 1.0, 2.0, 2.0, 2.0]),
            },
            [
                numeric("q", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        with pytest.raises(PolicyInfeasibleError, match="only 2"):
            Anonymizer("k=2,t=1.0,l=5").fit(data)

    def test_audit_follows_fitted_emd_mode(self):
        """A policy enforced under rank-mode EMDs must be audited under
        rank-mode EMDs, not the distinct-mode default (on tied data the
        two legitimately disagree)."""
        from repro.privacy.tcloseness import t_closeness_level

        rng = np.random.default_rng(9)
        data = Microdata(
            {
                "q1": rng.normal(size=80),
                "q2": rng.normal(size=80),
                "s": rng.integers(0, 4, size=80).astype(float),  # heavy ties
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        model = Anonymizer("k=3,t=0.2", method="tclose-first", emd_mode="rank")
        model.fit(data)
        verdict = model.audit(posture=False)
        assert verdict.report is None  # posture=False skips the full report
        (k_check, t_check) = verdict.checks
        assert t_check.achieved == pytest.approx(
            t_closeness_level(model.release_, emd_mode="rank")
        )

    def test_fit_with_diversity_policy_passes_audit(self, mcd_small):
        policy = KAnonymity(3) & TCloseness(0.25) & PSensitivity(3)
        model = Anonymizer(policy).fit(mcd_small)
        assert model.report_.satisfied
        verdict = model.audit(mcd_small)
        assert verdict.satisfied
        assert is_k_anonymous(model.release_, 3)

    def test_policy_without_t_runs_plain_microaggregation(self, mcd_small):
        model = Anonymizer(PrivacyPolicy(KAnonymity(5)), method="merge")
        model.fit(mcd_small)
        assert model.result_.partition.min_size >= 5
        assert model.report_.achieved == {"k": 5.0}
