"""Degenerate-input robustness for the three algorithms.

Boundary settings a downstream user will eventually feed the library:
k = 1 (no anonymity constraint), k = n (one cluster), duplicate records,
constant quasi-identifiers, constant confidential values, and two-record
tables.  Every case must terminate with a valid, verifiable partition.
"""

import numpy as np
import pytest

from repro import METHODS, anonymize
from repro.data import AttributeRole, Microdata, numeric


def dataset(qi_values, secret_values):
    """Single-QI microdata from two plain lists."""
    return Microdata(
        {
            "qi": np.asarray(qi_values, dtype=float),
            "secret": np.asarray(secret_values, dtype=float),
        },
        [
            numeric("qi", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


@pytest.fixture
def plain():
    rng = np.random.default_rng(0)
    return dataset(rng.normal(size=24), rng.permutation(np.arange(24.0)))


@pytest.mark.parametrize("method", sorted(METHODS))
class TestBoundaryParameters:
    def test_k_equals_n_single_cluster(self, plain, method):
        release, result = anonymize(plain, k=24, t=0.5, method=method)
        assert result.partition.n_clusters == 1
        assert result.max_emd == pytest.approx(0.0, abs=1e-12)

    def test_k_one_loose_t(self, plain, method):
        release, result = anonymize(plain, k=1, t=1.0, method=method)
        assert result.satisfies_t
        assert result.partition.min_size >= 1

    def test_two_records(self, method):
        data = dataset([0.0, 1.0], [5.0, 9.0])
        release, result = anonymize(data, k=2, t=1.0, method=method)
        assert result.partition.n_clusters == 1

    def test_duplicate_records(self, method):
        data = dataset([1.0] * 6 + [2.0] * 6, [3.0] * 6 + [7.0] * 6)
        release, result = anonymize(data, k=3, t=0.6, method=method)
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_constant_quasi_identifier(self, method):
        rng = np.random.default_rng(1)
        data = dataset(np.full(12, 5.0), rng.permutation(np.arange(12.0)))
        release, result = anonymize(data, k=3, t=0.5, method=method)
        result.partition.validate_min_size(3)
        # A constant QI releases as itself.
        np.testing.assert_array_equal(release.values("qi"), np.full(12, 5.0))

    def test_constant_confidential(self, method):
        """One confidential value: every cluster is trivially 0-close."""
        rng = np.random.default_rng(2)
        data = dataset(rng.normal(size=12), np.full(12, 3.0))
        release, result = anonymize(data, k=3, t=0.0, method=method)
        assert result.max_emd == pytest.approx(0.0, abs=1e-12)
        # t = 0 is satisfiable here without collapsing to one cluster.
        if method != "tclose-first":  # Eq. 3 with t = 0 still forces k = n
            assert result.satisfies_t

    def test_empty_dataset_rejected(self, method):
        empty = dataset([], [])
        with pytest.raises(ValueError, match="empty|at least|k must be"):
            anonymize(empty, k=1, t=0.5, method=method)


class TestTinyNAlgorithm3Specifics:
    def test_n_equals_3_k_2(self):
        data = dataset([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        _, result = anonymize(data, k=2, t=1.0, method="tclose-first")
        # 3 = 1*2 + 1 extra: one cluster of 3 (k_eff adjusted or extra).
        assert result.partition.min_size >= 2
        assert result.partition.sizes().sum() == 3

    def test_t_zero_single_cluster(self):
        data = dataset(np.arange(8.0), np.arange(8.0))
        _, result = anonymize(data, k=2, t=0.0, method="tclose-first")
        assert result.partition.n_clusters == 1
