"""Tests for requirement objects, policy composition and round-trips."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    DistinctLDiversity,
    KAnonymity,
    PolicyError,
    PrivacyPolicy,
    PSensitivity,
    TCloseness,
    as_policy,
)

ALL_REQUIREMENTS = [
    KAnonymity(5),
    TCloseness(0.15),
    DistinctLDiversity(3),
    PSensitivity(2),
]

#: Every non-empty combination of requirement types (15 of them).
ALL_COMBINATIONS = [
    combo
    for r in range(1, len(ALL_REQUIREMENTS) + 1)
    for combo in itertools.combinations(ALL_REQUIREMENTS, r)
]


class TestRequirements:
    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            KAnonymity(0)
        with pytest.raises(PolicyError):
            KAnonymity(2.5)
        with pytest.raises(PolicyError):
            TCloseness(-0.1)
        with pytest.raises(PolicyError):
            TCloseness(float("nan"))
        with pytest.raises(PolicyError):
            DistinctLDiversity(0)
        with pytest.raises(PolicyError):
            PSensitivity(-1)

    def test_tcloseness_accepts_integer_levels(self):
        assert TCloseness(1).t == 1.0

    def test_satisfied_by(self):
        assert KAnonymity(5).satisfied_by(5)
        assert not KAnonymity(5).satisfied_by(4)
        assert TCloseness(0.15).satisfied_by(0.15)
        # The shared tolerance absorbs float round-off at the threshold.
        assert TCloseness(0.15).satisfied_by(0.15 + 1e-13)
        assert not TCloseness(0.15).satisfied_by(0.16)
        assert DistinctLDiversity(3).satisfied_by(3)
        assert not PSensitivity(2).satisfied_by(1)

    def test_spec_tokens(self):
        assert KAnonymity(5).spec() == "k=5"
        assert TCloseness(0.15).spec() == "t=0.15"
        assert DistinctLDiversity(3).spec() == "l=3"
        assert PSensitivity(2).spec() == "p=2"


class TestComposition:
    def test_and_builds_policy(self):
        policy = KAnonymity(5) & TCloseness(0.15)
        assert isinstance(policy, PrivacyPolicy)
        assert policy.k == 5
        assert policy.t == 0.15

    def test_canonical_order_is_construction_independent(self):
        a = TCloseness(0.1) & KAnonymity(3) & DistinctLDiversity(2)
        b = DistinctLDiversity(2) & KAnonymity(3) & TCloseness(0.1)
        assert a == b
        assert hash(a) == hash(b)
        assert a.spec() == "k=3,t=0.1,l=2"

    def test_duplicate_requirement_rejected(self):
        with pytest.raises(PolicyError, match="duplicate"):
            KAnonymity(3) & KAnonymity(5)

    def test_defaults_when_absent(self):
        policy = PrivacyPolicy(TCloseness(0.2))
        assert policy.k == 1
        assert policy.l is None
        assert policy.p is None
        assert policy.required_distinct == 1

    def test_required_distinct_unifies_l_and_p(self):
        assert (DistinctLDiversity(3) & PSensitivity(5)).required_distinct == 5
        assert (DistinctLDiversity(4) & PSensitivity(2)).required_distinct == 4

    def test_non_requirement_rejected(self):
        with pytest.raises(PolicyError):
            PrivacyPolicy("k=5")  # strings go through parse/as_policy


@pytest.mark.parametrize(
    "combo", ALL_COMBINATIONS, ids=lambda c: ",".join(r.key for r in c)
)
class TestRoundTrips:
    """Satellite: parse/str/repr/dict round-trips for every combination."""

    def test_spec_string_round_trip(self, combo):
        policy = PrivacyPolicy(*combo)
        assert PrivacyPolicy.parse(str(policy)) == policy

    def test_repr_round_trip(self, combo):
        policy = PrivacyPolicy(*combo)
        namespace = {
            "PrivacyPolicy": PrivacyPolicy,
            "KAnonymity": KAnonymity,
            "TCloseness": TCloseness,
            "DistinctLDiversity": DistinctLDiversity,
            "PSensitivity": PSensitivity,
        }
        assert eval(repr(policy), namespace) == policy

    def test_dict_round_trip(self, combo):
        policy = PrivacyPolicy(*combo)
        assert PrivacyPolicy.from_dict(policy.to_dict()) == policy


@given(
    k=st.one_of(st.none(), st.integers(1, 10**6)),
    t=st.one_of(
        st.none(),
        st.floats(0.0, 10.0, allow_nan=False, allow_subnormal=False),
    ),
    l=st.one_of(st.none(), st.integers(1, 10**6)),
    p=st.one_of(st.none(), st.integers(1, 10**6)),
)
def test_round_trip_property(k, t, l, p):
    """Spec strings round-trip for arbitrary parameter values (floats via
    repr, so the reparsed t is bit-identical)."""
    requirements = []
    if k is not None:
        requirements.append(KAnonymity(k))
    if t is not None:
        requirements.append(TCloseness(t))
    if l is not None:
        requirements.append(DistinctLDiversity(l))
    if p is not None:
        requirements.append(PSensitivity(p))
    if not requirements:
        return
    policy = PrivacyPolicy(*requirements)
    reparsed = PrivacyPolicy.parse(policy.spec())
    assert reparsed == policy
    assert reparsed.t == policy.t  # bit-identical, not approximately


class TestParsing:
    def test_parse_full_spec(self):
        policy = PrivacyPolicy.parse("k=5,t=0.15,l=3,p=2")
        assert policy.k == 5
        assert policy.t == 0.15
        assert policy.l == 3
        assert policy.p == 2

    def test_parse_tolerates_spacing_and_case(self):
        assert PrivacyPolicy.parse(" K=5 , t=0.2 ") == KAnonymity(5) & TCloseness(0.2)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(PolicyError, match="cannot parse"):
            PrivacyPolicy.parse("k=5,z=3")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(PolicyError, match="not an integer"):
            PrivacyPolicy.parse("k=five")
        with pytest.raises(PolicyError, match="not a number"):
            PrivacyPolicy.parse("t=tight")

    def test_parse_rejects_empty(self):
        with pytest.raises(PolicyError, match="no requirements"):
            PrivacyPolicy.parse("")

    def test_parse_rejects_duplicates(self):
        with pytest.raises(PolicyError, match="duplicate"):
            PrivacyPolicy.parse("k=3,k=5")


class TestAsPolicy:
    def test_accepts_policy_requirement_string_mapping(self):
        policy = KAnonymity(5) & TCloseness(0.15)
        assert as_policy(policy) is policy
        assert as_policy(KAnonymity(5)) == PrivacyPolicy(KAnonymity(5))
        assert as_policy("k=5,t=0.15") == policy
        assert as_policy({"k": 5, "t": 0.15}) == policy

    def test_rejects_garbage(self):
        with pytest.raises(PolicyError, match="cannot interpret"):
            as_policy(42)
