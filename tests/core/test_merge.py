"""Tests for Algorithm 1 (microaggregation + merging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfidentialModel, merge_to_t_closeness, microaggregation_merge
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.microagg import Partition, mdav, vmdav


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=240)


def random_dataset(n, seed):
    rng = np.random.default_rng(seed)
    return Microdata(
        {
            "q1": rng.normal(size=n),
            "q2": rng.normal(size=n),
            "secret": rng.permutation(np.arange(float(n))),
        },
        [
            numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


class TestAlgorithm1:
    def test_result_is_t_close_and_k_anonymous(self, mcd_small):
        result = microaggregation_merge(mcd_small, k=3, t=0.15)
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_loose_t_means_no_merging(self, mcd_small):
        result = microaggregation_merge(mcd_small, k=5, t=1.0)
        assert result.info["n_merges"] == 0
        assert result.partition.n_clusters == result.info["initial_clusters"]

    def test_strict_t_collapses_to_single_cluster(self):
        data = random_dataset(60, 0)
        result = microaggregation_merge(data, k=2, t=0.0001)
        assert result.partition.n_clusters == 1
        assert result.max_emd == pytest.approx(0.0, abs=1e-9)

    def test_stricter_t_gives_larger_clusters(self, mcd_small):
        loose = microaggregation_merge(mcd_small, k=3, t=0.25)
        strict = microaggregation_merge(mcd_small, k=3, t=0.05)
        assert strict.mean_cluster_size >= loose.mean_cluster_size

    def test_emds_consistent_with_model(self, mcd_small):
        result = microaggregation_merge(mcd_small, k=4, t=0.12)
        model = ConfidentialModel(mcd_small)
        recomputed = model.partition_emds(list(result.partition.clusters()))
        np.testing.assert_allclose(result.cluster_emds, recomputed, atol=1e-12)

    def test_custom_partitioner(self, mcd_small):
        result = microaggregation_merge(
            mcd_small, k=3, t=0.2, partitioner=lambda X, k: vmdav(X, k, gamma=0.5)
        )
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_rank_mode(self, mcd_small):
        result = microaggregation_merge(mcd_small, k=3, t=0.2, emd_mode="rank")
        assert result.satisfies_t
        assert result.info["emd_mode"] == "rank"

    def test_algorithm_label(self, mcd_small):
        result = microaggregation_merge(mcd_small, k=2, t=0.3)
        assert result.algorithm == "merge"
        assert "merge" in result.summary()

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            microaggregation_merge(mcd_small, k=0, t=0.1)
        with pytest.raises(ValueError, match="k must be"):
            microaggregation_merge(mcd_small, k=10_000, t=0.1)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(20, 80),
        k=st.integers(2, 6),
        t=st.floats(0.02, 0.4),
        seed=st.integers(0, 100),
    )
    def test_always_t_close_property(self, n, k, t, seed):
        """Algorithm 1 terminates with a t-close k-anonymous partition."""
        data = random_dataset(n, seed)
        result = microaggregation_merge(data, k=k, t=t)
        assert result.satisfies_t
        result.partition.validate_min_size(k)
        assert result.partition.sizes().sum() == n


class TestMergePhaseAlone:
    def test_merges_worst_cluster_first(self):
        data = random_dataset(40, 3)
        partition = mdav(data.qi_matrix(), 4)
        model = ConfidentialModel(data)
        before = model.partition_emds(list(partition.clusters()))
        target_t = float(np.sort(before)[-2])  # only the worst violates
        merged, emds, n_merges = merge_to_t_closeness(data, partition, target_t)
        assert n_merges >= 1
        assert emds.max() <= target_t + 1e-12

    def test_no_merge_needed(self):
        data = random_dataset(30, 4)
        partition = mdav(data.qi_matrix(), 3)
        merged, emds, n_merges = merge_to_t_closeness(data, partition, 1.0)
        assert n_merges == 0
        assert merged == partition

    def test_negative_t_rejected(self):
        data = random_dataset(10, 5)
        with pytest.raises(ValueError, match="t must be"):
            merge_to_t_closeness(data, Partition.single_cluster(10), -0.5)

    def test_single_cluster_input_is_fixed_point(self):
        data = random_dataset(12, 6)
        partition = Partition.single_cluster(12)
        merged, emds, n_merges = merge_to_t_closeness(data, partition, 0.0)
        assert merged.n_clusters == 1
        assert n_merges == 0
        assert emds[0] == pytest.approx(0.0, abs=1e-12)

    def test_merge_count_bounded_by_initial_clusters(self):
        data = random_dataset(60, 7)
        partition = mdav(data.qi_matrix(), 2)
        _, _, n_merges = merge_to_t_closeness(data, partition, 0.05)
        assert n_merges <= partition.n_clusters - 1
