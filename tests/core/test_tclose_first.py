"""Tests for Algorithm 3 (t-closeness-first microaggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tclose_first_cluster_size, tcloseness_first
from repro.core.tclose_first import _bucket_sizes
from repro.data import (
    AttributeRole,
    Microdata,
    load_hcd,
    load_mcd,
    nominal,
    numeric,
    ordinal,
)


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=240)


def random_dataset(n, seed, tie_free=True):
    rng = np.random.default_rng(seed)
    secret = (
        rng.permutation(np.arange(float(n)))
        if tie_free
        else rng.integers(0, max(2, n // 4), size=n).astype(float)
    )
    return Microdata(
        {
            "q1": rng.normal(size=n),
            "q2": rng.normal(size=n),
            "secret": secret,
        },
        [
            numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


class TestBucketSizes:
    def test_divisible(self):
        np.testing.assert_array_equal(_bucket_sizes(12, 4), [3, 3, 3, 3])

    def test_odd_k_extras_in_middle(self):
        sizes = _bucket_sizes(11, 3)  # base 3, r = 2
        np.testing.assert_array_equal(sizes, [3, 5, 3])

    def test_even_k_extras_split(self):
        sizes = _bucket_sizes(14, 4)  # base 3, r = 2
        np.testing.assert_array_equal(sizes, [3, 4, 4, 3])

    def test_even_k_odd_extras(self):
        sizes = _bucket_sizes(15, 4)  # base 3, r = 3
        np.testing.assert_array_equal(sizes, [3, 5, 4, 3])

    def test_sum_is_n(self):
        for n in (10, 37, 100, 1081):
            for k in (2, 3, 7, 10):
                assert _bucket_sizes(n, k).sum() == n


class TestAlgorithm3:
    def test_t_close_k_anonymous(self, mcd_small):
        result = tcloseness_first(mcd_small, k=3, t=0.15)
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_divisible_case_exact_sizes(self):
        """When k_eff divides n every cluster has exactly k_eff records."""
        data = random_dataset(100, 0)
        result = tcloseness_first(data, k=5, t=1.0)  # k_eff = 5 divides 100
        assert result.info["effective_k"] == 5
        np.testing.assert_array_equal(result.partition.sizes(), np.full(20, 5))

    def test_non_divisible_sizes_k_or_k_plus_1(self):
        data = random_dataset(103, 1)  # k_eff = 5 -> r = 3 extras
        result = tcloseness_first(data, k=5, t=1.0)
        sizes = result.partition.sizes()
        assert set(sizes.tolist()) <= {5, 6}
        assert (sizes == 6).sum() == 3

    def test_effective_k_matches_closed_form(self, mcd_small):
        for t in (0.05, 0.13, 0.25):
            result = tcloseness_first(mcd_small, k=2, t=t)
            assert result.info["effective_k"] == tclose_first_cluster_size(
                mcd_small.n_records, t, 2
            )

    def test_paper_table3_row_on_full_mcd_and_hcd(self):
        """Table 3, k=2: min = avg = k(t) for both data sets, all t."""
        expected = {0.05: 10, 0.13: 4, 0.25: 2}
        for loader in (load_mcd, load_hcd):
            data = loader()
            for t, k_eff in expected.items():
                result = tcloseness_first(data, k=2, t=t)
                sizes = result.partition.sizes()
                assert sizes.min() == sizes.max() == k_eff, (loader, t)
                assert result.satisfies_t

    def test_emd_within_proposition_bound(self):
        """Every cluster's rank EMD respects the Proposition 2 guarantee."""
        data = random_dataset(120, 2)
        result = tcloseness_first(data, k=4, t=0.08, emd_mode="rank")
        assert (result.cluster_emds <= result.info["emd_bound"] + 1e-9).all()

    def test_no_emd_needed_at_loose_t(self):
        """At loose t Algorithm 3 degrades gracefully to k-sized clusters."""
        data = random_dataset(60, 3)
        result = tcloseness_first(data, k=3, t=1.0)
        assert result.info["effective_k"] == 3

    def test_t_zero_single_cluster(self):
        data = random_dataset(30, 4)
        result = tcloseness_first(data, k=2, t=0.0)
        assert result.partition.n_clusters == 1
        assert result.max_emd == pytest.approx(0.0, abs=1e-12)

    def test_ordinal_confidential_supported(self):
        rng = np.random.default_rng(5)
        n = 60
        data = Microdata(
            {
                "q1": rng.normal(size=n),
                "level": np.tile(np.arange(6), 10),
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                ordinal(
                    "level",
                    tuple("abcdef"),
                    role=AttributeRole.CONFIDENTIAL,
                ),
            ],
        )
        result = tcloseness_first(data, k=3, t=0.2)
        result.partition.validate_min_size(3)
        assert result.satisfies_t

    def test_nominal_confidential_rejected(self):
        rng = np.random.default_rng(6)
        data = Microdata(
            {
                "q1": rng.normal(size=20),
                "disease": rng.integers(0, 3, size=20),
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                nominal("disease", ("a", "b", "c"), role=AttributeRole.CONFIDENTIAL),
            ],
        )
        with pytest.raises(ValueError, match="rankable"):
            tcloseness_first(data, k=2, t=0.2)

    def test_multiple_confidential_rejected(self):
        rng = np.random.default_rng(7)
        data = Microdata(
            {
                "q1": rng.normal(size=20),
                "s1": rng.normal(size=20),
                "s2": rng.normal(size=20),
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                numeric("s1", role=AttributeRole.CONFIDENTIAL),
                numeric("s2", role=AttributeRole.CONFIDENTIAL),
            ],
        )
        with pytest.raises(ValueError, match="exactly one"):
            tcloseness_first(data, k=2, t=0.2)

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            tcloseness_first(mcd_small, k=0, t=0.1)
        with pytest.raises(ValueError, match="t must be"):
            tcloseness_first(mcd_small, k=2, t=-0.1)

    def test_algorithm_label(self, mcd_small):
        assert tcloseness_first(mcd_small, k=2, t=0.3).algorithm == "tclose-first"

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(10, 120),
        k=st.integers(1, 6),
        t=st.floats(0.02, 0.5),
        seed=st.integers(0, 50),
    )
    def test_always_valid_property(self, n, k, t, seed):
        """Tie-free data: Algorithm 3 is t-close by construction, always."""
        k = min(k, n)
        data = random_dataset(n, seed)
        result = tcloseness_first(data, k=k, t=t, emd_mode="rank")
        assert result.partition.sizes().sum() == n
        k_eff = result.info["effective_k"]
        assert result.partition.min_size >= min(k, k_eff)
        # Size is k_eff or k_eff + 1 for every cluster.
        assert set(result.partition.sizes().tolist()) <= {k_eff, k_eff + 1}
        assert result.max_emd <= result.t + result.info["emd_bound"] * 0.5 + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(20, 100), seed=st.integers(0, 30))
    def test_ties_still_produce_valid_partition(self, n, seed):
        """Heavily tied confidential values don't break the construction."""
        data = random_dataset(n, seed, tie_free=False)
        result = tcloseness_first(data, k=2, t=0.2)
        assert result.partition.sizes().sum() == n
        k_eff = result.info["effective_k"]
        assert set(result.partition.sizes().tolist()) <= {k_eff, k_eff + 1}
