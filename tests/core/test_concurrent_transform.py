"""Concurrent ``transform`` on one fitted model: the serving thread-safety
contract.

A serving worker shares a single fitted model between many request
threads.  ``transform``/``assign`` must therefore be reentrant: the
transform-time state is read-only after fit, each call passes the
backend explicitly, and the threaded/process backends' shared kernel
buffers must not bleed state between overlapping calls.  This suite
hammers one model from a thread pool under both parallel backends and
requires every response to be bitwise identical to the serial reference
— interleaving may change scheduling, never bits.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Anonymizer, KAnonymity, TCloseness

from ..backends import process_for_tests, threaded_for_tests
from .test_transform_vectorized import make_dataset

N_THREADS = 8
ROUNDS = 3


@pytest.fixture(scope="module")
def fitted():
    return Anonymizer(KAnonymity(4) & TCloseness(0.4)).fit(
        make_dataset(500, 11, grid=True)
    )


@pytest.fixture(scope="module")
def batches():
    return [make_dataset(400, seed, grid=True) for seed in range(4)]


def share_fitted_state(fitted, backend):
    """The suite's established pattern: same fitted state, another backend."""
    model = Anonymizer(fitted.policy, backend=backend)
    model.__dict__.update(
        {k: v for k, v in fitted.__dict__.items() if k != "backend"}
    )
    return model


@pytest.mark.parametrize(
    "backend_factory",
    [threaded_for_tests, process_for_tests],
    ids=["threaded-2", "process-2"],
)
class TestConcurrentServing:
    def test_concurrent_transform_bitwise(self, fitted, batches, backend_factory):
        model = share_fitted_state(fitted, backend_factory())
        references = [fitted.transform(b) for b in batches]
        jobs = [(b, r) for b, r in zip(batches, references)] * ROUNDS

        with ThreadPoolExecutor(N_THREADS) as pool:
            futures = [pool.submit(model.transform, batch) for batch, _ in jobs]
            for (_, reference), future in zip(jobs, futures):
                released = future.result()
                for name in reference.attribute_names:
                    np.testing.assert_array_equal(
                        reference.values(name), released.values(name)
                    )

    def test_concurrent_assign_bitwise(self, fitted, batches, backend_factory):
        model = share_fitted_state(fitted, backend_factory())
        references = [fitted.assign(b) for b in batches]
        jobs = [(b, r) for b, r in zip(batches, references)] * ROUNDS

        with ThreadPoolExecutor(N_THREADS) as pool:
            futures = [pool.submit(model.assign, batch) for batch, _ in jobs]
            for (_, reference), future in zip(jobs, futures):
                np.testing.assert_array_equal(reference, future.result())

    def test_same_batch_from_every_thread(self, fitted, batches, backend_factory):
        """All threads hammering ONE batch — maximal buffer contention."""
        model = share_fitted_state(fitted, backend_factory())
        batch = batches[0]
        reference = fitted.assign(batch)

        with ThreadPoolExecutor(N_THREADS) as pool:
            futures = [
                pool.submit(model.assign, batch) for _ in range(N_THREADS * 2)
            ]
            for future in futures:
                np.testing.assert_array_equal(reference, future.result())
