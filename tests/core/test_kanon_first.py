"""Tests for Algorithm 2 (k-anonymity-first t-aware microaggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kanonymity_first, microaggregation_merge
from repro.core.kanon_first import _generate_cluster
from repro.core.confidential import ConfidentialModel
from repro.data import AttributeRole, Microdata, load_mcd, numeric
from repro.microagg import ClusteringEngine


def engine_over(X, remaining=None):
    """Engine whose live set is ``remaining`` (default: all records)."""
    engine = ClusteringEngine(X)
    if remaining is not None:
        dead = np.setdiff1d(np.arange(X.shape[0]), remaining)
        if dead.size:
            engine.kill(dead)
    return engine


@pytest.fixture(scope="module")
def mcd_small():
    return load_mcd(n=240)


def random_dataset(n, seed):
    rng = np.random.default_rng(seed)
    return Microdata(
        {
            "q1": rng.normal(size=n),
            "q2": rng.normal(size=n),
            "secret": rng.permutation(np.arange(float(n))),
        },
        [
            numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("q2", role=AttributeRole.QUASI_IDENTIFIER),
            numeric("secret", role=AttributeRole.CONFIDENTIAL),
        ],
    )


class TestGenerateCluster:
    def test_returns_all_when_fewer_than_2k(self):
        data = random_dataset(30, 0)
        X = data.qi_matrix()
        model = ConfidentialModel(data)
        remaining = np.arange(7)
        members, swaps = _generate_cluster(
            engine_over(X, remaining), 0, model, k=4, t=0.1
        )
        np.testing.assert_array_equal(members, remaining)
        assert swaps == 0

    def test_cluster_has_exactly_k_records(self):
        data = random_dataset(40, 1)
        X = data.qi_matrix()
        model = ConfidentialModel(data)
        members, _ = _generate_cluster(engine_over(X), 0, model, k=5, t=0.05)
        assert len(members) == 5
        assert len(np.unique(members)) == 5

    def test_no_swaps_when_t_loose(self):
        data = random_dataset(40, 2)
        X = data.qi_matrix()
        model = ConfidentialModel(data)
        members, swaps = _generate_cluster(engine_over(X), 0, model, k=5, t=1.0)
        assert swaps == 0
        # Without swaps the cluster is exactly the seed's k nearest records.
        from repro.distance import k_nearest_indices

        expected = k_nearest_indices(X, X[0], 5)
        np.testing.assert_array_equal(np.sort(members), np.sort(expected))

    def test_swaps_reduce_emd(self):
        data = random_dataset(60, 3)
        X = data.qi_matrix()
        model = ConfidentialModel(data)
        strict_members, swaps = _generate_cluster(
            engine_over(X), 0, model, k=4, t=0.01
        )
        loose_members, _ = _generate_cluster(engine_over(X), 0, model, k=4, t=1.0)
        assert swaps > 0
        assert model.cluster_emd(strict_members) <= model.cluster_emd(loose_members)


class TestAlgorithm2:
    def test_t_close_k_anonymous(self, mcd_small):
        result = kanonymity_first(mcd_small, k=3, t=0.15)
        assert result.satisfies_t
        result.partition.validate_min_size(3)

    def test_cluster_sizes_closer_to_k_than_algorithm1(self, mcd_small):
        """The paper's headline Table 1 vs Table 2 comparison."""
        a1 = microaggregation_merge(mcd_small, k=3, t=0.13)
        a2 = kanonymity_first(mcd_small, k=3, t=0.13)
        assert a2.mean_cluster_size <= a1.mean_cluster_size

    def test_without_merge_fallback_sizes_stay_k(self, mcd_small):
        result = kanonymity_first(mcd_small, k=4, t=0.13, merge_fallback=False)
        assert result.info["n_merges"] == 0
        # Clusters never grow beyond 2k-1 without merging.
        assert result.partition.max_size <= 2 * 4 - 1

    def test_merge_fallback_only_when_needed(self, mcd_small):
        result = kanonymity_first(mcd_small, k=3, t=0.25)
        raw = kanonymity_first(mcd_small, k=3, t=0.25, merge_fallback=False)
        if raw.satisfies_t:
            assert result.info["n_merges"] == 0

    def test_swaps_counted(self, mcd_small):
        strict = kanonymity_first(mcd_small, k=3, t=0.05)
        loose = kanonymity_first(mcd_small, k=3, t=0.5)
        assert strict.info["n_swaps"] > loose.info["n_swaps"]

    def test_rank_mode_rejected(self, mcd_small):
        with pytest.raises(ValueError, match="distinct"):
            kanonymity_first(mcd_small, k=3, t=0.1, emd_mode="rank")

    def test_validation(self, mcd_small):
        with pytest.raises(ValueError, match="k must be"):
            kanonymity_first(mcd_small, k=0, t=0.1)
        with pytest.raises(ValueError, match="t must be"):
            kanonymity_first(mcd_small, k=2, t=-1.0)

    def test_algorithm_label(self, mcd_small):
        result = kanonymity_first(mcd_small, k=2, t=0.3)
        assert result.algorithm == "kanon-first"

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(20, 70),
        k=st.integers(2, 5),
        t=st.floats(0.05, 0.4),
        seed=st.integers(0, 50),
    )
    def test_always_valid_property(self, n, k, t, seed):
        """Algorithm 2 (with fallback) yields t-close k-anonymous output."""
        data = random_dataset(n, seed)
        result = kanonymity_first(data, k=k, t=t)
        assert result.satisfies_t
        result.partition.validate_min_size(k)
        assert result.partition.sizes().sum() == n

    def test_nominal_confidential_supported(self):
        """Algorithm 2 works with a nominal confidential attribute."""
        from repro.data import nominal

        rng = np.random.default_rng(8)
        n = 60
        data = Microdata(
            {
                "q1": rng.normal(size=n),
                "disease": rng.integers(0, 3, size=n),
            },
            [
                numeric("q1", role=AttributeRole.QUASI_IDENTIFIER),
                nominal(
                    "disease", ("a", "b", "c"), role=AttributeRole.CONFIDENTIAL
                ),
            ],
        )
        result = kanonymity_first(data, k=3, t=0.25)
        assert result.satisfies_t
        result.partition.validate_min_size(3)
