"""Hospital discharge release: an end-to-end data-custodian workflow.

Scenario (the paper's Section 8.2 setting): a hospital must publish patient
discharge records — seven quasi-identifiers (age, zip region, admission
day, stay length, severity, procedures, payer) plus the confidential
hospital charge — for health-services research, under a policy of
k >= 10 and t <= 0.2.

The script walks the full custodian workflow:

1. load the extract and assign disclosure roles,
2. anonymize with the t-closeness-first algorithm,
3. verify the release with the independent privacy auditors,
4. quantify what researchers lose (range-query error, correlation drift),
5. write the release to CSV.

Run:  python examples/hospital_discharge_release.py
"""

import tempfile
from pathlib import Path

from repro import anonymize
from repro.data import load_patient_discharge, write_csv
from repro.metrics import correlation_shift, normalized_sse, range_query_error
from repro.privacy import audit

K, T = 10, 0.20

#: Example-scale subsample of the 23,435-record extract (fast to run);
#: the figure benchmarks sweep the larger sizes.
N = 2_000


def main() -> None:
    data = load_patient_discharge(n=N)
    print(f"extract: {data}")
    print()

    release, result = anonymize(data, k=K, t=T, method="tclose-first")
    print("anonymization:", result.summary())
    print(
        f"effective cluster size (Eq. 3/4): {result.info['effective_k']} "
        f"(guaranteed EMD <= {result.info['emd_bound']:.4f})"
    )
    print()

    print("privacy audit (verified on the release, not trusted from the run):")
    print(audit(release, data).format())
    print()

    queries = range_query_error(data, release, n_queries=300, seed=1)
    print("researcher impact:")
    print(f"  normalized SSE            : {normalized_sse(data, release):.4f}")
    print(f"  range-query rel. error    : {queries.mean_relative_error:.3%}")
    print(f"  worst correlation drift   : {correlation_shift(data, release):.4f}")
    print()

    out = Path(tempfile.gettempdir()) / "discharge_release.csv"
    write_csv(release, out)
    print(f"release written to {out}")


if __name__ == "__main__":
    main()
