"""Census utility study: how early should t-closeness enter the clustering?

Reproduces, at example scale, the paper's central finding (Section 8.3):
the earlier the t-closeness constraint is considered during
microaggregation, the better the utility of the anonymized data — the
merge-afterwards Algorithm 1 is dominated by the k-anonymity-first
Algorithm 2, which in turn is dominated by the t-closeness-first
Algorithm 3, on both cluster sizes and normalized SSE.  The gap narrows on
the highly correlated data set (HCD), where quasi-identifier homogeneity
and t-closeness are hardest to reconcile.

Run:  python examples/census_utility_study.py
"""

from repro.data import load_hcd, load_mcd
from repro.evaluation import format_series_table, format_size_table, sweep

K = 2
TS = (0.05, 0.10, 0.15, 0.20, 0.25)
ALGORITHMS = ("merge", "kanon-first", "tclose-first")

#: Example-scale subsample (the benchmarks run the full 1,080 records).
N = 360


def main() -> None:
    datasets = {"MCD": load_mcd(n=N), "HCD": load_hcd(n=N)}

    for name, data in datasets.items():
        print(f"== {name} (n={data.n_records}, k={K}) ==")
        sse_series = {}
        size_results = {}
        for algorithm in ALGORITHMS:
            grid = sweep(data, algorithm, ks=[K], ts=TS)
            sse_series[algorithm] = {t: grid[(K, t)].sse for t in TS}
            size_results[algorithm] = grid
        print("\nnormalized SSE by t (smaller is better):")
        print(format_series_table(sse_series, ts=TS))
        print("\nactual cluster sizes (min/avg) by t:")
        print(
            format_size_table(
                {alg: size_results[alg] for alg in ALGORITHMS}, ks=[K], ts=TS
            )
        )
        print()

    print(
        "Expected shape (paper, Figure 6): SSE(merge) >= SSE(kanon-first)\n"
        ">= SSE(tclose-first) for every t, with the gap narrowing on HCD."
    )


if __name__ == "__main__":
    main()
