"""Microaggregation as a utility enhancer for differential privacy.

The paper's conclusions point at the bridge between t-closeness and
ε-differential privacy and propose exploring microaggregation for DP
releases (worked out by the same authors in VLDB Journal 23(5), 2014).
The insight: releasing noisy *centroids of k records* instead of noisy
records divides the Laplace noise scale by k, because one individual can
move a k-record mean by at most range/k.

This example sweeps k at a fixed privacy budget and shows the U-shaped
error curve that results: small k ⇒ noise dominates; large k ⇒
aggregation coarseness dominates; the sweet spot sits in between.

Run:  python examples/differential_privacy_bridge.py
"""

import numpy as np

from repro.data import load_mcd
from repro.evaluation import format_table
from repro.extensions import dp_microaggregated_release, insensitive_partition
from repro.metrics import normalized_sse

EPSILON = 1.0
KS = (2, 5, 10, 25, 50, 100, 250)
N_SEEDS = 5


def main() -> None:
    data = load_mcd()
    print(f"data: {data};  budget epsilon = {EPSILON}")
    print()

    rows = []
    for k in KS:
        partition = insensitive_partition(data, k)
        noisy_sses = []
        for seed in range(N_SEEDS):
            release = dp_microaggregated_release(
                data, k, EPSILON, seed=seed, partition=partition
            )
            noisy_sses.append(
                normalized_sse(data, release, names=data.quasi_identifiers)
            )
        # Aggregation-only error floor (epsilon -> infinity limit).
        clean = dp_microaggregated_release(
            data, k, 1e9, seed=0, partition=partition
        )
        floor = normalized_sse(data, clean, names=data.quasi_identifiers)
        rows.append(
            [
                k,
                f"{float(np.mean(noisy_sses)):.4f}",
                f"{floor:.4f}",
                f"{float(np.mean(noisy_sses)) - floor:.4f}",
            ]
        )

    print(
        format_table(
            ["k", "total SSE", "aggregation floor", "noise share"], rows
        )
    )
    print()
    print(
        "Reading: at small k the 'noise share' dominates (sensitivity\n"
        "range/k is large); at large k the aggregation floor dominates\n"
        "(centroids of huge clusters).  Microaggregation buys DP utility\n"
        "exactly in the middle — the paper's proposed research direction."
    )


if __name__ == "__main__":
    main()
