"""Quickstart: anonymize a microdata set with k-anonymous t-closeness.

Loads the paper's moderately-correlated Census surrogate (1,080 records)
and walks the two public entry points:

1. the one-shot :func:`repro.anonymize` over all three registered
   algorithms at k=5, t=0.15 — cluster sizes, worst equivalence-class
   EMD, information loss;
2. the policy-driven lifecycle — a composed requirement
   (k-anonymity & t-closeness & distinct l-diversity), ``fit`` on the
   table, ``transform`` of a fresh batch against the fitted
   representatives, and an independent policy audit of the release.

Run:  python examples/quickstart.py
"""

from repro import Anonymizer, DistinctLDiversity, KAnonymity, TCloseness, anonymize
from repro.data import load_mcd
from repro.metrics import normalized_sse

K, T = 5, 0.15


def main() -> None:
    data = load_mcd()
    print(f"original data: {data}")
    print(f"quasi-identifiers: {data.quasi_identifiers}")
    print(f"confidential:      {data.confidential}")
    print()

    # -- one-shot releases with each registered algorithm -----------------
    for method in ("merge", "kanon-first", "tclose-first"):
        release, result = anonymize(data, k=K, t=T, method=method)
        sse = normalized_sse(data, release)
        print(f"{method:>13}: {result.summary()}")
        print(f"{'':>13}  normalized SSE = {sse:.4f}")
    print()

    # -- the lifecycle: composed policy, fit, serve, audit ----------------
    policy = KAnonymity(K) & TCloseness(T) & DistinctLDiversity(3)
    print(f"fitting policy {policy} with tclose-first...")
    model = Anonymizer(policy, method="tclose-first").fit(data)
    print(model.report_.format())
    print()

    batch = data.subset(range(100))  # stand-in for newly arriving records
    served = model.transform(batch)
    print(f"served a {served.n_records}-record batch against the fitted model")
    print()

    print("independent policy audit of the fitted release:")
    print(model.audit(data).format())


if __name__ == "__main__":
    main()
