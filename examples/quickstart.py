"""Quickstart: anonymize a microdata set with k-anonymous t-closeness.

Loads the paper's moderately-correlated Census surrogate (1,080 records),
runs all three microaggregation algorithms at k=5, t=0.15, and prints what
each achieved — cluster sizes, the worst equivalence-class EMD, information
loss, and an independent privacy audit of the best release.

Run:  python examples/quickstart.py
"""

from repro import anonymize
from repro.data import load_mcd
from repro.metrics import normalized_sse
from repro.privacy import audit

K, T = 5, 0.15


def main() -> None:
    data = load_mcd()
    print(f"original data: {data}")
    print(f"quasi-identifiers: {data.quasi_identifiers}")
    print(f"confidential:      {data.confidential}")
    print()

    releases = {}
    for method in ("merge", "kanon-first", "tclose-first"):
        release, result = anonymize(data, k=K, t=T, method=method)
        releases[method] = release
        sse = normalized_sse(data, release)
        print(f"{method:>13}: {result.summary()}")
        print(f"{'':>13}  normalized SSE = {sse:.4f}")
    print()

    print("independent audit of the tclose-first release:")
    print(audit(releases["tclose-first"], data).format())


if __name__ == "__main__":
    main()
