"""Microaggregation vs the generalization-based state of the art.

The paper's Related Work positions three generalization-family comparators:
Mondrian adapted to t-closeness, Incognito-style full-domain recoding with
the t-closeness test, and SABRE (bucketization + redistribution).  This
example runs all of them against the paper's Algorithm 3 on the Census
surrogate at the same (k, t) and compares:

* equivalence-class sizes (the paper's Tables 1-3 lens),
* normalized SSE of a centroid release where one is defined,
* the Loss Metric of Incognito's chosen recoding.

Expected shape: microaggregation (Algorithm 3) yields the smallest classes
and lowest SSE; SABRE trails it (greedy buckets => more, larger classes);
Mondrian-t stops splitting early; Incognito pays full-domain coarsening.

Run:  python examples/baseline_comparison.py
"""

from repro.core import tcloseness_first
from repro.data import load_mcd
from repro.evaluation import format_table
from repro.generalization import (
    NumericHierarchy,
    incognito,
    mondrian_partition,
    recoding_loss,
    sabre,
)
from repro.metrics import normalized_sse
from repro.microagg import aggregate_partition
from repro.privacy import equivalence_classes

K, T = 3, 0.15
N = 400


def main() -> None:
    data = load_mcd(n=N)
    rows = []

    # --- Algorithm 3 (this paper) ---------------------------------------
    result = tcloseness_first(data, k=K, t=T)
    release = aggregate_partition(data, result.partition)
    rows.append(
        [
            "tclose-first (paper)",
            result.partition.n_clusters,
            f"{result.mean_cluster_size:.1f}",
            f"{result.max_emd:.4f}",
            f"{normalized_sse(data, release):.4f}",
        ]
    )

    # --- SABRE ------------------------------------------------------------
    result = sabre(data, k=K, t=T)
    release = aggregate_partition(data, result.partition)
    rows.append(
        [
            "SABRE",
            result.partition.n_clusters,
            f"{result.mean_cluster_size:.1f}",
            f"{result.max_emd:.4f}",
            f"{normalized_sse(data, release):.4f}",
        ]
    )

    # --- Mondrian-t ---------------------------------------------------------
    partition = mondrian_partition(data, k=K, t=T)
    release = aggregate_partition(data, partition)
    from repro.core import ConfidentialModel

    emds = ConfidentialModel(data).partition_emds(list(partition.clusters()))
    rows.append(
        [
            "Mondrian-t",
            partition.n_clusters,
            f"{partition.mean_size:.1f}",
            f"{emds.max():.4f}",
            f"{normalized_sse(data, release):.4f}",
        ]
    )

    # --- Incognito-t -----------------------------------------------------------
    hierarchies = {
        name: NumericHierarchy.from_values(data.values(name), n_levels=5)
        for name in data.quasi_identifiers
    }
    inc = incognito(data, hierarchies, k=K, t=T)
    classes = inc.release.classes()
    rows.append(
        [
            "Incognito-t",
            classes.n_clusters,
            f"{classes.mean_size:.1f}",
            f"{inc.release.t_level():.4f}",
            f"(LM={recoding_loss(hierarchies, inc.release.levels):.3f})",
        ]
    )

    print(f"MCD surrogate, n={N}, k={K}, t={T}")
    print(
        format_table(
            ["method", "#classes", "avg size", "max EMD", "SSE"],
            rows,
        )
    )
    print()
    print(
        "Incognito reports the Loss Metric of its recoding instead of SSE:\n"
        "full-domain recoding publishes intervals, not perturbed numbers,\n"
        "so Eq. (5) does not apply directly — which is itself one of the\n"
        "granularity drawbacks the paper lists in Section 4."
    )


if __name__ == "__main__":
    main()
