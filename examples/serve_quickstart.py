"""Serving quickstart: fit → publish to a registry → serve → query over HTTP.

The full anonymization-as-a-service loop (:mod:`repro.serving`) end to
end, on the salary toy table:

1. **fit** an :class:`repro.Anonymizer` under ``k=3, t=0.3``;
2. **publish** the fitted model into a versioned
   :class:`~repro.serving.ModelRegistry` (``<registry>/salary/v1/`` plus
   an atomically-switched ACTIVE pointer);
3. **serve** the registry with :class:`~repro.serving.AnonymizationService`
   on an ephemeral localhost port — memory-mapped model load, coalescing
   micro-batcher, LRU transform cache;
4. **query** it with concurrent ``/v1/transform`` requests via the
   pooled keep-alive :class:`~repro.serving.HttpClient` (each client
   thread reuses one TCP connection across its requests), verify the
   responses equal a direct ``model.transform``, and read ``/metrics``
   to see the coalesced batch sizes and cache hit rate the burst
   produced.

The server runs in a background thread here so the example is a single
process; in production you would run ``repro-anonymize serve --registry
DIR --port N`` and point clients at it.

Run:  python examples/serve_quickstart.py
"""

import asyncio
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import Anonymizer, KAnonymity, TCloseness
from repro.data.toy import load_salary_toy
from repro.serving import AnonymizationService, HttpClient, ModelRegistry

HOST = "127.0.0.1"


def main() -> None:
    data = load_salary_toy()
    print(f"fit table: {data}")
    model = Anonymizer(KAnonymity(3) & TCloseness(0.3)).fit(data)
    print(f"fitted: {model.report_.policy} "
          f"({'satisfied' if model.report_.satisfied else 'NOT satisfied'})")

    registry_dir = Path(tempfile.mkdtemp()) / "registry"
    registry = ModelRegistry(registry_dir)
    version = registry.publish("salary", model)
    print(f"published salary/{version} to {registry_dir}")

    # -- serve on an ephemeral port from a background thread --------------
    service = AnonymizationService(registry, max_wait_ms=25.0)
    service.load_models()
    loop = asyncio.new_event_loop()
    port_box: list[int] = []
    stop_box: list[asyncio.Event] = []
    started = threading.Event()

    async def run_server():
        stop = asyncio.Event()
        stop_box.append(stop)
        server = await asyncio.start_server(
            service._handle_connection, HOST, 0
        )
        port_box.append(server.sockets[0].getsockname()[1])
        started.set()
        async with server:
            await stop.wait()
        # Persistent connections outlive their last response: give the
        # open handlers a moment to observe client EOF and finish before
        # the loop closes (the real ``serve()`` command drains for us).
        pending = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        if pending:
            await asyncio.wait(pending, timeout=2.0)

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(run_server()), daemon=True
    )
    thread.start()
    started.wait()
    port = port_box[0]
    print(f"serving on http://{HOST}:{port}")

    # -- concurrent clients: the batcher coalesces the burst --------------
    # One HttpClient per thread: keep-alive makes every request after a
    # client's first ride the same TCP connection.
    records = {
        name: data.labels(name).tolist() for name in data.attribute_names
    }

    def burst_request(_):
        with HttpClient(HOST, port) as client:
            status, body = client.request(
                "POST", "/v1/transform", {"records": records}
            )
            return status, body, client.connections_opened

    with ThreadPoolExecutor(6) as pool:
        replies = list(pool.map(burst_request, range(6)))
    direct = model.transform(data)
    for status, body, _ in replies:
        assert status == 200
        for name in direct.attribute_names:
            assert body["records"][name] == direct.labels(name).tolist()
    print(f"{len(replies)} concurrent requests served, every response "
          "bit-for-bit equal to model.transform")

    # The rest of the session shares one pooled connection: health probe,
    # a repeat transform (now fully cached), and the metrics read.
    with HttpClient(HOST, port) as client:
        print(client.request("GET", "/healthz")[1])
        client.request("POST", "/v1/transform", {"records": records})
        _, metrics = client.request("GET", "/metrics")
        batches = metrics["batches"]
        cache = metrics["cache"]
        print(f"coalescing: {batches['count']} backend batches, "
              f"max {batches['max_requests_coalesced']} requests merged")
        print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.0%})")
        print(f"keep-alive: {client.requests_sent} requests over "
              f"{client.connections_opened} TCP connection(s)")

    loop.call_soon_threadsafe(stop_box[0].set)
    thread.join()
    loop.close()
    print("server stopped")


if __name__ == "__main__":
    main()
