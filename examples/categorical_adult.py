"""Categorical microdata: the paper's "future work" section, implemented.

The paper's conclusions commit to extending the algorithms to categorical
data via (i) an EMD for categorical values, (ii) categorical centroids, and
(iii) integrated handling of mixed records.  This library implements all
three, and this example exercises them on an Adult-census-shaped surrogate:

* mixed quasi-identifiers — numeric age/hours, *ordinal* education,
  *nominal* race and sex — clustered through the Gower-style embedding;
* a *nominal* confidential attribute (occupation) protected with
  Algorithms 1-2 under the equal-ground-distance EMD;
* an *ordinal* confidential attribute (income class) protected with
  Algorithm 3, whose bucket construction needs ranked values;
* the hierarchical EMD of Li et al., shown on an occupation taxonomy.

Run:  python examples/categorical_adult.py
"""

import numpy as np

from repro.core import kanonymity_first, microaggregation_merge, tcloseness_first
from repro.data import load_adult
from repro.distance import Taxonomy, emd_hierarchical
from repro.metrics import normalized_sse
from repro.microagg import aggregate_partition
from repro.privacy import audit

N = 800
K, T = 4, 0.25

OCCUPATION_TAXONOMY = Taxonomy.from_nested(
    {
        "Any": {
            "White-collar": {
                "Professional": ["Prof-specialty", "Exec-managerial", "Tech-support"],
                "Office": ["Adm-clerical", "Sales"],
            },
            "Blue-collar": {
                "Trades": ["Craft-repair", "Machine-op-inspct", "Transport-moving"],
                "Manual": ["Handlers-cleaners", "Farming-fishing", "Priv-house-serv"],
            },
            "Service": ["Other-service", "Protective-serv", "Armed-Forces"],
        }
    }
)


def main() -> None:
    adult = load_adult(n=N)
    print(f"Adult surrogate: {adult}")
    print(f"QIs: {adult.quasi_identifiers}")
    print()

    # --- nominal confidential attribute: Algorithms 1 and 2 -----------------
    nominal_view = adult.drop(["income_class"])
    for name, algorithm in (
        ("merge", microaggregation_merge),
        ("kanon-first", kanonymity_first),
    ):
        result = algorithm(nominal_view, K, T)
        release = aggregate_partition(nominal_view, result.partition)
        print(f"occupation (nominal EMD), {name:>11}: {result.summary()}")
        print(
            f"{'':>37}SSE = {normalized_sse(nominal_view, release):.4f}"
        )
    print()

    # --- ordinal confidential attribute: Algorithm 3 ------------------------
    ordinal_view = adult.drop(["occupation"])
    result = tcloseness_first(ordinal_view, K, T)
    release = aggregate_partition(ordinal_view, result.partition)
    print(f"income class (ordinal EMD), tclose-first: {result.summary()}")
    print()
    print("audit of the income-class release:")
    print(audit(release).format())
    print()

    # --- hierarchical EMD demo ----------------------------------------------
    occupations = adult.labels("occupation")
    white_collar = [
        o for o in occupations if o in ("Prof-specialty", "Exec-managerial")
    ][:30]
    mixed = occupations[:30].tolist()
    print("hierarchical EMD against the full occupation column:")
    print(
        f"  30 white-collar-only records : "
        f"{emd_hierarchical(white_collar, occupations, OCCUPATION_TAXONOMY):.4f}"
    )
    print(
        f"  30 arbitrary records         : "
        f"{emd_hierarchical(mixed, occupations, OCCUPATION_TAXONOMY):.4f}"
    )
    print(
        "(a class stuck in one subtree is far from the table even when its\n"
        " categories differ — the taxonomy is what makes that visible)"
    )


if __name__ == "__main__":
    main()
