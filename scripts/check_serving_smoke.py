"""Serving smoke: a real server process must coalesce, match, and die clean.

End-to-end tripwire for the serving layer, run through the console entry
point rather than in-process asyncio: fit a model on the salary toy
table, publish it into a registry with ``repro-anonymize publish``,
start ``repro-anonymize serve`` as a subprocess on an ephemeral port,
then require three things of it:

1. **coalescing** — overlapping concurrent ``/v1/assign`` requests are
   merged into shared backend batches (``max_requests_coalesced > 1``
   in ``/metrics``);
2. **fidelity** — every ``/v1/transform`` response is bit-for-bit equal
   to a direct ``Anonymizer.transform`` in this process;
3. **clean shutdown** — SIGTERM makes the server print its shutdown
   line and exit 0 with no traceback on stderr.

    PYTHONPATH=src python scripts/check_serving_smoke.py
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Anonymizer, KAnonymity, TCloseness  # noqa: E402
from repro.data import load_salary_toy  # noqa: E402
from repro.serving import http_json  # noqa: E402

HOST = "127.0.0.1"
N_CLIENTS = 8


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def main() -> int:
    problems: list[str] = []
    data = load_salary_toy()
    fitted = Anonymizer(KAnonymity(3) & TCloseness(0.3)).fit(data)
    direct = fitted.transform(data)
    records = {
        name: data.labels(name).tolist() for name in data.attribute_names
    }

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        model_path = root / "salary_model.npz"
        fitted.save(model_path)

        registry = root / "registry"
        publish = run_cli(
            "publish", str(model_path),
            "--registry", str(registry), "--name", "salary",
        )
        if publish.returncode != 0:
            print(f"FAIL [publish]: exit {publish.returncode}")
            print(publish.stderr[-2000:])
            return 1
        print(f"ok   [publish]: {publish.stdout.strip()}")

        # Generous max-wait so the concurrent burst lands in one batch
        # even on a slow CI runner.
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--registry", str(registry), "--port", "0",
                "--max-wait-ms", "50",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        try:
            announce = server.stdout.readline()
            if "http://" not in announce:
                print(f"FAIL [start]: bad announce line {announce!r}")
                server.kill()
                print(server.stderr.read()[-2000:])
                return 1
            port = int(announce.rsplit(":", 1)[1])
            print(f"ok   [start]: {announce.strip()}")

            status, health = http_json("GET", HOST, port, "/healthz")
            if status != 200 or health.get("status") != "ok":
                problems.append(f"healthz gave {status} {health}")

            # Overlapping concurrent requests: transform fidelity + the
            # coalescing the batcher exists for.
            with ThreadPoolExecutor(N_CLIENTS) as pool:
                replies = list(
                    pool.map(
                        lambda _: http_json(
                            "POST", HOST, port,
                            "/v1/transform", {"records": records},
                        ),
                        range(N_CLIENTS),
                    )
                )
            expected = {
                name: direct.labels(name).tolist()
                for name in direct.attribute_names
            }
            for status, body in replies:
                if status != 200:
                    problems.append(f"transform gave {status}: {body}")
                elif body["records"] != expected:
                    problems.append("transform response differs from direct "
                                    "Anonymizer.transform")
            if not problems:
                print(f"ok   [fidelity]: {N_CLIENTS} concurrent responses "
                      "bit-for-bit equal to direct transform")

            status, metrics = http_json("GET", HOST, port, "/metrics")
            coalesced = metrics["batches"]["max_requests_coalesced"]
            if status != 200 or coalesced <= 1:
                problems.append(
                    f"no coalescing observed (max_requests_coalesced="
                    f"{coalesced}, batches={metrics['batches']})"
                )
            else:
                print(f"ok   [coalescing]: up to {coalesced} requests "
                      f"merged per backend batch")

            server.send_signal(signal.SIGTERM)
            out, err = server.communicate(timeout=30)
            if server.returncode != 0:
                problems.append(f"SIGTERM exit code {server.returncode}")
            if "serving stopped" not in out:
                problems.append(f"missing shutdown line in stdout: {out!r}")
            if "Traceback" in err:
                problems.append(f"traceback on shutdown: {err[-2000:]}")
            if not problems:
                print("ok   [shutdown]: SIGTERM -> exit 0, no traceback")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    for problem in problems:
        print(f"FAIL: {problem}")
    print("serving smoke:", "FAILED" if problems else "PASSED")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
