"""Serving smoke: a real server process must coalesce, match, and die clean.

End-to-end tripwire for the serving layer, run through the console entry
point rather than in-process asyncio: fit a model on the salary toy
table, publish it into a registry with ``repro-anonymize publish``, then
boot three server configurations on ephemeral ports and require:

1. **coalescing** — overlapping concurrent ``/v1/assign`` requests are
   merged into shared backend batches (``max_requests_coalesced > 1``
   in ``/metrics``);
2. **fidelity** — every ``/v1/transform`` response is bit-for-bit equal
   to a direct ``Anonymizer.transform`` in this process;
3. **keep-alive** — a pooled :class:`~repro.serving.HttpClient` issues
   many requests over *one* TCP connection (``connections_opened <
   requests_sent``), i.e. the persistent-connection default actually
   persists;
4. **multi-worker** — ``serve --workers 2`` answers with the same bits
   and ``/metrics`` reports the fleet (``workers == 2``);
5. **backpressure** — with a tiny ``--max-queue-rows`` bound, a second
   concurrent request is rejected as a typed 429 carrying a
   ``Retry-After`` header, and honoring it converges to a 200 with the
   same bits;
6. **clean shutdown** — SIGTERM makes every server print its shutdown
   line and exit 0 with no traceback on stderr.

    PYTHONPATH=src python scripts/check_serving_smoke.py
"""

from __future__ import annotations

import http.client
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Anonymizer, KAnonymity, TCloseness  # noqa: E402
from repro.data import load_salary_toy  # noqa: E402
from repro.serving import HttpClient, http_json  # noqa: E402

HOST = "127.0.0.1"
N_CLIENTS = 8
CLI_ENV = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=CLI_ENV,
    )


def start_server(*extra: str) -> tuple[subprocess.Popen, int]:
    """Spawn ``repro serve`` on an ephemeral port; return (proc, port)."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=CLI_ENV,
    )
    announce = ""
    while True:
        line = server.stdout.readline()
        if not line:
            err = server.stderr.read()
            raise AssertionError(
                f"server exited before announcing "
                f"(rc={server.wait()}): {err[-2000:]}"
            )
        if "http://" in line:
            announce = line.strip()
            break
    return server, int(announce.rsplit(":", 1)[1])


def stop_server(server: subprocess.Popen, problems: list[str], leg: str) -> None:
    server.send_signal(signal.SIGTERM)
    out, err = server.communicate(timeout=30)
    if server.returncode != 0:
        problems.append(f"[{leg}] SIGTERM exit code {server.returncode}")
    if "serving stopped" not in out:
        problems.append(f"[{leg}] missing shutdown line in stdout: {out!r}")
    if "Traceback" in err:
        problems.append(f"[{leg}] traceback on shutdown: {err[-2000:]}")


def main() -> int:
    problems: list[str] = []
    data = load_salary_toy()
    fitted = Anonymizer(KAnonymity(3) & TCloseness(0.3)).fit(data)
    direct = fitted.transform(data)
    records = {
        name: data.labels(name).tolist() for name in data.attribute_names
    }
    expected = {
        name: direct.labels(name).tolist() for name in direct.attribute_names
    }

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        model_path = root / "salary_model.npz"
        fitted.save(model_path)

        registry = root / "registry"
        publish = run_cli(
            "publish", str(model_path),
            "--registry", str(registry), "--name", "salary",
        )
        if publish.returncode != 0:
            print(f"FAIL [publish]: exit {publish.returncode}")
            print(publish.stderr[-2000:])
            return 1
        print(f"ok   [publish]: {publish.stdout.strip()}")

        # ---- leg 1: single worker — fidelity, coalescing, keep-alive ----
        # Generous max-wait so the concurrent burst lands in one batch
        # even on a slow CI runner.
        server, port = start_server(
            "--registry", str(registry), "--max-wait-ms", "50"
        )
        try:
            print(f"ok   [start]: single worker on port {port}")
            status, health = http_json("GET", HOST, port, "/healthz")
            if status != 200 or health.get("status") != "ok":
                problems.append(f"healthz gave {status} {health}")

            # Overlapping concurrent requests: transform fidelity + the
            # coalescing the batcher exists for.
            with ThreadPoolExecutor(N_CLIENTS) as pool:
                replies = list(
                    pool.map(
                        lambda _: http_json(
                            "POST", HOST, port,
                            "/v1/transform", {"records": records},
                        ),
                        range(N_CLIENTS),
                    )
                )
            for status, body in replies:
                if status != 200:
                    problems.append(f"transform gave {status}: {body}")
                elif body["records"] != expected:
                    problems.append("transform response differs from direct "
                                    "Anonymizer.transform")
            if not problems:
                print(f"ok   [fidelity]: {N_CLIENTS} concurrent responses "
                      "bit-for-bit equal to direct transform")

            # Keep-alive reuse: many requests, one TCP connection.
            with HttpClient(HOST, port) as client:
                for _ in range(5):
                    status, body = client.request(
                        "POST", "/v1/transform", {"records": records}
                    )
                    if status != 200 or body["records"] != expected:
                        problems.append(
                            f"keep-alive transform gave {status}"
                        )
                client.request("GET", "/metrics")
                if client.connections_opened >= client.requests_sent:
                    problems.append(
                        f"no connection reuse: {client.connections_opened} "
                        f"connects for {client.requests_sent} requests"
                    )
                elif client.connections_opened == 1:
                    print(f"ok   [keep-alive]: {client.requests_sent} "
                          "requests over 1 TCP connection")
                else:
                    print(f"ok   [keep-alive]: {client.requests_sent} "
                          f"requests over {client.connections_opened} "
                          "connections (reuse observed)")

            status, metrics = http_json("GET", HOST, port, "/metrics")
            coalesced = metrics["batches"]["max_requests_coalesced"]
            if status != 200 or coalesced <= 1:
                problems.append(
                    f"no coalescing observed (max_requests_coalesced="
                    f"{coalesced}, batches={metrics['batches']})"
                )
            else:
                print(f"ok   [coalescing]: up to {coalesced} requests "
                      f"merged per backend batch")
        finally:
            stop_server(server, problems, "shutdown")
            if server.poll() is None:  # pragma: no cover - hung server
                server.kill()
                server.wait()
        if not problems:
            print("ok   [shutdown]: SIGTERM -> exit 0, no traceback")

        # ---- leg 2: two workers sharing the port ------------------------
        server, port = start_server(
            "--registry", str(registry), "--workers", "2"
        )
        try:
            status, body = http_json(
                "POST", HOST, port, "/v1/transform", {"records": records},
                timeout=60.0,
            )
            if status != 200 or body["records"] != expected:
                problems.append(
                    f"2-worker transform gave {status} or wrong bits"
                )
            status, metrics = http_json("GET", HOST, port, "/metrics")
            if metrics.get("workers") != 2:
                problems.append(
                    f"2-worker /metrics reported workers="
                    f"{metrics.get('workers')}"
                )
            if not problems:
                print("ok   [multi-worker]: 2-worker fleet answered "
                      "bit-for-bit, /metrics aggregated both workers")
        finally:
            stop_server(server, problems, "multi-worker shutdown")
            if server.poll() is None:  # pragma: no cover - hung server
                server.kill()
                server.wait()

        # ---- leg 3: forced overload — typed 429 + Retry-After -----------
        # Queue bound below two requests' rows (9 each), long batch wait:
        # the first request parks in the batcher window, the second must
        # be rejected with retry guidance, and honoring it must converge.
        server, port = start_server(
            "--registry", str(registry),
            "--max-queue-rows", "10",
            "--max-wait-ms", "500",
            "--cache-size", "0",
        )
        try:
            first_reply: list = []

            def first_request():
                first_reply.append(
                    http_json(
                        "POST", HOST, port,
                        "/v1/assign", {"records": records},
                        timeout=60.0,
                    )
                )

            holder = threading.Thread(target=first_request)
            holder.start()
            time.sleep(0.15)  # let request #1 enter the batch window
            conn = http.client.HTTPConnection(HOST, port, timeout=30.0)
            import json as _json

            payload = _json.dumps({"records": records})
            conn.request(
                "POST", "/v1/assign", body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            conn.close()
            holder.join(timeout=60.0)
            overload = _json.loads(raw)
            if response.status != 429:
                problems.append(
                    f"overload gave {response.status}, wanted 429: {raw!r}"
                )
            elif overload.get("type") != "overloaded":
                problems.append(f"429 body not typed: {overload}")
            elif not retry_after or int(retry_after) < 1:
                problems.append(f"429 missing Retry-After: {retry_after!r}")
            elif first_reply and first_reply[0][0] != 200:
                problems.append(
                    f"queued request failed: {first_reply[0]}"
                )
            else:
                with HttpClient(HOST, port, timeout=60.0) as client:
                    status, body = client.request_with_retry(
                        "POST", "/v1/assign", {"records": records}
                    )
                if status != 200:
                    problems.append(
                        f"retry after 429 never converged: {status} {body}"
                    )
                else:
                    print("ok   [backpressure]: 429 typed + Retry-After="
                          f"{retry_after}s, honored retry reached 200")
            status, metrics = http_json("GET", HOST, port, "/metrics")
            if metrics["queue"]["rejected_requests"] < 1:
                problems.append("metrics did not count the rejection")
            if metrics["queue"]["depth_max"] > 10:
                problems.append(
                    f"queue depth {metrics['queue']['depth_max']} exceeded "
                    "the configured bound"
                )
        finally:
            stop_server(server, problems, "overload shutdown")
            if server.poll() is None:  # pragma: no cover - hung server
                server.kill()
                server.wait()

    for problem in problems:
        print(f"FAIL: {problem}")
    print("serving smoke:", "FAILED" if problems else "PASSED")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
