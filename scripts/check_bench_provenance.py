"""Verify BENCH_engine.json provenance: every entry names a real commit.

PR 6 shipped a tracked benchmark file whose 32 entries all claimed the
seed commit as provenance even though the numbers had been regenerated
several PRs later — the trajectory looked verifiable and wasn't.  This
check makes that class of rot a CI failure: each entry's ``commit`` field
must be a commit reachable in this repository (resolved with
``git rev-parse``), must not be the ``unknown`` fallback, and must not
carry the ``-dirty`` suffix the bench stamps when it ran on a modified
tree (numbers from an uncommitted tree are irreproducible by definition).

    PYTHONPATH=src python scripts/check_bench_provenance.py [path]

Requires full history (CI checks out with ``fetch-depth: 0``) so hashes
from older commits still resolve.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def resolves_to_commit(ref: str) -> bool:
    proc = subprocess.run(
        ["git", "rev-parse", "--verify", "--quiet", f"{ref}^{{commit}}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.returncode == 0


def main() -> int:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO_ROOT / "BENCH_engine.json"
    payload = json.loads(path.read_text())
    entries = payload.get("entries", [])
    if not entries:
        print(f"{path}: no entries to check")
        return 1
    stamps = {}
    for i, entry in enumerate(entries):
        stamps.setdefault(str(entry.get("commit", "")), []).append(i)
    status = 0
    for stamp, rows in sorted(stamps.items()):
        if not stamp or stamp == "unknown":
            verdict = "REJECT (no provenance)"
            status = 1
        elif stamp.endswith("-dirty"):
            verdict = "REJECT (generated from a modified tree)"
            status = 1
        elif not resolves_to_commit(stamp):
            verdict = "REJECT (not a commit of this repository)"
            status = 1
        else:
            verdict = "ok"
        print(f"commit {stamp!r}: {len(rows)} entries — {verdict}")
    if status == 0:
        print(f"{path}: provenance ok ({len(entries)} entries)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
