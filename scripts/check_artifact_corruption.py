"""Artifact-corruption CLI smoke: damaged models must fail clean and typed.

The crash-safety contract's reader half, checked end-to-end through the
console entry point: a truncated model ``.npz``, a bit-flipped archive, a
mangled JSON sidecar and a version-skewed sidecar must each make
``repro-anonymize apply`` exit with code 2 and an ``error:`` diagnostic
naming the damage on stderr — never a traceback, and never a release CSV
written from a corrupt model.  CI runs this after the fault-injection
suite as the packaging-level tripwire.

    PYTHONPATH=src python scripts/check_artifact_corruption.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import load_mcd  # noqa: E402
from repro.data.io import write_csv  # noqa: E402

CLI_ARGS = ["--qi", "TAXINC,POTHVAL", "--confidential", "FEDTAX"]


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def expect_typed_failure(tag: str, proc: subprocess.CompletedProcess, needle: str) -> int:
    """Exit-2 + typed diagnostic + no traceback, or report the deviation."""
    problems = []
    if proc.returncode != 2:
        problems.append(f"exit code {proc.returncode}, wanted 2")
    if needle not in proc.stderr:
        problems.append(f"stderr lacks {needle!r}")
    if "Traceback" in proc.stderr:
        problems.append("stderr shows a traceback")
    if problems:
        print(f"FAIL [{tag}]: {'; '.join(problems)}")
        print(proc.stderr[-2000:])
        return 1
    print(f"ok   [{tag}]: exit 2, typed diagnostic")
    return 0


def main() -> int:
    status = 0
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        csv = root / "census.csv"
        write_csv(load_mcd(n=120), csv)
        model = root / "model.npz"
        sidecar = root / "model.json"
        out = root / "release.csv"

        fit = run_cli(
            "fit", str(csv), str(model), *CLI_ARGS, "--require", "k=3,t=0.3"
        )
        if fit.returncode != 0:
            print(f"FAIL [fit]: exit {fit.returncode}\n{fit.stderr[-2000:]}")
            return 1
        pristine_npz = model.read_bytes()
        pristine_sidecar = sidecar.read_text()

        # 1. Truncated npz (torn copy / partial download).
        model.write_bytes(pristine_npz[: len(pristine_npz) // 2])
        status |= expect_typed_failure(
            "truncated npz",
            run_cli("apply", str(model), str(csv), str(out)),
            "truncated or corrupted",
        )

        # 2. Bit flip inside the archive (disk corruption).
        flipped = bytearray(pristine_npz)
        flipped[300] ^= 0x01
        model.write_bytes(bytes(flipped))
        status |= expect_typed_failure(
            "bit-flipped npz",
            run_cli("apply", str(model), str(csv), str(out)),
            "error:",
        )
        model.write_bytes(pristine_npz)

        # 3. Mangled sidecar (hand edit gone wrong).
        sidecar.write_text(pristine_sidecar[: len(pristine_sidecar) // 2])
        status |= expect_typed_failure(
            "mangled sidecar",
            run_cli("apply", str(model), str(csv), str(out)),
            "not valid JSON",
        )

        # 4. Version skew (artifact from an incompatible build).
        sidecar.write_text(
            pristine_sidecar.replace('"format_version": 2', '"format_version": 99')
        )
        status |= expect_typed_failure(
            "version skew",
            run_cli("apply", str(model), str(csv), str(out)),
            "format version",
        )

        if out.exists():
            print("FAIL: a release CSV was written from a corrupt model")
            status = 1
    print("artifact-corruption smoke:", "FAILED" if status else "PASSED")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
