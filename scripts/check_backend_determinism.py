"""Threaded-backend determinism smoke: same input twice → identical output.

The threaded backend's contract is stronger than determinism — bit-for-bit
equality with the serial backend — and the golden/property suites pin that
on fixed fixtures.  This script is the cheap CI canary for the failure
mode those can miss on a different machine: a racy shard merge or a
worker-order-dependent reduction would make repeated runs disagree with
each other (or with serial) nondeterministically.  It runs the full
kanon-first pipeline (distance kernels, selections, speculative scoring
blocks, merge phase) twice under a 2-worker threaded backend with shard
floors forced low, and once serially, and requires all three partitions,
EMD vectors and serving assignments to be identical.

    PYTHONPATH=src python scripts/check_backend_determinism.py [n]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine_scaling import synthetic_dataset  # noqa: E402

from repro import Anonymizer, KAnonymity, TCloseness  # noqa: E402
from repro.backend import ThreadedBackend  # noqa: E402


def run(backend):
    model = Anonymizer(
        KAnonymity(5) & TCloseness(0.15), method="kanon-first", backend=backend
    ).fit(data)
    batch = synthetic_dataset(2_000, seed=99)
    return (
        model.result_.partition.labels,
        model.result_.cluster_emds,
        model.assign(batch),
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    data = synthetic_dataset(n)

    def threaded():
        return ThreadedBackend(
            2, min_rows=64, min_assign_rows=64, min_candidates=4
        )

    first = run(threaded())
    second = run(threaded())
    serial = run("serial")
    for name, a, b, c in zip(
        ("labels", "cluster_emds", "assignment"), first, second, serial
    ):
        if not np.array_equal(a, b):
            raise SystemExit(f"threaded run 1 vs run 2 disagree on {name}")
        if not np.array_equal(a, c):
            raise SystemExit(f"threaded vs serial disagree on {name}")
    print(
        f"threaded backend deterministic and serial-identical on n={n} "
        f"(labels, EMDs, serving assignment)"
    )
