"""Parallel-backend determinism smoke: same input twice → identical output.

The parallel backends' contract is stronger than determinism — bit-for-bit
equality with the serial backend — and the golden/property suites pin that
on fixed fixtures.  This script is the cheap CI canary for the failure
mode those can miss on a different machine: a racy shard merge, a
worker-order-dependent reduction, or (for the process backend) a stale
shared-memory view would make repeated runs disagree with each other (or
with serial) nondeterministically.  It runs the full kanon-first pipeline
(distance kernels, selections, speculative scoring blocks, merge phase)
twice under each 2-worker parallel backend with shard floors forced low,
and once serially, and requires every partition, EMD vector and serving
assignment to be identical.

    PYTHONPATH=src python scripts/check_backend_determinism.py [n] [backend]

``backend`` limits the check to one parallel backend (``threaded`` or
``process``); the default checks both.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine_scaling import synthetic_dataset  # noqa: E402

from repro import Anonymizer, KAnonymity, TCloseness  # noqa: E402
from repro.backend import ProcessBackend, ThreadedBackend  # noqa: E402


def run(data, backend):
    model = Anonymizer(
        KAnonymity(5) & TCloseness(0.15), method="kanon-first", backend=backend
    ).fit(data)
    batch = synthetic_dataset(2_000, seed=99)
    return (
        model.result_.partition.labels,
        model.result_.cluster_emds,
        model.assign(batch),
    )


PARALLEL_FACTORIES = {
    "threaded": lambda: ThreadedBackend(
        2, min_rows=64, min_assign_rows=64, min_candidates=4
    ),
    "process": lambda: ProcessBackend(
        2, min_rows=64, min_assign_rows=64, min_shm_bytes=1
    ),
}


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    chosen = sys.argv[2] if len(sys.argv) > 2 else None
    if chosen is not None and chosen not in PARALLEL_FACTORIES:
        raise SystemExit(
            f"unknown backend {chosen!r}; expected one of "
            f"{sorted(PARALLEL_FACTORIES)}"
        )
    names = [chosen] if chosen else sorted(PARALLEL_FACTORIES)
    data = synthetic_dataset(n)
    serial = run(data, "serial")
    for backend_name in names:
        factory = PARALLEL_FACTORIES[backend_name]
        first = run(data, factory())
        second = run(data, factory())
        for part, a, b, c in zip(
            ("labels", "cluster_emds", "assignment"), first, second, serial
        ):
            if not np.array_equal(a, b):
                raise SystemExit(
                    f"{backend_name} run 1 vs run 2 disagree on {part}"
                )
            if not np.array_equal(a, c):
                raise SystemExit(f"{backend_name} vs serial disagree on {part}")
        print(
            f"{backend_name} backend deterministic and serial-identical on "
            f"n={n} (labels, EMDs, serving assignment)"
        )
