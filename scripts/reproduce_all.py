"""One-shot reproduction driver.

Runs the entire test suite and benchmark harness (optionally at full paper
scale) and leaves the regenerated tables under ``benchmarks/results/``.
This is the command a referee would run.

Usage::

    python scripts/reproduce_all.py            # CI scale, ~5 minutes
    python scripts/reproduce_all.py --full     # paper grids, ~40 minutes
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def run(cmd: list[str], *, env: dict[str, str] | None = None) -> int:
    """Echo and run one step, streaming output; returns the exit code."""
    print(f"\n$ {' '.join(cmd)}", flush=True)
    return subprocess.call(cmd, cwd=REPO, env=env)


def main() -> int:
    """Drive tests, benchmarks and result collection; 0 on full success."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the complete paper grids (REPRO_FULL=1; budget ~40 min)",
    )
    parser.add_argument(
        "--skip-tests", action="store_true", help="benchmarks only"
    )
    args = parser.parse_args()

    steps: list[int] = []
    if not args.skip_tests:
        steps.append(run([sys.executable, "-m", "pytest", "tests/"]))

    env = dict(os.environ)
    if args.full:
        env["REPRO_FULL"] = "1"
    steps.append(
        run(
            [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-s"],
            env=env,
        )
    )

    results = REPO / "benchmarks" / "results"
    if results.is_dir():
        print(f"\nregenerated tables in {results}:")
        for path in sorted(results.glob("*.txt")):
            print(f"  {path.name}")
    failed = [code for code in steps if code != 0]
    print("\nALL STEPS PASSED" if not failed else f"\n{len(failed)} STEP(S) FAILED")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
