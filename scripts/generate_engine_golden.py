"""Regenerate the golden partition fixtures for the engine equivalence tests.

The fixture file ``tests/microagg/fixtures/engine_golden.npz`` stores, for
every dataset in ``tests/microagg/golden_datasets.py``, the partition labels
produced by each algorithm.  It was generated ONCE from the pre-engine seed
implementations (commit b54cc5e tree, with the canonical
column-accumulated ``sq_distances_to`` kernel from ``distance/records.py``
overlaid, since that shared primitive defines the distance rounding for
seed and engine alike: ``git archive HEAD | tar -x -C /tmp/seed_tree``,
copy ``records.py`` in, compute labels with the seed algorithms).  It is
the contract the engine-backed rewrites are held to: rerunning this script
after any partitioner change must reproduce the committed file
bit-for-bit.

Usage::

    PYTHONPATH=src python scripts/generate_engine_golden.py [--check]

``--check`` verifies the current implementations against the committed
fixture instead of overwriting it (exit code 1 on any difference).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.kanon_first import kanonymity_first  # noqa: E402
from repro.core.tclose_first import tcloseness_first  # noqa: E402
from repro.microagg import mdav, vmdav  # noqa: E402

from tests.microagg.golden_datasets import (  # noqa: E402
    MATRIX_CASES,
    MICRODATA_CASES,
    VMDAV_GAMMAS,
    matrix_case,
    microdata_case,
)

FIXTURE_PATH = REPO_ROOT / "tests" / "microagg" / "fixtures" / "engine_golden.npz"


def compute_labels() -> dict[str, np.ndarray]:
    """All golden partitions, keyed ``<algorithm>/<case>[/<param>]``."""
    out: dict[str, np.ndarray] = {}
    for name, _n, _d, k in MATRIX_CASES:
        X = matrix_case(name)
        out[f"mdav/{name}"] = mdav(X, k).labels
        for gamma in VMDAV_GAMMAS:
            out[f"vmdav/{name}/g{gamma}"] = vmdav(X, k, gamma=gamma).labels
    for name, _n, k, t in MICRODATA_CASES:
        data = microdata_case(name)
        out[f"kanon-first/{name}"] = kanonymity_first(data, k, t).partition.labels
        out[f"tclose-first/{name}"] = tcloseness_first(data, k, t).partition.labels
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed fixture instead of rewriting it",
    )
    args = parser.parse_args()

    labels = compute_labels()
    if args.check:
        with np.load(FIXTURE_PATH) as stored:
            stored_keys = set(stored.files)
            fresh_keys = set(labels)
            status = 0
            for key in sorted(stored_keys | fresh_keys):
                if key not in stored_keys or key not in fresh_keys:
                    print(f"MISSING  {key}")
                    status = 1
                elif not np.array_equal(stored[key], labels[key]):
                    print(f"DIFFERS  {key}")
                    status = 1
                else:
                    print(f"ok       {key}")
        return status

    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE_PATH, **labels)
    print(f"wrote {len(labels)} partitions to {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
