"""Regenerate the golden partition fixtures for the engine equivalence tests.

The fixture file ``tests/microagg/fixtures/engine_golden.npz`` stores, for
every dataset in ``tests/microagg/golden_datasets.py``, the partition labels
produced by each algorithm.  It was generated ONCE from the pre-engine seed
implementations (commit b54cc5e tree, with the canonical
column-accumulated ``sq_distances_to`` kernel from ``distance/records.py``
overlaid, since that shared primitive defines the distance rounding for
seed and engine alike: ``git archive HEAD | tar -x -C /tmp/seed_tree``,
copy ``records.py`` in, compute labels with the seed algorithms).  It is
the contract the engine-backed rewrites are held to: rerunning this script
after any partitioner change must reproduce the committed file
bit-for-bit.

A second fixture, ``tests/microagg/fixtures/kanon_first_golden.npz``,
covers *end-to-end* runs of the swap/merge-heavy algorithms on the
tight-t cases of ``golden_datasets.E2E_CASES``: kanon-first with and
without the merge fallback, plus Algorithm 1 (MDAV + merge).  For each
run it stores the partition labels, the per-cluster EMDs, and the
swap/merge counters.  It was generated ONCE from the dense pre-refactor
swap/merge implementations (commit 2a51dac tree); the sparse EMD engine
introduced afterwards is held to identical labels and counters
(bit-for-bit) and to EMDs equal within 1e-12 — the reported EMD values
are evaluated sparsely post-refactor, which regroups the same float
summation and may shift the last ulp.

Usage::

    PYTHONPATH=src python scripts/generate_engine_golden.py [--check]

``--check`` verifies the current implementations against the committed
fixtures instead of overwriting them (exit code 1 on any difference).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.kanon_first import kanonymity_first  # noqa: E402
from repro.core.merge import microaggregation_merge  # noqa: E402
from repro.core.tclose_first import tcloseness_first  # noqa: E402
from repro.microagg import mdav, vmdav  # noqa: E402

from tests.microagg.golden_datasets import (  # noqa: E402
    E2E_CASES,
    MATRIX_CASES,
    MICRODATA_CASES,
    VMDAV_GAMMAS,
    e2e_case,
    matrix_case,
    microdata_case,
)

FIXTURES_DIR = REPO_ROOT / "tests" / "microagg" / "fixtures"
FIXTURE_PATH = FIXTURES_DIR / "engine_golden.npz"
E2E_FIXTURE_PATH = FIXTURES_DIR / "kanon_first_golden.npz"

#: Keys within one e2e case holding float EMDs (compared to 1e-12, not
#: bitwise — the sparse evaluation regroups the dense summation).
_EMD_KEY_SUFFIXES = ("emds",)


def compute_labels() -> dict[str, np.ndarray]:
    """All golden partitions, keyed ``<algorithm>/<case>[/<param>]``."""
    out: dict[str, np.ndarray] = {}
    for name, _n, _d, k in MATRIX_CASES:
        X = matrix_case(name)
        out[f"mdav/{name}"] = mdav(X, k).labels
        for gamma in VMDAV_GAMMAS:
            out[f"vmdav/{name}/g{gamma}"] = vmdav(X, k, gamma=gamma).labels
    for name, _n, k, t in MICRODATA_CASES:
        data = microdata_case(name)
        out[f"kanon-first/{name}"] = kanonymity_first(data, k, t).partition.labels
        out[f"tclose-first/{name}"] = tcloseness_first(data, k, t).partition.labels
    return out


def compute_e2e() -> dict[str, np.ndarray]:
    """End-to-end kanon-first / Algorithm-1 runs, keyed ``<case>/<field>``."""
    out: dict[str, np.ndarray] = {}
    for case, dataset_name, k, t in E2E_CASES:
        data = e2e_case(dataset_name)
        full = kanonymity_first(data, k, t)
        raw = kanonymity_first(data, k, t, merge_fallback=False)
        alg1 = microaggregation_merge(data, k, t)
        out[f"{case}/labels"] = full.partition.labels
        out[f"{case}/emds"] = full.cluster_emds
        out[f"{case}/counters"] = np.array(
            [
                full.info["n_swaps"],
                full.info["n_merges"],
                full.info["clusters_before_merge"],
            ],
            dtype=np.int64,
        )
        out[f"{case}/raw/labels"] = raw.partition.labels
        out[f"{case}/raw/emds"] = raw.cluster_emds
        out[f"{case}/alg1/labels"] = alg1.partition.labels
        out[f"{case}/alg1/emds"] = alg1.cluster_emds
        out[f"{case}/alg1/counters"] = np.array(
            [alg1.info["n_merges"]], dtype=np.int64
        )
    return out


def _check_fixture(
    path: Path, fresh: dict[str, np.ndarray], *, emd_atol: float = 0.0
) -> int:
    """Compare freshly computed arrays against one committed fixture."""
    status = 0
    with np.load(path) as stored:
        stored_keys = set(stored.files)
        fresh_keys = set(fresh)
        for key in sorted(stored_keys | fresh_keys):
            if key not in stored_keys or key not in fresh_keys:
                print(f"MISSING  {key}")
                status = 1
                continue
            if emd_atol and key.split("/")[-1] in _EMD_KEY_SUFFIXES:
                same = stored[key].shape == fresh[key].shape and np.allclose(
                    stored[key], fresh[key], atol=emd_atol, rtol=0.0
                )
            else:
                same = np.array_equal(stored[key], fresh[key])
            if not same:
                print(f"DIFFERS  {key}")
                status = 1
            else:
                print(f"ok       {key}")
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed fixtures instead of rewriting them",
    )
    parser.add_argument(
        "--write-e2e",
        action="store_true",
        help=(
            "ALSO rewrite kanon_first_golden.npz from the CURRENT "
            "implementations.  That fixture's value is its dense "
            "pre-refactor provenance; regenerating it from the sparse code "
            "makes the equivalence tests compare the sparse engine against "
            "itself.  Only do this when deliberately re-baselining."
        ),
    )
    args = parser.parse_args()

    labels = compute_labels()
    e2e = compute_e2e()
    if args.check:
        status = _check_fixture(FIXTURE_PATH, labels)
        status |= _check_fixture(E2E_FIXTURE_PATH, e2e, emd_atol=1e-12)
        return status

    FIXTURES_DIR.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE_PATH, **labels)
    print(f"wrote {len(labels)} partitions to {FIXTURE_PATH}")
    if args.write_e2e:
        np.savez_compressed(E2E_FIXTURE_PATH, **e2e)
        print(f"wrote {len(e2e)} arrays to {E2E_FIXTURE_PATH}")
    else:
        print(
            f"left {E2E_FIXTURE_PATH} untouched (pre-refactor provenance); "
            "pass --write-e2e to deliberately re-baseline it"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
