"""Setuptools shim.

All metadata lives in pyproject.toml.  This file exists only so that
``pip install -e . --no-use-pep517`` works in offline environments whose
setuptools cannot build PEP-517 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
