"""Shared result type for the three t-closeness microaggregation algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import T_TOLERANCE
from ..microagg.partition import Partition


@dataclass(frozen=True)
class TClosenessResult:
    """Outcome of one anonymization run.

    Attributes
    ----------
    algorithm:
        ``"merge"`` (Algorithm 1), ``"kanon-first"`` (Algorithm 2) or
        ``"tclose-first"`` (Algorithm 3).
    k:
        Requested k-anonymity level.
    t:
        Requested t-closeness level.
    partition:
        Final cluster assignment (every cluster has >= k records).
    cluster_emds:
        Per-cluster EMD to the full table (max over confidential
        attributes), indexed by cluster id.
    info:
        Algorithm-specific diagnostics — e.g. ``n_merges`` for the merging
        phase, ``n_swaps`` for Algorithm 2, ``effective_k`` for Algorithm 3.
    """

    algorithm: str
    k: int
    t: float
    partition: Partition
    cluster_emds: np.ndarray
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.cluster_emds) != self.partition.n_clusters:
            raise ValueError(
                f"{len(self.cluster_emds)} EMD values for "
                f"{self.partition.n_clusters} clusters"
            )

    @property
    def max_emd(self) -> float:
        """Worst per-cluster EMD — the achieved t-closeness level."""
        return float(np.max(self.cluster_emds))

    @property
    def satisfies_t(self) -> bool:
        """Whether every cluster meets the requested threshold.

        Uses the library-wide :data:`~repro.constants.T_TOLERANCE`, so this
        verdict can never disagree with the formal verifier's
        (:func:`repro.privacy.tcloseness.is_t_close`) on the same EMDs.
        """
        return bool(self.max_emd <= self.t + T_TOLERANCE)

    @property
    def min_cluster_size(self) -> int:
        """The paper's "minimum actual microaggregation level" (Tables 1-3)."""
        return self.partition.min_size

    @property
    def mean_cluster_size(self) -> float:
        """The paper's "average actual microaggregation level" (Tables 1-3)."""
        return self.partition.mean_size

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.algorithm}: k={self.k} t={self.t:g} -> "
            f"{self.partition.n_clusters} clusters "
            f"(min size {self.min_cluster_size}, "
            f"avg size {self.mean_cluster_size:.1f}), "
            f"max EMD {self.max_emd:.4f} "
            f"({'t-close' if self.satisfies_t else 'NOT t-close'})"
        )
