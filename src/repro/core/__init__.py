"""The paper's contribution: three microaggregation algorithms for t-closeness."""

from .anonymizer import METHODS, TClosenessAnonymizer, anonymize, resolve_method
from .base import TClosenessResult
from .bounds import (
    adjust_cluster_size,
    emd_lower_bound,
    emd_upper_bound,
    required_cluster_size,
    tclose_first_cluster_size,
)
from .confidential import ClusterTrackerSet, ConfidentialModel
from .kanon_first import kanonymity_first
from .merge import merge_to_t_closeness, microaggregation_merge
from .model import Anonymizer, NotFittedError, RunReport
from .policy import (
    DistinctLDiversity,
    KAnonymity,
    PolicyError,
    PrivacyPolicy,
    PSensitivity,
    Requirement,
    TCloseness,
    as_policy,
)
from .repair import PolicyInfeasibleError, cluster_distinct_counts, enforce_policy
from .tclose_first import tcloseness_first

__all__ = [
    "anonymize",
    "resolve_method",
    "Anonymizer",
    "NotFittedError",
    "RunReport",
    "TClosenessAnonymizer",
    "TClosenessResult",
    "METHODS",
    "PrivacyPolicy",
    "Requirement",
    "KAnonymity",
    "TCloseness",
    "DistinctLDiversity",
    "PSensitivity",
    "PolicyError",
    "as_policy",
    "enforce_policy",
    "cluster_distinct_counts",
    "PolicyInfeasibleError",
    "microaggregation_merge",
    "merge_to_t_closeness",
    "kanonymity_first",
    "tcloseness_first",
    "ConfidentialModel",
    "ClusterTrackerSet",
    "emd_lower_bound",
    "emd_upper_bound",
    "required_cluster_size",
    "adjust_cluster_size",
    "tclose_first_cluster_size",
]
