"""Algorithm 2 — k-anonymity-first t-closeness-aware microaggregation.

Section 6 of the paper embeds the t-closeness condition *inside* the MDAV
loop.  Clusters are still seeded by quasi-identifier geometry (centroid →
farthest record → its k-1 nearest neighbours), but after seeding, each
cluster is refined: while its EMD to the table exceeds t, the next-closest
unclustered record y is fetched and the swap "y in, best-choice member out"
is applied whenever it strictly lowers the cluster's EMD.  Swapping (rather
than growing) keeps the cluster at exactly k records, at the price of some
quasi-identifier homogeneity.

Algorithm 2 alone cannot guarantee t-closeness (the candidate pool can run
dry first — most likely for the last clusters), so, exactly as the paper
prescribes, the full algorithm runs Algorithm 1's merging phase on the
result; with ``merge_fallback=False`` the raw Section-6 behaviour is
exposed for study.

Cost: O(n^2/k) when no swaps are needed, O(n^3/k) worst case — the paper's
Figure 5 shows exactly this gap, and the benchmark harness reproduces it.
"""

from __future__ import annotations

from itertools import islice

import numpy as np

from ..backend import ComputeBackend, resolve_backend
from ..data.dataset import Microdata
from ..distance.records import encode_mixed
from ..microagg.engine import ClusteringEngine
from ..microagg.partition import Partition
from ..registry import register_method
from ..runtime.faults import fault_point
from .base import TClosenessResult
from .confidential import ClusterTrackerSet, ConfidentialModel
from .merge import merge_to_t_closeness

#: Swaps must improve the EMD by more than this to be applied; guards
#: against float-noise swap cycles without affecting genuine improvements.
_MIN_IMPROVEMENT = 1e-12

#: Decision band for the sparse fast path.  Sparse and dense EMD
#: evaluations sum the same terms in different groupings and agree to
#: ~1e-14; any comparison (stop check, candidate argmin, accept threshold)
#: landing within this band of flipping is re-judged with the dense
#: reference arithmetic (``ClusterTrackerSet.exact_*``), so every decision
#: — and therefore every partition — matches the dense predecessor
#: bit-for-bit while the off-band bulk of the work stays O(c log m).
_TIE_BAND = 1e-12

#: Consecutive rejections before the refinement loop switches from
#: per-candidate scoring to speculative batch scoring.  Accepted swaps
#: mutate the tracker, so a speculative block is only profitable when the
#: upcoming candidates are likely rejections; a rejection run is the
#: cheapest available predictor.  Below the threshold the loop stays on
#: the one-candidate path (whose scoring-pass cache also makes the
#: accepted swap's commit free), so accept-heavy refinement — the tight-t
#: common case, where >80% of candidates are accepted — pays no
#: speculation waste at all.
_BATCH_AFTER = 8

#: Speculative block sizes: start small (a mispredicted acceptance throws
#: the block's unconsumed scores away), double while the rejections keep
#: coming (one batched tracker pass costs little more than two
#: per-candidate dispatches), reset on every acceptance.
_SCORE_BLOCK_MIN = 16
_SCORE_BLOCK_MAX = 256


def _swap_pool(engine: ClusteringEngine, k: int):
    """Lazily yield the swap pool — ``engine.sorted_alive()[k:]`` — in order.

    The refinement loop usually consumes a handful of pool records before
    the cluster reaches t, so sorting the whole shrinking window per cluster
    (O(n log n), the dominant cost of tight-t runs) is wasted work.  Instead
    the stable (distance, id) prefix is materialized in geometrically
    growing steps via :meth:`ClusteringEngine.k_nearest_sorted`, which
    reuses the already-evaluated seed distances; each prefix is bitwise the
    corresponding slice of the full stable argsort, so consumption order —
    and therefore every downstream swap decision — is unchanged.  Deep
    consumption degrades gracefully: doubling prefixes cost at most ~2x one
    full sort.
    """
    total = engine.n_alive
    hi = k
    while hi < total:
        new_hi = min(total, max(hi + 64, 2 * hi))
        prefix = engine.k_nearest_sorted(new_hi)
        yield from prefix[hi:]
        hi = new_hi


def _cluster_overshoots(tracker, t: float) -> bool:
    """Dense-faithful ``tracker.emd > t``, consulting the exact value only
    inside the float-resolution band around t."""
    emd = tracker.emd
    if emd <= t - _TIE_BAND:
        return False
    if emd > t + _TIE_BAND:
        return True
    return tracker.exact_emd > t


def _generate_cluster(
    engine: ClusteringEngine,
    seed_record: int,
    model: ConfidentialModel,
    k: int,
    t: float,
    backend: ComputeBackend | str | None = None,
    progress=None,
    outer_state=None,
    base_units: int = 0,
    resume: dict | None = None,
) -> tuple[np.ndarray, int]:
    """The paper's GenerateCluster: seed k-NN cluster, refine by swaps.

    Parameters
    ----------
    engine:
        Clustering engine whose live set is the unclustered records (must
        contain ``seed_record``).
    seed_record:
        The extreme record the cluster grows around.
    model:
        Confidential-attribute EMD model (must support trackers).
    k, t:
        Minimum cluster size and target closeness.
    backend:
        Compute backend scoring the speculative candidate blocks.
    progress, outer_state:
        Checkpoint wiring for crash-safe fits: ``progress`` is a
        :class:`~repro.runtime.FitProgress` (or None) ticked at the top
        of the refinement loop — a point where the cluster's complete
        state is the member array, the tracker, the pending queue and
        the pool-consumption count, all of which round-trip exactly —
        and ``outer_state`` is a callable merging the caller's
        between-cluster state (engine, finished clusters) into the
        snapshot.  The engine itself is not mutated during refinement
        (only seeding evaluates distances), so a mid-cluster snapshot
        restores it to the exact post-seeding buffers, and the
        regenerated swap pool yields the same records in the same order.
    resume:
        A mid-cluster snapshot to continue from (skips seeding; the
        member multiset, tracker and candidate position are restored
        bitwise), or None for a fresh cluster.

    Returns
    -------
    (members, n_swaps):
        Final cluster (record ids) and the number of accepted swaps.
        Swapped-out records are *not* in ``members`` and therefore remain
        unclustered for later clusters, mirroring the paper's pseudocode.

    Notes
    -----
    Candidates are consumed in exactly the sequential order of the paper's
    pseudocode (the stable (distance-to-seed, id) pool).  Scoring is
    *adaptive*: the loop starts on the per-candidate path (one
    ``swap_emds`` dispatch per pool record, whose scoring-pass cache makes
    an accepted swap's commit free) and, once ``_BATCH_AFTER`` consecutive
    candidates have been rejected — the signal that the refinement has
    entered a scan-dominated stretch — switches to *speculative blocks*:
    one batched tracker pass (:meth:`~repro.core.confidential
    .ClusterTrackerSet.swap_emds_batch`, bitwise row-identical to
    per-candidate scoring, shardable by the backend) covers a whole block
    under the assumption that no swap in it is accepted.  An acceptance
    inside a block invalidates the unconsumed speculative rows — they are
    pushed back (in order) onto a pending queue and scored again, against
    the new member multiset, by whichever mode consumes them.  Every
    decision therefore sees exactly the scores the one-candidate-at-a-time
    loop computed, and the produced clusters are identical bit-for-bit
    (pinned by ``tests/microagg/test_kanon_first_golden.py``).  Fetching a
    few pool records beyond the stopping point is unobservable: the pool
    is a read-only view of the engine's live set.
    """
    backend = resolve_backend(backend)
    if resume is None:
        if engine.n_alive < 2 * k:
            return engine.alive_ids(), 0

        members = engine.k_nearest_sorted(k, point=engine.row(seed_record))
        tracker = model.make_tracker(members)
        n_swaps = 0
        if not _cluster_overshoots(tracker, t):
            return members, n_swaps
    else:
        members = np.asarray(resume["members"], dtype=np.int64)
        tracker = ClusterTrackerSet.from_snapshot(model, resume["tracker"])
        n_swaps = int(resume["meta"]["n_swaps"])

    def decide(y: int, scores: np.ndarray) -> bool:
        """The paper's swap decision for one candidate (scores given)."""
        nonlocal n_swaps
        j = int(np.argmin(scores))
        banded = np.flatnonzero(scores <= scores[j] + _TIE_BAND)
        threshold = tracker.emd - _MIN_IMPROVEMENT
        if banded.size > 1 or abs(scores[j] - threshold) <= _TIE_BAND:
            # A candidate tie or a threshold graze at float resolution:
            # re-judge exactly those candidates with the dense
            # arithmetic (first index wins, as the dense argmin did).
            # Records with identical bins across every confidential
            # attribute score identically, so each distinct bin profile
            # is evaluated once.
            exact: dict[tuple[int, ...], float] = {}
            j, best = -1, np.inf
            for idx in banded:
                key = tracker.bins_key(int(members[idx]))
                if key not in exact:
                    exact[key] = tracker.exact_swap_emd(int(members[idx]), int(y))
                if exact[key] < best:
                    j, best = int(idx), exact[key]
            accept = best < tracker.exact_emd - _MIN_IMPROVEMENT
        else:
            accept = scores[j] < threshold
        if accept:
            tracker.apply_swap(int(members[j]), int(y))
            members[j] = y
            n_swaps += 1
            fault_point("alg2.swap")
        # y is consumed either way (the paper's X' = X' \ {y}).
        return accept

    # The swap pool — every other unclustered record, ascending by
    # (distance to the seed, id) — is materialized only now that the
    # seed cluster overshoots t, and lazily even then: at loose t this
    # branch almost never runs, and at tight t the loop usually stops
    # after a few pool records, so no full sort happens either way.
    pool = _swap_pool(engine, k)
    pool_consumed = 0
    pending: list[int] = []  # speculative leftovers, next in pool order
    rejections = 0
    block_size = _SCORE_BLOCK_MIN
    if resume is not None:
        # The pool is a pure function of the (restored) engine buffers and
        # k; fast-forwarding it past the already-consumed prefix re-yields
        # exactly the records the killed run would have seen next.
        meta = resume["meta"]
        pool_consumed = int(meta["pool_consumed"])
        for _ in islice(pool, pool_consumed):
            pass
        pending = [int(y) for y in np.asarray(resume["pending"], dtype=np.int64)]
        rejections = int(meta["rejections"])
        block_size = int(meta["block_size"])

    def take(count: int) -> list[int]:
        nonlocal pool_consumed
        taken = pending[:count]
        del pending[: len(taken)]
        if len(taken) < count:
            fresh = list(islice(pool, count - len(taken)))
            pool_consumed += len(fresh)
            taken.extend(fresh)
        return taken

    def cluster_state() -> dict:
        state = outer_state()
        state["cluster"] = {
            "members": np.asarray(members, dtype=np.int64),
            "tracker": tracker.snapshot(),
            "pending": np.asarray(pending, dtype=np.int64),
            "meta": {
                "n_swaps": n_swaps,
                "pool_consumed": pool_consumed,
                "rejections": rejections,
                "block_size": block_size,
                "seed_record": int(seed_record),
            },
        }
        return state

    while _cluster_overshoots(tracker, t):
        if progress is not None:
            progress.tick("alg2", base_units + n_swaps, cluster_state)
        if rejections < _BATCH_AFTER:
            candidates = take(1)
            if not candidates:
                break
            y = candidates[0]
            if decide(y, tracker.swap_emds(members, int(y))):
                rejections = 0
                block_size = _SCORE_BLOCK_MIN
            else:
                rejections += 1
            continue
        block = take(block_size)
        if not block:
            break
        block_scores = backend.score_swaps(
            tracker, members, np.asarray(block, dtype=np.int64)
        )
        for i, y in enumerate(block):
            if decide(y, block_scores[i]):
                # The rest of the block was scored against the old member
                # multiset; hand it back unconsumed and leave batch mode.
                pending[:0] = block[i + 1 :]
                rejections = 0
                block_size = _SCORE_BLOCK_MIN
                break
        else:
            rejections += len(block)
            block_size = min(2 * block_size, _SCORE_BLOCK_MAX)
    return members, n_swaps


@register_method("kanon-first")
def kanonymity_first(
    data: Microdata,
    k: int,
    t: float,
    *,
    merge_fallback: bool = True,
    emd_mode: str = "distinct",
    backend: ComputeBackend | str | None = None,
    progress=None,
) -> TClosenessResult:
    """Algorithm 2: t-closeness-aware MDAV with swap-based refinement.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned.
    k:
        Minimum cluster size.
    t:
        t-closeness level.
    merge_fallback:
        Run Algorithm 1's merging phase afterwards so the returned partition
        always satisfies t-closeness (the paper's evaluated configuration).
        When false, the raw partition is returned and ``satisfies_t`` may be
        False.
    emd_mode:
        Only ``"distinct"`` supports the incremental swap evaluation this
        algorithm is built on.
    backend:
        Compute backend for the distance primitives and the batched swap
        scoring (name, instance or ``None`` for the ``REPRO_BACKEND``
        default).  Partitions are backend-independent bit-for-bit.
    progress:
        Optional :class:`~repro.runtime.FitProgress` for checkpointed
        fits.  The clustering loop snapshots under the ``"alg2"`` stage
        — between clusters and inside each cluster's swap refinement,
        every ``every_swaps`` accepted swaps — and the closing merge
        phase under ``"alg2:merge"``; a later call resuming from the
        same store continues **bit-for-bit** (pinned by the crash/resume
        matrix in ``tests/runtime/``).

    Returns
    -------
    TClosenessResult
        ``info`` records ``n_swaps``, ``n_merges`` and the pre-merge
        cluster count.
    """
    n = data.n_records
    if n == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")

    X = encode_mixed(data, data.quasi_identifiers)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    if not model.supports_trackers:
        raise ValueError(
            "kanonymity_first requires emd_mode='distinct' for incremental "
            "swap evaluation"
        )

    backend = resolve_backend(backend)
    engine = ClusteringEngine(X, backend=backend)
    clusters: list[np.ndarray] = []
    total_swaps = 0
    # Seed-selection parity: even clusters seed on the record farthest
    # from the live centroid, odd clusters reuse the distance buffer the
    # previous seeding filled (``engine.farthest()``) — the same x0/x1
    # alternation as the paper's loop, restructured one-cluster-per-
    # iteration so a checkpoint can land between any two clusters.
    parity = 0
    resume_cluster: dict | None = None

    def outer_state() -> dict:
        return {
            "engine": engine.snapshot(),
            "flat": (
                np.concatenate(clusters)
                if clusters
                else np.empty(0, dtype=np.int64)
            ),
            "lengths": np.array([len(c) for c in clusters], dtype=np.int64),
            "meta": {"total_swaps": total_swaps, "parity": parity},
        }

    saved = progress.load("alg2") if progress is not None else None
    if saved is not None:
        engine.restore(saved["engine"])
        flat = np.asarray(saved["flat"], dtype=np.int64)
        clusters = []
        offset = 0
        for length in np.asarray(saved["lengths"], dtype=np.int64):
            clusters.append(flat[offset : offset + int(length)].copy())
            offset += int(length)
        total_swaps = int(saved["meta"]["total_swaps"])
        parity = int(saved["meta"]["parity"])
        resume_cluster = saved.get("cluster")

    while engine.n_alive:
        if progress is not None and resume_cluster is None:
            progress.tick("alg2", total_swaps, outer_state)
        if resume_cluster is not None:
            # Mid-refinement snapshot: the seed's distances are already in
            # the restored engine buffers; re-enter the refinement loop
            # directly instead of re-seeding.
            seed = int(resume_cluster["meta"]["seed_record"])
        elif parity == 0:
            seed = engine.farthest_from_centroid()
        else:
            # The buffer still holds the distances evaluated while seeding
            # the previous cluster; reuse them for the next seed.
            seed = engine.farthest()
        members, swaps = _generate_cluster(
            engine,
            seed,
            model,
            k,
            t,
            backend,
            progress=progress,
            outer_state=outer_state,
            base_units=total_swaps,
            resume=resume_cluster,
        )
        resume_cluster = None
        total_swaps += swaps
        clusters.append(members)
        engine.kill(members)
        parity ^= 1
        fault_point("alg2.cluster")

    if progress is not None:
        # Forced completion snapshot: with the clustering loop finished
        # (n_alive == 0 round-trips through the engine snapshot), a kill
        # during the merge phase below resumes straight into it — this
        # file coexists with the ``alg2:merge`` progress entries until
        # the whole phase commits.
        progress.tick("alg2", total_swaps, outer_state, force=True)

    partition = Partition.from_clusters(clusters, n)
    partition.validate_min_size(k)
    pre_merge_clusters = partition.n_clusters
    n_merges = 0
    if merge_fallback:
        partition, emds, n_merges = merge_to_t_closeness(
            data,
            partition,
            t,
            model=model,
            qi_matrix=X,
            backend=backend,
            progress=progress,
            stage="alg2:merge",
        )
    else:
        emds = model.partition_emds(list(partition.clusters()))

    return TClosenessResult(
        algorithm="kanon-first",
        k=k,
        t=t,
        partition=partition,
        cluster_emds=np.asarray(emds),
        info={
            "n_swaps": total_swaps,
            "n_merges": n_merges,
            "clusters_before_merge": pre_merge_clusters,
            "merge_fallback": merge_fallback,
            "emd_mode": emd_mode,
        },
    )
