"""Post-clustering policy enforcement by cluster merging.

The paper's three algorithms construct k-anonymous partitions and enforce
t-closeness; a :class:`~repro.core.policy.PrivacyPolicy` may additionally
require distinct l-diversity or p-sensitivity, which none of the
algorithms targets directly.  This module closes the gap the same way
Algorithm 1 closes the t-closeness gap: by *merging* clusters, the one
operation that can only strengthen every supported requirement on the
clusters it touches —

* k-anonymity: merged clusters are larger;
* distinct l-diversity / p-sensitivity: a merged cluster's value set is
  the union of its parts, so distinct counts never decrease;
* t-closeness: re-enforced last (merging for diversity can move a
  cluster's distribution), via Algorithm 1's merge phase, which itself
  only merges — so the diversity repairs it inherits are preserved.

The t-closeness re-enforcement also repairs a documented looseness of
Algorithm 3: its extra-record rule (the ``n mod k'`` leftovers parked in
central buckets, Figures 3-4) is a heuristic outside Proposition 2's
guarantee, and on small tables a cluster holding an extra record can
exceed the bound.  The release lifecycle (:class:`repro.core.model.Anonymizer`)
runs this repair, so released tables always meet the declared policy even
when the raw construction lands slightly above t.
"""

from __future__ import annotations

import numpy as np

from ..backend import ComputeBackend
from ..constants import T_TOLERANCE
from ..data.dataset import Microdata
from ..distance.records import encode_mixed
from ..microagg.partition import Partition
from .base import TClosenessResult
from .confidential import ConfidentialModel
from .merge import merge_to_t_closeness
from .policy import PrivacyPolicy


class PolicyInfeasibleError(ValueError):
    """Raised when no partition of the table can satisfy the policy."""


def cluster_distinct_counts(data: Microdata, partition: Partition) -> np.ndarray:
    """Per-cluster minimum (over confidential attributes) distinct-value count.

    This is the quantity distinct l-diversity and p-sensitivity bound from
    below, evaluated per cluster so the repair loop can find violators.
    """
    if not data.confidential:
        raise ValueError("dataset declares no confidential attributes")
    labels = partition.labels
    counts = np.full(partition.n_clusters, np.iinfo(np.int64).max, dtype=np.int64)
    for name in data.confidential:
        values = data.values(name)
        # Distinct (cluster, value) pairs per cluster, in one vectorized pass.
        _, codes = np.unique(values, return_inverse=True)
        pairs = np.unique(np.stack([labels, codes.ravel()], axis=1), axis=0)
        per_cluster = np.bincount(pairs[:, 0], minlength=partition.n_clusters)
        np.minimum(counts, per_cluster, out=counts)
    return counts


def _merge_for_diversity(
    data: Microdata,
    partition: Partition,
    required: int,
    qi_matrix: np.ndarray,
) -> tuple[Partition, int]:
    """Merge clusters until every cluster holds >= ``required`` distinct values.

    Partner selection follows Algorithm 1's quality criterion: the violating
    cluster absorbs the cluster whose quasi-identifier centroid is nearest,
    so the repair costs as little information as the geometry allows.
    """
    table_counts = cluster_distinct_counts(data, Partition.single_cluster(data.n_records))
    if int(table_counts[0]) < required:
        raise PolicyInfeasibleError(
            f"policy requires {required} distinct confidential values per "
            f"class, but the table itself has only {int(table_counts[0])}"
        )

    n_merges = 0
    while True:
        counts = cluster_distinct_counts(data, partition)
        violators = np.flatnonzero(counts < required)
        if violators.size == 0:
            return partition, n_merges
        # Worst violator first (deterministic: lowest count, then lowest id).
        worst = int(violators[np.argmin(counts[violators])])
        centroids = np.stack(
            [qi_matrix[members].mean(axis=0) for members in partition.clusters()]
        )
        deltas = centroids - centroids[worst]
        d2 = np.einsum("ij,ij->i", deltas, deltas)
        d2[worst] = np.inf
        partner = int(np.argmin(d2))
        partition = partition.merge(worst, partner)
        n_merges += 1


def enforce_policy(
    data: Microdata,
    result: TClosenessResult,
    policy: PrivacyPolicy,
    *,
    model: ConfidentialModel | None = None,
    qi_matrix: np.ndarray | None = None,
    backend: ComputeBackend | str | None = None,
    progress=None,
) -> TClosenessResult:
    """Repair ``result`` until its partition satisfies ``policy``.

    Returns ``result`` itself — same object, bit-for-bit — when the
    partition already meets every requirement, so the repair step is free
    on the paths the algorithms already guarantee.  Otherwise returns a new
    :class:`TClosenessResult` whose ``info`` additionally records
    ``diversity_merges`` and ``repair_merges``.

    ``progress`` (a :class:`~repro.runtime.FitProgress`, or None) threads
    checkpoint ticks into the t-closeness merge loop under the
    ``"repair:merge"`` stage; the diversity pre-pass is cheap and replays
    deterministically on resume, so it is not checkpointed.

    Raises
    ------
    PolicyInfeasibleError
        If the table cannot satisfy the policy at all (fewer distinct
        confidential values than the policy demands per class).
    """
    partition = result.partition
    required = policy.required_distinct
    t = policy.t

    needs_diversity = required > 1 and bool(
        (cluster_distinct_counts(data, partition) < required).any()
    )
    needs_tightening = t is not None and result.max_emd > t + T_TOLERANCE
    if not needs_diversity and not needs_tightening:
        return result

    if qi_matrix is None:
        qi_matrix = encode_mixed(data, data.quasi_identifiers)
    if model is None:
        model = ConfidentialModel(data, emd_mode=result.info.get("emd_mode", "distinct"))

    diversity_merges = 0
    if needs_diversity:
        partition, diversity_merges = _merge_for_diversity(
            data, partition, required, qi_matrix
        )

    repair_merges = 0
    if t is not None:
        # Re-enforce t-closeness last: it merges only, so the diversity
        # repairs above (distinct counts grow under union) are preserved.
        partition, emds, repair_merges = merge_to_t_closeness(
            data,
            partition,
            t,
            model=model,
            qi_matrix=qi_matrix,
            backend=backend,
            progress=progress,
            stage="repair:merge",
        )
    else:
        emds = model.partition_emds(list(partition.clusters()))

    return TClosenessResult(
        algorithm=result.algorithm,
        k=result.k,
        t=result.t,
        partition=partition,
        cluster_emds=np.asarray(emds, dtype=np.float64),
        info={
            **result.info,
            "diversity_merges": diversity_merges,
            "repair_merges": repair_merges,
        },
    )
