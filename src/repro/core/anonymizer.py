"""High-level anonymization API.

Wraps the registered algorithms behind one entry point, applies the
aggregation step (quasi-identifiers → cluster representatives) and returns
the release plus the run's diagnostics.  :func:`anonymize` is the one-shot
convenience; the full lifecycle (policies beyond k/t, fit/transform,
serializable models) lives in :class:`repro.core.model.Anonymizer`, of
which everything here is a thin shim.

Algorithms are discovered through the :data:`repro.registry.METHODS`
registry — the paper's three ship pre-registered; extensions add their own
with ``@register_method("name")`` and become available to this function,
the CLI and the sweep runner alike.
"""

from __future__ import annotations

from typing import Callable

from ..backend import ComputeBackend
from ..data.dataset import Microdata

# Importing the algorithm modules registers the paper's three methods.
from ..registry import METHODS
from . import kanon_first, merge, tclose_first  # noqa: F401  (registration)
from .base import TClosenessResult
from .model import Anonymizer
from .policy import KAnonymity, TCloseness


def resolve_method(method: str) -> Callable[..., TClosenessResult]:
    """Look up a registered algorithm by name.

    The single validation path behind :func:`anonymize`,
    :class:`TClosenessAnonymizer`, the CLI and the sweep runner; unknown
    names raise a ``ValueError`` listing the registered alternatives.
    """
    return METHODS.resolve(method)


def anonymize(
    data: Microdata,
    k: int,
    t: float,
    *,
    method: str = "tclose-first",
    backend: ComputeBackend | str | None = None,
    **method_kwargs: object,
) -> tuple[Microdata, TClosenessResult]:
    """Produce a k-anonymous t-close release of ``data``.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned
        (identifier columns, if any, are dropped from the release).
    k:
        k-anonymity level (minimum records per equivalence class).
    t:
        t-closeness level (maximum EMD between any class's confidential
        distribution and the whole table's).
    method:
        A registered algorithm name: ``"merge"`` (Algorithm 1),
        ``"kanon-first"`` (Algorithm 2) or ``"tclose-first"`` (Algorithm 3,
        default — the paper's best performer on utility and speed).
    backend:
        Compute backend (registered name, instance or ``None`` for the
        ``REPRO_BACKEND`` environment default).  Releases are bit-for-bit
        identical under every registered backend.
    method_kwargs:
        Forwarded to the underlying algorithm (e.g. ``partitioner=`` for
        Algorithm 1, ``merge_fallback=`` for Algorithm 2).

    Returns
    -------
    (release, result):
        The anonymized dataset (quasi-identifiers replaced by cluster
        representatives, confidential attributes untouched, identifiers
        dropped) and the algorithm diagnostics.

    Notes
    -----
    This is a shim over ``Anonymizer(KAnonymity(k) & TCloseness(t),
    method=method).fit(data)``.  The repair phase engages only when the
    algorithm's raw output misses t (possible for Algorithm 3's
    extra-record clusters on small tables) — and is skipped entirely when
    the caller explicitly opted out of t enforcement with
    ``merge_fallback=False``, preserving that flag's raw-partition
    contract.
    """
    repair = method_kwargs.get("merge_fallback", True) is not False
    model = Anonymizer(
        KAnonymity(int(k)) & TCloseness(float(t)),
        method=method,
        repair=repair,
        backend=backend,
        **method_kwargs,
    ).fit(data)
    return model.release_, model.result_


class TClosenessAnonymizer(Anonymizer):
    """Backwards-compatible estimator: ``(k, t)`` instead of a policy.

    Example
    -------
    >>> from repro import TClosenessAnonymizer
    >>> from repro.data import load_mcd
    >>> anonymizer = TClosenessAnonymizer(k=5, t=0.15)
    >>> release = anonymizer.anonymize(load_mcd())
    >>> anonymizer.result_.satisfies_t
    True
    """

    def __init__(
        self,
        k: int,
        t: float,
        *,
        method: str = "tclose-first",
        **method_kwargs: object,
    ) -> None:
        repair = method_kwargs.get("merge_fallback", True) is not False
        super().__init__(
            KAnonymity(int(k)) & TCloseness(float(t)),
            method=method,
            repair=repair,
            **method_kwargs,
        )
        self.k = k
        self.t = t

    def anonymize(self, data: Microdata) -> Microdata:
        """Run the configured algorithm; diagnostics land in ``result_``."""
        return self.fit_transform(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TClosenessAnonymizer(k={self.k}, t={self.t}, "
            f"method={self.method!r})"
        )
