"""High-level anonymization API.

Wraps the three algorithms behind one entry point, applies the aggregation
step (quasi-identifiers → cluster representatives) and returns the release
plus the run's diagnostics.  This is the API the examples, the CLI and most
downstream users should touch.
"""

from __future__ import annotations

from typing import Callable

from ..data.dataset import Microdata
from ..microagg.aggregate import aggregate_partition
from .base import TClosenessResult
from .kanon_first import kanonymity_first
from .merge import microaggregation_merge
from .tclose_first import tcloseness_first

#: Registry of the paper's algorithms by their user-facing names.
METHODS: dict[str, Callable[..., TClosenessResult]] = {
    "merge": microaggregation_merge,
    "kanon-first": kanonymity_first,
    "tclose-first": tcloseness_first,
}


def anonymize(
    data: Microdata,
    k: int,
    t: float,
    *,
    method: str = "tclose-first",
    **method_kwargs: object,
) -> tuple[Microdata, TClosenessResult]:
    """Produce a k-anonymous t-close release of ``data``.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned
        (identifier columns, if any, are dropped from the release).
    k:
        k-anonymity level (minimum records per equivalence class).
    t:
        t-closeness level (maximum EMD between any class's confidential
        distribution and the whole table's).
    method:
        ``"merge"`` (Algorithm 1), ``"kanon-first"`` (Algorithm 2) or
        ``"tclose-first"`` (Algorithm 3, default — the paper's best
        performer on utility and speed).
    method_kwargs:
        Forwarded to the underlying algorithm (e.g. ``partitioner=`` for
        Algorithm 1, ``merge_fallback=`` for Algorithm 2).

    Returns
    -------
    (release, result):
        The anonymized dataset (quasi-identifiers replaced by cluster
        representatives, confidential attributes untouched, identifiers
        dropped) and the algorithm diagnostics.
    """
    if method not in METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(METHODS)}"
        )
    result = METHODS[method](data, k, t, **method_kwargs)
    release = aggregate_partition(data, result.partition).drop_identifiers()
    return release, result


class TClosenessAnonymizer:
    """Stateful wrapper around :func:`anonymize` (estimator-style).

    Example
    -------
    >>> from repro import TClosenessAnonymizer
    >>> from repro.data import load_mcd
    >>> anonymizer = TClosenessAnonymizer(k=5, t=0.15)
    >>> release = anonymizer.anonymize(load_mcd())
    >>> anonymizer.result_.satisfies_t
    True
    """

    def __init__(self, k: int, t: float, *, method: str = "tclose-first", **method_kwargs: object) -> None:
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(METHODS)}"
            )
        self.k = k
        self.t = t
        self.method = method
        self.method_kwargs = method_kwargs
        self.result_: TClosenessResult | None = None

    def anonymize(self, data: Microdata) -> Microdata:
        """Run the configured algorithm; diagnostics land in ``result_``."""
        release, result = anonymize(
            data, self.k, self.t, method=self.method, **self.method_kwargs
        )
        self.result_ = result
        return release

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TClosenessAnonymizer(k={self.k}, t={self.t}, "
            f"method={self.method!r})"
        )
