"""Algorithm 3 — t-closeness-first microaggregation.

Section 7 of the paper turns t-closeness from a *check* into a
*construction*:

1. From n, t and the requested k, compute the effective cluster size
   ``k' = max(k, ceil(n / (2(n-1)t + 1)))`` (Proposition 2 solved for k,
   Eq. 3), adjusted by Eq. 4 when k' does not divide n.
2. Sort the records by the confidential attribute and slice them into k'
   consecutive buckets of ``floor(n/k')`` records; the ``n mod k'``
   leftovers are parked as extra records of the central bucket(s) — close
   to the dataset median, where an extra record distorts the EMD least
   (Figures 3-4).
3. Build clusters MDAV-style, but pick each cluster's members as *one
   record per bucket* (the bucket member nearest, in quasi-identifier
   space, to the cluster's seed record).  Buckets holding extras contribute
   a second record to at most one cluster each.

Proposition 2 guarantees every such cluster is within
``(n-k')/(2(n-1)k') <= t`` of the table, so — uniquely among the three
algorithms — no EMD is ever computed during clustering, and the cost is
MDAV's O(n^2/k').

The guarantee is exact when k' divides n.  Otherwise both the uneven
buckets and the extra-record rule sit outside the proposition's setting,
and on small tables a cluster can land slightly above t; the release
lifecycle (:mod:`repro.core.repair`, run by ``Anonymizer``/``anonymize``)
re-merges such clusters so released tables always meet the declared
policy.  Call this function directly to study the raw construction.
"""

from __future__ import annotations

import numpy as np

from ..backend import ComputeBackend
from ..data.attributes import AttributeKind
from ..data.dataset import Microdata
from ..distance.records import encode_mixed
from ..microagg.engine import ClusteringEngine
from ..microagg.partition import Partition
from ..registry import register_method
from .base import TClosenessResult
from .bounds import emd_upper_bound, tclose_first_cluster_size
from .confidential import ConfidentialModel


def _bucket_sizes(n: int, k_eff: int) -> np.ndarray:
    """Bucket sizes: floor(n/k') everywhere, extras parked centrally.

    For odd k' all ``n mod k'`` extras go to the middle bucket; for even k'
    they are split between the two middle buckets (Figures 3 and 4).
    """
    base = n // k_eff
    r = n % k_eff
    sizes = np.full(k_eff, base, dtype=np.int64)
    if r:
        if k_eff % 2 == 1:
            sizes[(k_eff - 1) // 2] += r
        else:
            lower, upper = k_eff // 2 - 1, k_eff // 2
            sizes[lower] += (r + 1) // 2
            sizes[upper] += r // 2
    return sizes


@register_method("tclose-first")
def tcloseness_first(
    data: Microdata,
    k: int,
    t: float,
    *,
    emd_mode: str = "distinct",
    backend: ComputeBackend | str | None = None,
) -> TClosenessResult:
    """Algorithm 3: build every cluster t-close by construction.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier roles and exactly one *rankable*
        (numeric or ordinal) confidential attribute — the bucket
        construction needs a total order on confidential values.
    k:
        Minimum cluster size; the effective size may be larger when t is
        strict (Eq. 3).
    t:
        t-closeness level (``t > 0``; ``t = 0`` degenerates to one cluster).
    emd_mode:
        Flavour used for the *reported* per-cluster EMDs (the construction
        itself never computes EMD).
    backend:
        Compute backend for the distance primitives (name, instance or
        ``None`` for the ``REPRO_BACKEND`` default); partitions are
        backend-independent bit-for-bit.

    Returns
    -------
    TClosenessResult
        ``info`` records ``effective_k`` (the Eq. 3/4 cluster size),
        ``emd_bound`` (Proposition 2's guarantee for that size) and
        ``n_extra_records``.
    """
    n = data.n_records
    if n == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if len(data.confidential) != 1:
        raise ValueError(
            "tcloseness_first requires exactly one confidential attribute, "
            f"got {len(data.confidential)}"
        )
    conf_name = data.confidential[0]
    conf_spec = data.spec(conf_name)
    if conf_spec.kind is AttributeKind.NOMINAL:
        raise ValueError(
            f"confidential attribute {conf_name!r} is nominal; Algorithm 3 "
            "requires rankable (numeric or ordinal) confidential values"
        )

    k_eff = tclose_first_cluster_size(n, t, k)
    X = encode_mixed(data, data.quasi_identifiers)

    # Slice records (sorted by confidential value) into k_eff buckets.  The
    # concatenation of the buckets IS conf_order, so one pool array with
    # tombstones replaces the per-bucket pool arrays (``np.delete`` pops),
    # and one distance evaluation per seed replaces the per-bucket ones.
    conf_order = np.argsort(data.values(conf_name), kind="stable")
    sizes = _bucket_sizes(n, k_eff)
    base = n // k_eff
    extras_left = sizes - base
    bucket_alive = sizes.copy()  # live records per bucket

    engine = ClusteringEngine(X, backend=backend)
    clusters: list[np.ndarray] = []

    # Pool layout: pool[:pool_len] holds the record ids of every bucket,
    # bucket-major, each bucket in confidential order — dead entries are
    # tombstoned (alive_pool False) and physically dropped whenever the
    # engine compacts its window.  That keeps the invariant that every pool
    # entry is inside the engine window, so ``pool_pos`` (cached window
    # positions) gathers valid, freshly masked distances.
    pool = conf_order.copy()
    pool_len = n
    alive_pool = np.ones(n, dtype=bool)
    pool_pos = engine.positions_of(pool)  # window position of each entry
    boundaries = np.concatenate([[0], np.cumsum(bucket_alive)])
    compactions_seen = engine.n_compactions
    d2_pool = np.empty(n)  # distances gathered into pool layout

    def refresh_pool() -> None:
        """Drop tombstoned pool entries and re-cache window positions."""
        nonlocal pool_len, boundaries, compactions_seen
        live = np.flatnonzero(alive_pool[:pool_len])
        pool[: live.size] = pool[live]
        pool_len = live.size
        alive_pool[:pool_len] = True
        pool_pos[:pool_len] = engine.positions_of(pool[:pool_len])
        boundaries = np.concatenate([[0], np.cumsum(bucket_alive)])
        compactions_seen = engine.n_compactions

    def build_cluster(seed: int) -> np.ndarray:
        """One cluster: the bucket member nearest to the seed, per bucket."""
        nonlocal extras_left
        engine.eval_distances(engine.row(seed))
        if engine.n_compactions != compactions_seen:
            refresh_pool()
        # Records killed by earlier clusters read +inf through the mask, so
        # tombstoned pool entries never win an argmin below.
        d2 = engine.masked_distances(np.inf)
        np.take(d2, pool_pos[:pool_len], out=d2_pool[:pool_len])

        if not extras_left.any() and bucket_alive.min() > 0:
            # Steady state (extras exhausted, every bucket populated): the
            # cluster is exactly one pick per bucket — the first minimum of
            # each bucket segment, found without a Python loop.
            starts = boundaries[:-1]
            mins = np.minimum.reduceat(d2_pool[:pool_len], starts)
            hits = np.flatnonzero(
                d2_pool[:pool_len] == np.repeat(mins, np.diff(boundaries))
            )
            picks = hits[np.searchsorted(hits, starts)]
            alive_pool[picks] = False
            bucket_alive[:] -= 1
            members = pool[picks].astype(np.int64, copy=True)
            engine.kill(members)
            return members

        chosen: list[int] = []
        extra_taken = False

        def take_nearest(i: int) -> None:
            """Pop the bucket-i record nearest to the seed (ties: first)."""
            b0, b1 = boundaries[i], boundaries[i + 1]
            pos = b0 + int(np.argmin(d2_pool[b0:b1]))
            chosen.append(int(pool[pos]))
            alive_pool[pos] = False
            d2_pool[pos] = np.inf
            bucket_alive[i] -= 1

        for i in range(k_eff):
            if bucket_alive[i] == 0:  # pragma: no cover - pools stay even
                continue
            take_nearest(i)
            # The paper's extra-record rule: a central bucket still holding
            # leftovers donates a second record, at most once per cluster.
            if extras_left[i] > 0 and not extra_taken and bucket_alive[i]:
                take_nearest(i)
                extras_left[i] -= 1
                extra_taken = True
        members = np.asarray(chosen, dtype=np.int64)
        engine.kill(members)
        return members

    while engine.n_alive:
        x0 = engine.farthest_from_centroid()
        clusters.append(build_cluster(x0))

        if engine.n_alive:
            # build_cluster left the distances to x0 in the buffer; reuse
            # them to seed the second cluster of the round.
            x1 = engine.farthest()
            clusters.append(build_cluster(x1))

    partition = Partition.from_clusters(clusters, n)
    partition.validate_min_size(min(k, k_eff))
    model = ConfidentialModel(data, emd_mode=emd_mode)
    emds = model.partition_emds(list(partition.clusters()))

    return TClosenessResult(
        algorithm="tclose-first",
        k=k,
        t=t,
        partition=partition,
        cluster_emds=emds,
        info={
            "effective_k": k_eff,
            "emd_bound": emd_upper_bound(n, k_eff),
            "n_extra_records": int(n % k_eff),
            "emd_mode": emd_mode,
        },
    )
