"""Analytic EMD bounds and cluster-size selection (Propositions 1-2, Eqs. 3-4).

These are the closed-form results that make the paper's t-closeness-first
algorithm (Algorithm 3) possible: instead of *checking* EMD cluster by
cluster, the algorithm derives — before clustering — the cluster size that
*guarantees* every cluster built by its bucket construction is t-close.

All formulas are stated for the rank-based EMD (each of the n records is a
bin of mass 1/n; the ground distance between ranks i and j is
``|i - j| / (n - 1)``), which is how the paper proves them.
"""

from __future__ import annotations

import math


def emd_lower_bound(n: int, k: int) -> float:
    """Proposition 1: minimum achievable EMD of any k-record cluster.

    ``EMD_A(C, T) >= (n + k)(n - k) / (4 n (n - 1) k)`` for every cluster C
    of k records drawn from a data set T of n distinctly ranked values; the
    bound is tight when k divides n (take the median of each of the k
    consecutive n/k-blocks).
    """
    _validate(n, k)
    if n == 1:
        return 0.0
    return (n + k) * (n - k) / (4.0 * n * (n - 1) * k)


def emd_upper_bound(n: int, k: int) -> float:
    """Proposition 2: maximum EMD of a one-record-per-bucket cluster.

    If T is split into k consecutive (by confidential rank) buckets of n/k
    records and C takes exactly one record from each bucket, then
    ``EMD(C, T) <= (n - k) / (2 (n - 1) k)`` — no matter which record is
    picked in each bucket.  This freedom of choice is what lets Algorithm 3
    pick bucket representatives by quasi-identifier proximity.
    """
    _validate(n, k)
    if n == 1:
        return 0.0
    return (n - k) / (2.0 * (n - 1) * k)


def required_cluster_size(n: int, t: float, k: int = 1) -> int:
    """Equation (3): the cluster size Algorithm 3 must use.

    Solving Proposition 2's bound ``(n - k')/(2(n - 1)k') <= t`` for the
    bucket count k' gives ``k' >= n / (2(n - 1)t + 1)``; combined with the
    caller's k-anonymity requirement the cluster size is
    ``max(k, ceil(n / (2(n - 1)t + 1)))``.

    Parameters
    ----------
    n:
        Number of records in the data set.
    t:
        Desired t-closeness level (``t >= 0``; ``t = 0`` forces one single
        cluster of all n records).
    k:
        Desired k-anonymity level (the floor on the answer).
    """
    _validate(n, k)
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    denominator = 2.0 * (n - 1) * t + 1.0
    needed = math.ceil(n / denominator - 1e-12)  # tolerate float round-off
    return min(n, max(k, needed))


def adjust_cluster_size(n: int, k: int) -> int:
    """Equation (4): absorb an oversized remainder by growing k.

    With cluster size k, Algorithm 3 forms ``floor(n/k)`` clusters and has
    ``r = n mod k`` leftover records, each parked as a second record of a
    middle bucket.  That only works while ``r <= floor(n/k)`` (at most one
    extra record per cluster); otherwise every cluster would receive more
    than one extra and the honest thing is to increase k:
    ``k <- k + floor(r / floor(n/k))``.  Applied iteratively until the
    remainder fits (the paper applies it once, which suffices for all its
    parameter choices; iteration covers the general case).
    """
    _validate(n, k)
    while True:
        n_clusters = n // k
        if n_clusters == 0:  # pragma: no cover - excluded by _validate (k <= n)
            return n
        r = n % k
        bump = r // n_clusters
        if bump == 0:
            return k
        k = min(n, k + bump)
        if k == n:
            return n


def tclose_first_cluster_size(n: int, t: float, k: int = 1) -> int:
    """The effective cluster size Algorithm 3 uses: Eq. (3) then Eq. (4)."""
    return adjust_cluster_size(n, required_cluster_size(n, t, k))


def _validate(n: int, k: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
