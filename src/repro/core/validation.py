"""Input validation at the fit/anonymize and serving boundaries.

The algorithms assume finite quasi-identifier geometry and at least k
records; violated assumptions used to surface as numpy warnings or
nonsense partitions deep inside the clustering engine.  This module
front-loads those checks into typed errors that name the offending
column and row, raised before any expensive work starts.

All errors subclass :class:`ValidationError`, itself a ``ValueError`` —
existing callers catching ``ValueError`` keep working.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Microdata


class ValidationError(ValueError):
    """Base of all input-validation failures (a ``ValueError``)."""


class DataValidationError(ValidationError):
    """Fit/anonymize input data is unusable (empty, too small, non-finite)."""


class BatchSchemaError(ValidationError):
    """A serving batch does not match the fitted schema."""


def validate_fit_data(data: Microdata, *, k: int | None = None) -> None:
    """Validate a table at the fit/anonymize boundary.

    Checks, in order: the table is non-empty; it has at least ``k``
    records (when a k-anonymity level is declared, clusters of size k
    cannot be formed otherwise); and every numeric quasi-identifier and
    confidential column is finite — NaN or infinity would silently poison
    every distance and EMD the algorithms compute.  Errors name the
    offending column and the first offending row.
    """
    n = data.n_records
    if n == 0:
        raise DataValidationError(
            "cannot fit on an empty table (0 records); check the input path "
            "and any filtering applied before fit"
        )
    if k is not None and n < k:
        raise DataValidationError(
            f"cannot form clusters of k={k} records from a table with only "
            f"{n} record{'s' if n != 1 else ''}; lower k or supply more data"
        )
    for name in (*data.quasi_identifiers, *data.confidential):
        spec = data.spec(name)
        if not spec.is_numeric:
            continue  # categorical codes are integers by construction
        column = data.values(name)
        finite = np.isfinite(column)
        if not finite.all():
            row = int(np.argmin(finite))
            value = column[row]
            raise DataValidationError(
                f"column {name!r} contains a non-finite value ({value!r} at "
                f"row {row}); impute or drop non-finite entries before fit"
            )
