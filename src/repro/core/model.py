"""Fitted anonymization models: fit → transform → save/load.

:func:`repro.anonymize` is one-shot: partition, aggregate, release.  A
production deployment amortizes that work — the expensive clustering runs
once on a reference table (**fit**), and the fitted state (partition,
per-cluster representatives, the declared privacy policy and a structured
:class:`RunReport`) then serves incoming batches (**transform**) by
mapping each new record onto the nearest fitted representative, exactly
the generalization a k-anonymous release promises.  The fitted state
serializes to an ``.npz`` + JSON sidecar pair (:meth:`Anonymizer.save` /
:meth:`Anonymizer.load`), so a model fitted offline ships to stateless
server workers.

    >>> from repro import Anonymizer, KAnonymity, TCloseness
    >>> model = Anonymizer(KAnonymity(5) & TCloseness(0.15)).fit(data)
    >>> release = model.release_                 # the fitted table's release
    >>> served = model.transform(batch)          # new records, same geometry
    >>> model.save("model.npz")                  # + model.json sidecar

Long fits are crash-safe: ``fit(data, checkpoint=dir)`` snapshots every
phase boundary (and progress inside the long clustering loops) to a
:class:`~repro.runtime.CheckpointStore`, and ``Anonymizer.resume(dir)``
continues a killed run with output **bit-for-bit identical** to an
uninterrupted one.  All artifact writes are atomic and checksummed
(:mod:`repro.runtime.atomic`); damaged or version-skewed files surface as
typed :class:`~repro.runtime.ArtifactError`\\ s.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from ..backend import ComputeBackend, accepts_backend, resolve_backend
from ..data.attributes import AttributeSpec
from ..data.dataset import Microdata
from ..distance.records import QIEncoder
from ..microagg.aggregate import aggregate_partition, cluster_centroids
from ..microagg.partition import Partition
from ..registry import METHODS
from ..runtime.atomic import array_checksums, atomic_write_json, atomic_write_npz
from ..runtime.checkpoint import CheckpointStore, FitProgress, accepts_progress
from ..runtime.faults import fault_point
from ..runtime.serialize import (
    microdata_from_state,
    microdata_to_state,
    spec_from_dict,
    spec_to_dict,
)
from .base import TClosenessResult
from .policy import PrivacyPolicy, as_policy
from .repair import enforce_policy
from .validation import validate_fit_data

# Imported last, on purpose: repro.serving.model depends only on leaf core
# modules (policy, validation) — never on this one — so the core↔serving
# cycle resolves here.  MODEL_FORMAT_VERSION stays importable from this
# module (it describes Anonymizer.save's artifact, and tests pin it here);
# its definition moved next to the shared artifact reader.
from ..serving.model import (
    MODEL_FORMAT_VERSION,
    TransformModel,
    read_model_artifact,
)

#: Pipeline phases of one fit, in execution order.
FIT_PHASES = ("cluster", "repair", "aggregate", "verify")


@dataclass(frozen=True)
class RunReport:
    """Structured diagnostics of one ``fit`` run.

    Replaces spelunking through the untyped ``info`` dict: the quantities
    every release decision needs are first-class fields, per-phase timings
    are a mapping, and algorithm-specific counters stay available under
    ``details``.

    Attributes
    ----------
    algorithm:
        Registered method name that produced the partition.
    policy:
        Canonical spec string of the declared policy (``"k=5,t=0.15"``).
    n_records, n_clusters, min_cluster_size, mean_cluster_size, max_emd:
        Shape and achieved t-closeness of the fitted partition.
    satisfied:
        Whether the fitted partition meets every declared requirement.
    achieved:
        Measured level per requirement key (``{"k": 5, "t": 0.12, ...}``).
    timings:
        Wall-clock seconds per phase: ``cluster``, ``repair``,
        ``aggregate``, ``verify``.  For a resumed fit, phases completed
        before the crash report the time recorded at their checkpoint.
    details:
        Algorithm-specific counters (the former ``info`` dict, plus the
        repair counters when the repair phase engaged).
    """

    algorithm: str
    policy: str
    n_records: int
    n_clusters: int
    min_cluster_size: int
    mean_cluster_size: float
    max_emd: float
    satisfied: bool
    achieved: Mapping[str, float] = field(default_factory=dict)
    timings: Mapping[str, float] = field(default_factory=dict)
    details: Mapping[str, object] = field(default_factory=dict)

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Run report",
            "----------",
            f"algorithm        : {self.algorithm}",
            f"policy           : {self.policy} "
            f"({'satisfied' if self.satisfied else 'NOT satisfied'})",
            f"records          : {self.n_records}",
            f"clusters         : {self.n_clusters} "
            f"(min {self.min_cluster_size}, avg {self.mean_cluster_size:.1f})",
            f"max EMD          : {self.max_emd:.4f}",
        ]
        for key in sorted(self.achieved):
            lines.append(f"achieved {key:<8}: {self.achieved[key]:g}")
        for phase in FIT_PHASES:
            if phase in self.timings:
                lines.append(f"{phase + ' time':<17}: {self.timings[phase]:.3f}s")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready payload (numpy scalars coerced to Python numbers)."""
        return {
            "algorithm": self.algorithm,
            "policy": self.policy,
            "n_records": int(self.n_records),
            "n_clusters": int(self.n_clusters),
            "min_cluster_size": int(self.min_cluster_size),
            "mean_cluster_size": float(self.mean_cluster_size),
            "max_emd": float(self.max_emd),
            "satisfied": bool(self.satisfied),
            "achieved": {k: float(v) for k, v in self.achieved.items()},
            "timings": {k: float(v) for k, v in self.timings.items()},
            "details": _json_safe(dict(self.details)),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


class NotFittedError(RuntimeError):
    """Raised when a lifecycle operation needs a fitted model."""


class Anonymizer:
    """Policy-driven anonymization model with a fit/transform lifecycle.

    Parameters
    ----------
    policy:
        A :class:`~repro.core.policy.PrivacyPolicy`, a single requirement,
        a spec string (``"k=5,t=0.15"``) or a mapping (``{"k": 5}``).
    method:
        Registered algorithm name (see ``repro.METHODS``); the method
        receives the policy's k and t, and the repair phase enforces any
        further requirements (l-diversity, p-sensitivity) by merging.
    repair:
        Run the post-clustering policy repair (:func:`~repro.core.repair.enforce_policy`).
        Disable only to study an algorithm's raw output — the released
        table may then violate the declared policy.
    backend:
        Compute backend executing the hot primitives of every phase —
        clustering, repair and batch ``transform``/``assign`` serving: a
        registered name (``"serial"``, ``"threaded"``), a
        :class:`~repro.backend.ComputeBackend` instance, or ``None`` for
        the ``REPRO_BACKEND`` environment default.  A pure execution
        choice: fitted results, releases and transforms are bit-for-bit
        identical under every registered backend, and the choice is *not*
        serialized — :meth:`load` takes its own ``backend`` argument.
    method_kwargs:
        Forwarded to the algorithm (e.g. ``partitioner=`` for ``"merge"``).
    """

    def __init__(
        self,
        policy: PrivacyPolicy | object,
        *,
        method: str = "tclose-first",
        repair: bool = True,
        backend: ComputeBackend | str | None = None,
        **method_kwargs: object,
    ) -> None:
        self.policy = as_policy(policy)
        self._method_fn = METHODS.resolve(method)  # eager: unknown names fail here
        self.method = method
        self.repair = repair
        self.backend = resolve_backend(backend)  # eager: unknown names fail here
        self.method_kwargs = method_kwargs
        self._fitted = False
        self.result_: TClosenessResult | None = None
        self.release_: Microdata | None = None
        self.report_: RunReport | None = None
        self._serving: TransformModel | None = None

    # -- lifecycle ---------------------------------------------------------------

    def fit(
        self,
        data: Microdata,
        *,
        checkpoint: str | Path | None = None,
        checkpoint_every_swaps: int = 2048,
        checkpoint_every_merges: int = 64,
        checkpoint_min_interval_s: float = 0.0,
    ) -> "Anonymizer":
        """Cluster ``data`` under the policy and keep the fitted state.

        Phases (timed individually in ``report_.timings``): **cluster**
        (the registered algorithm at the policy's k and t), **repair**
        (policy enforcement by merging — a no-op when the algorithm's
        output already complies), **aggregate** (per-cluster
        representatives and the fitted table's release) and **verify**
        (measuring every declared requirement on the fitted partition).

        With ``checkpoint=dir``, every phase boundary — and progress
        inside the long swap/merge loops, every ``checkpoint_every_swaps``
        accepted swaps / ``checkpoint_every_merges`` merges, at most one
        snapshot per ``checkpoint_min_interval_s`` seconds — is durably
        snapshotted to ``dir``, and :meth:`resume` continues a killed run
        bit-for-bit.  Checkpoint cadence never changes the fitted output,
        only how often it is persisted.  Re-running the identical
        checkpointed fit after a crash also simply continues.
        """
        validate_fit_data(data, k=self.policy.k)
        store: CheckpointStore | None = None
        progress: FitProgress | None = None
        if checkpoint is not None:
            store = CheckpointStore.open(
                checkpoint, config=self._fit_config(), data=data
            )
            progress = FitProgress(
                store,
                every_swaps=checkpoint_every_swaps,
                every_merges=checkpoint_every_merges,
                min_interval_s=checkpoint_min_interval_s,
            )
        return self._run_fit(data, store, progress)

    @classmethod
    def resume(
        cls,
        checkpoint: str | Path,
        *,
        backend: ComputeBackend | str | None = None,
        checkpoint_every_swaps: int = 2048,
        checkpoint_every_merges: int = 64,
        checkpoint_min_interval_s: float = 0.0,
    ) -> "Anonymizer":
        """Continue a killed checkpointed fit from its directory alone.

        The checkpoint embeds the input data and the full fit
        configuration, so only the directory is needed; completed phases
        are loaded, the interrupted phase restarts from its last progress
        snapshot, and the finished model is **bit-for-bit identical** to
        what the uninterrupted run would have produced (labels, EMDs,
        counters — pinned by the crash/resume test matrix).  ``backend``
        is a pure execution choice, as in :meth:`load`.
        """
        store = CheckpointStore.load(checkpoint)
        config = store.config
        model = cls(
            PrivacyPolicy.from_dict(config["policy"]),
            method=config["method"],
            repair=config["repair"],
            backend=backend,
            **config["method_kwargs"],
        )
        data = store.load_data()
        progress = FitProgress(
            store,
            every_swaps=checkpoint_every_swaps,
            every_merges=checkpoint_every_merges,
            min_interval_s=checkpoint_min_interval_s,
        )
        return model._run_fit(data, store, progress)

    def _fit_config(self) -> dict:
        """JSON-able fit configuration (checkpoint identity, minus cadence)."""
        config = {
            "policy": self.policy.to_dict(),
            "method": self.method,
            "repair": bool(self.repair),
            "method_kwargs": dict(self.method_kwargs),
        }
        try:
            json.dumps(config, sort_keys=True)
        except TypeError:
            raise ValueError(
                "checkpointed fits require JSON-serializable method kwargs; "
                f"got {self.method_kwargs!r} — pass registered names instead "
                "of callables, or fit without checkpoint="
            ) from None
        return config

    def _run_fit(
        self,
        data: Microdata,
        store: CheckpointStore | None,
        progress: FitProgress | None,
    ) -> "Anonymizer":
        """The phase pipeline: cluster → repair → aggregate → verify.

        Each phase either replays from its checkpoint (already done) or
        computes and — when checkpointing — durably commits its output
        before the next phase starts.  The ``fit.phase:<name>`` fault
        points fire right after each commit, the exact boundary the
        crash/resume matrix kills at.
        """
        timings: dict[str, float] = {}
        t_level = self.policy.t if self.policy.t is not None else math.inf

        def run_phase(name: str, compute, to_state, from_state):
            if store is not None and store.phase_done(name):
                state = store.load_phase(name)
                timings[name] = float(state.get("seconds", 0.0))
                return from_state(state)
            start = time.perf_counter()
            value = compute()
            timings[name] = time.perf_counter() - start
            if store is not None:
                state = to_state(value)
                state["seconds"] = timings[name]
                store.complete_phase(name, state)
                fault_point(f"fit.phase:{name}")
            return value

        def compute_cluster():
            method_kwargs = dict(self.method_kwargs)
            if accepts_backend(self._method_fn):
                method_kwargs.setdefault("backend", self.backend)
            if progress is not None and accepts_progress(self._method_fn):
                method_kwargs.setdefault("progress", progress)
            return self._method_fn(data, self.policy.k, t_level, **method_kwargs)

        result = run_phase(
            "cluster", compute_cluster, _result_to_state, _result_from_state
        )

        def compute_repair():
            if not self.repair:
                return result
            kwargs = {}
            if progress is not None:
                kwargs["progress"] = progress
            return enforce_policy(
                data, result, self.policy, backend=self.backend, **kwargs
            )

        result = run_phase(
            "repair", compute_repair, _result_to_state, _result_from_state
        )

        def compute_aggregate():
            release = aggregate_partition(data, result.partition).drop_identifiers()
            qi_names = data.quasi_identifiers
            representatives = cluster_centroids(data, result.partition, qi_names)
            encoder = QIEncoder.fit(data, qi_names)
            encoded = encoder.encode(representatives)
            return release, qi_names, representatives, encoder, encoded

        def aggregate_to_state(value):
            release, qi_names, representatives, encoder, encoded = value
            return {
                "release": microdata_to_state(release),
                "qi_names": list(qi_names),
                "representatives": representatives,
                "encoded_representatives": encoded,
                "encoder": encoder.to_dict(),
            }

        def aggregate_from_state(state):
            return (
                microdata_from_state(state["release"]),
                tuple(state["qi_names"]),
                state["representatives"],
                QIEncoder.from_dict(state["encoder"]),
                state["encoded_representatives"],
            )

        release, qi_names, representatives, encoder, encoded = run_phase(
            "aggregate", compute_aggregate, aggregate_to_state, aggregate_from_state
        )

        def compute_verify():
            return self._measure(data, result)

        result_final = result
        achieved, satisfied = run_phase(
            "verify",
            compute_verify,
            lambda value: {
                "achieved": {k: float(v) for k, v in value[0].items()},
                "satisfied": bool(value[1]),
            },
            lambda state: (dict(state["achieved"]), bool(state["satisfied"])),
        )

        self.result_ = result_final
        self.release_ = release
        self.report_ = RunReport(
            algorithm=result_final.algorithm,
            policy=self.policy.spec(),
            n_records=data.n_records,
            n_clusters=result_final.partition.n_clusters,
            min_cluster_size=result_final.min_cluster_size,
            mean_cluster_size=result_final.mean_cluster_size,
            max_emd=result_final.max_emd,
            satisfied=satisfied,
            achieved=achieved,
            timings=timings,
            details=dict(result_final.info),
        )
        self._serving = TransformModel(
            schema=data.schema,
            qi_names=qi_names,
            representatives=representatives,
            encoder=encoder,
            policy=self.policy,
            method=self.method,
            algorithm=result_final.algorithm,
            report=self.report_.to_dict(),
            backend=self.backend,
            encoded_representatives=encoded,
        )
        self._fitted = True
        return self

    def _measure(
        self, data: Microdata, result: TClosenessResult
    ) -> tuple[dict[str, float], bool]:
        """Achieved level per declared requirement, on the fitted partition."""
        from .policy import (  # local: keep module-level imports acyclic-simple
            DistinctLDiversity,
            KAnonymity,
            PSensitivity,
            TCloseness,
        )
        from .repair import cluster_distinct_counts

        achieved: dict[str, float] = {}
        satisfied = True
        distinct: int | None = None
        for req in self.policy:
            if isinstance(req, KAnonymity):
                level: float = result.partition.min_size
            elif isinstance(req, TCloseness):
                level = result.max_emd
            elif isinstance(req, (DistinctLDiversity, PSensitivity)):
                if distinct is None:
                    distinct = int(
                        cluster_distinct_counts(data, result.partition).min()
                    )
                level = distinct
            else:  # pragma: no cover - future requirement types
                continue
            achieved[req.key] = float(level)
            satisfied = satisfied and req.satisfied_by(level)
        return achieved, satisfied

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # -- transform-time state (owned by the serving split) -------------------------

    @property
    def transform_model_(self) -> TransformModel | None:
        """The fitted :class:`~repro.serving.TransformModel` (None unfitted).

        The minimal transform-time state — schema, quasi-identifier
        names, representatives, encoder, policy metadata — split out of
        this class so the serving layer never holds fit-time engine
        state.  ``transform``/``assign`` delegate to it, so both paths
        are one implementation and stay bit-for-bit identical.
        """
        return self._serving

    @property
    def _schema(self) -> tuple[AttributeSpec, ...] | None:
        """Fitted table schema (read-only view onto the serving split)."""
        return self._serving.schema if self._serving is not None else None

    @property
    def _qi_names(self) -> tuple[str, ...]:
        """Fitted quasi-identifier names (read-only view)."""
        return self._serving.qi_names if self._serving is not None else ()

    @property
    def _representatives(self) -> np.ndarray | None:
        """Per-cluster representative rows (read-only view)."""
        return self._serving.representatives if self._serving is not None else None

    @property
    def _encoded_representatives(self) -> np.ndarray | None:
        """Encoded representatives (read-only view)."""
        if self._serving is None:
            return None
        return self._serving.encoded_representatives

    @property
    def _encoder(self) -> QIEncoder | None:
        """Fitted :class:`~repro.distance.records.QIEncoder` (read-only view)."""
        return self._serving.encoder if self._serving is not None else None

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "this Anonymizer is not fitted; call fit(data) or load(path) first"
            )

    def fit_transform(self, data: Microdata) -> Microdata:
        """Fit on ``data`` and return its release (the one-shot path)."""
        return self.fit(data).release_

    def transform(self, batch: Microdata) -> Microdata:
        """Anonymize new records against the fitted representatives.

        Each batch record's quasi-identifiers are replaced by those of the
        nearest fitted cluster representative (squared Euclidean distance
        in the *fit* data's encoded geometry; exact ties resolve to the
        lowest cluster id).  Confidential and non-confidential columns
        pass through untouched; identifier columns are dropped.

        Delegates to the fitted :class:`~repro.serving.TransformModel`'s
        staged pipeline: one schema scan, one encoding and one backend
        query per batch (the pre-split code scanned the schema twice).
        """
        self._require_fitted()
        return self._serving.transform(batch, backend=self.backend)

    def assign(self, batch: Microdata) -> np.ndarray:
        """Nearest fitted cluster id for each batch record.

        One backend-executed nearest-representative query
        (:meth:`~repro.backend.ComputeBackend.assign_nearest`) over the
        whole batch — the canonical distance kernel per record against
        every fitted representative, exact ties to the lowest cluster id,
        bit-for-bit the per-cluster loop this replaced (pinned by
        ``tests/core/test_transform_vectorized.py``).  The threaded
        backend shards the batch rows across its worker pool.
        """
        self._require_fitted()
        return self._serving.assign(batch, backend=self.backend)

    def _check_batch_schema(self, batch: Microdata) -> None:
        """Validate a serving batch (delegates to the serving split)."""
        self._serving.check_batch(batch)

    def batch_schema(
        self, available: tuple[str, ...] | None = None
    ) -> tuple[AttributeSpec, ...]:
        """Schema for reading serving batches (e.g. ``read_csv(path, schema=...)``).

        The fitted schema minus identifier columns (a serving batch should
        not carry direct identifiers; any that do appear are dropped by
        :meth:`transform` anyway).  With ``available`` (e.g. a CSV header),
        the schema is additionally filtered to the columns actually
        present — every quasi-identifier must still be among them.
        """
        self._require_fitted()
        return self._serving.batch_schema(available)

    # -- policy audit -------------------------------------------------------------

    def audit(self, original: Microdata | None = None, *, posture: bool = True):
        """Independent policy audit of the fitted release.

        Recomputes every declared requirement from the released table alone
        (see :func:`repro.privacy.audit.audit_policy`) — nothing is trusted
        from the fit run.  The EMD flavour follows the fitted run's
        ``emd_mode`` (recorded in ``result_.info``, so it survives
        ``save``/``load``): a policy enforced under rank-mode EMDs is
        audited under rank-mode EMDs.  ``posture=False`` skips the bundled
        model-agnostic posture report and computes only the
        per-requirement verdicts.
        """
        self._require_fitted()
        from ..privacy.audit import audit_policy  # local: privacy imports core

        return audit_policy(
            self.release_,
            self.policy,
            original,
            emd_mode=str(self.result_.info.get("emd_mode", "distinct")),
            posture=posture,
        )

    # -- serialization ------------------------------------------------------------

    def save(self, path: str | Path) -> tuple[Path, Path]:
        """Write the fitted model to ``path`` (.npz) + a ``.json`` sidecar.

        The npz holds the arrays (partition labels, per-cluster EMDs, raw
        quasi-identifier representatives); the sidecar holds everything
        human-auditable — policy, schema, encoder parameters, the run
        report — plus a SHA-256 checksum of every array, which
        :meth:`load` verifies.  Both files are written atomically
        (temp + fsync + rename), npz first: a crash mid-save leaves
        either the old pair intact or a pair whose mismatch :meth:`load`
        detects with a typed error — never a silently inconsistent model.
        Returns the two paths written.
        """
        self._require_fitted()
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        sidecar = path.with_suffix(".json")
        arrays = {
            "labels": np.asarray(self.result_.partition.labels),
            "cluster_emds": np.asarray(self.result_.cluster_emds),
            "representatives": np.asarray(self._representatives),
        }
        payload = {
            "format_version": MODEL_FORMAT_VERSION,
            "policy": self.policy.to_dict(),
            "method": self.method,
            "algorithm": self.result_.algorithm,
            "result_k": int(self.result_.k),
            "result_t": _json_float(self.result_.t),
            "info": _json_safe(dict(self.result_.info)),
            "qi_names": list(self._qi_names),
            "schema": [spec_to_dict(s) for s in self._schema],
            "encoder": self._encoder.to_dict(),
            "report": self.report_.to_dict(),
            "checksums": array_checksums(arrays),
        }
        atomic_write_npz(path, arrays)
        atomic_write_json(sidecar, payload)
        return path, sidecar

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        backend: ComputeBackend | str | None = None,
        mmap_mode: str | None = None,
    ) -> "Anonymizer":
        """Rebuild a fitted model from :meth:`save` output.

        The loaded model serves ``transform``/``assign``/``save`` and keeps
        ``result_`` and ``report_``; the fitted table itself is not stored,
        so ``release_`` is None and ``fit`` must be called with data to
        refit.  ``backend`` selects the compute backend for serving (the
        fitted state is backend-free, so a model saved under one backend
        loads and transforms identically under any other — pinned by the
        lifecycle property tests).

        ``mmap_mode="r"`` memory-maps the artifact's arrays read-only in
        place instead of copying them into private memory, so multiple
        serving workers loading the same model share one set of
        page-cache pages (see :func:`repro.runtime.atomic.read_npz`);
        the loaded state is value-identical either way.

        Artifact damage surfaces as typed errors instead of numpy
        tracebacks: a missing file raises
        :class:`~repro.runtime.ArtifactMissingError`, truncation /
        bit flips / an npz–sidecar mismatch raise
        :class:`~repro.runtime.ArtifactCorruptError`, and a format the
        build cannot read raises
        :class:`~repro.runtime.ArtifactVersionError`.
        """
        payload, arrays, _ = read_model_artifact(path, mmap_mode=mmap_mode)
        model = cls(
            PrivacyPolicy.from_dict(payload["policy"]),
            method=payload["method"],
            backend=backend,
        )
        model.result_ = TClosenessResult(
            algorithm=payload["algorithm"],
            k=payload["result_k"],
            t=_from_json_float(payload["result_t"]),
            partition=Partition(arrays["labels"]),
            cluster_emds=arrays["cluster_emds"],
            info=dict(payload["info"]),
        )
        model._serving = TransformModel.from_artifact(
            payload, arrays, backend=model.backend
        )
        model.report_ = RunReport.from_dict(payload["report"])
        model._fitted = True
        return model

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self._fitted else "unfitted"
        return (
            f"Anonymizer(policy={self.policy.spec()!r}, "
            f"method={self.method!r}, {state})"
        )


# -- (de)serialization helpers ----------------------------------------------------

#: Backwards-compatible aliases (the canonical versions moved to
#: :mod:`repro.runtime.serialize`, shared with the checkpoint store).
_spec_to_dict = spec_to_dict
_spec_from_dict = spec_from_dict


def _result_to_state(result: TClosenessResult) -> dict:
    """Checkpoint state tree of one algorithm result (bitwise arrays)."""
    return {
        "labels": np.asarray(result.partition.labels),
        "cluster_emds": np.asarray(result.cluster_emds),
        "meta": {
            "algorithm": result.algorithm,
            "k": int(result.k),
            "t": _json_float(result.t),
            "info": _json_safe(dict(result.info)),
        },
    }


def _result_from_state(state: dict) -> TClosenessResult:
    """Inverse of :func:`_result_to_state`."""
    meta = state["meta"]
    return TClosenessResult(
        algorithm=meta["algorithm"],
        k=int(meta["k"]),
        t=_from_json_float(meta["t"]),
        partition=Partition(state["labels"]),
        cluster_emds=state["cluster_emds"],
        info=dict(meta["info"]),
    )


def _json_float(value: float) -> float | str:
    """JSON has no inf/nan literals; encode them as strings."""
    value = float(value)
    if math.isfinite(value):
        return value
    return repr(value)


def _from_json_float(value: float | str) -> float:
    return float(value)


def _json_safe(obj: object) -> object:
    """Recursively coerce numpy scalars/arrays to JSON-ready Python values."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [_json_safe(v) for v in obj.tolist()]
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return _json_float(float(obj))
    return obj
