"""Algorithm 1 — standard microaggregation followed by cluster merging.

The simplest route to k-anonymous t-closeness (Section 5 of the paper):

1. run any microaggregation heuristic (MDAV by default) on the
   quasi-identifiers with minimum cluster size k;
2. while some cluster's confidential-attribute distribution is farther than
   t from the whole table's, take the *worst* such cluster and merge it with
   the cluster whose quasi-identifier centroid is nearest.

Termination is guaranteed: in the worst case everything collapses into a
single cluster, whose EMD to the table is zero.  The merging phase is
exposed separately (:func:`merge_to_t_closeness`) because the paper reuses
it as the closing step of Algorithm 2, which cannot guarantee t-closeness
on its own.

Implementation notes — the phase runs on incremental state end to end:

* per-cluster EMDs are evaluated sparsely (O(c log m) segment evaluation,
  :meth:`~repro.distance.emd.OrderedEMDReference.emd_of_bins_sparse`)
  instead of densely over all m bins, both for the initial scan and for
  each merged cluster;
* the worst cluster is popped from a lazy-deletion max-heap keyed by EMD —
  only the merged cluster's key changes per round, so re-selection is
  O(log G) instead of an O(G) scan;
* nearest-centroid partner search runs on a
  :class:`~repro.microagg.engine.ClusteringEngine` built over the cluster
  centroids, reusing its preallocated distance buffer, masked selections
  and O(d) in-place centroid updates (:meth:`~ClusteringEngine.replace_row`)
  instead of recomputing a Python-loop distance scan from scratch per
  merge.  Near-tie candidates are re-judged with the pre-engine
  ``diff @ diff`` arithmetic so partner choices — and therefore partitions
  — stay bit-for-bit identical to the reference implementation (pinned by
  ``tests/microagg/test_kanon_first_golden.py``);
* above :data:`_INDEX_MIN_CLUSTERS` live clusters the partner query goes
  through :class:`_PartnerIndex` — a block-pruned index over the same
  centroids that prunes on triangle-inequality block bounds and
  evaluates only the blocks that can reach the near-tie band, making
  deep merge cascades subquadratic (O(M·sqrt(G)·d) instead of O(M·G·d)
  partner work over M merges) while returning bit-for-bit the flat scan's
  choices (differential suite: ``tests/core/test_partner_index.py``).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

import numpy as np

from ..backend import ComputeBackend, accepts_backend as _accepts_backend, resolve_backend
from ..backend.kernels import sq_distances_block
from ..data.dataset import Microdata
from ..distance.records import encode_mixed, sq_distances_to
from ..microagg.engine import ClusteringEngine
from ..microagg.mdav import mdav
from ..microagg.partition import Partition
from ..registry import PARTITIONERS, register_method
from ..runtime.faults import fault_point
from .base import TClosenessResult
from .confidential import ConfidentialModel

#: Signature every base partitioner must satisfy: (QI matrix, k) -> Partition.
Partitioner = Callable[[np.ndarray, int], Partition]

#: Relative margin within which centroid-distance near-ties are re-judged
#: with the reference ``diff @ diff`` arithmetic (the engine's canonical
#: column-sequential kernel can differ from it in the last ulp, which is
#: enough to pick a different — equally near — merge partner).
_PARTNER_MARGIN = 1e-6

#: Decision band for the sparse EMD fast path (see
#: ``repro.core.kanon_first._TIE_BAND``): worst-cluster selection, the
#: stop check against t and lowest-emd partner selection re-judge any
#: comparison within this band of flipping with the dense Definition-2
#: arithmetic the pre-refactor merge loop used throughout.
_TIE_BAND = 1e-12

#: Smallest live-cluster count at which partner queries go through the
#: block-pruned :class:`_PartnerIndex`; below it the flat scan's single
#: vectorized kernel call is already cheaper than any pruning bookkeeping.
#: Measured on income-shaped standardized centroids (d = 4, 400 queries,
#: single core): the flat scan grows linearly (~28 µs at G = 2 000,
#: ~137 µs at G = 32 000, ~362 µs at G = 64 000) while the index query is
#: nearly flat (~80–140 µs), crossing between G = 16 000 and G = 32 000 —
#: below the crossover, numpy dispatch overhead on the index's ~24 small
#: array ops exceeds the whole flat scan.  The threshold sits at the
#: measured crossover so the index only ever runs where it wins.
_INDEX_MIN_CLUSTERS = 24_576

#: Relative slack applied to every :class:`_PartnerIndex` pruning bound so
#: float rounding in the sqrt-space triangle inequality can only *loosen*
#: a bound (admitting a spurious block scan) and never tighten one past a
#: true candidate.  Many orders of magnitude smaller than
#: ``_PARTNER_MARGIN``, so the slack never changes which candidates fall
#: inside the near-tie band — only how conservatively blocks are pruned.
_INDEX_BOUND_SLACK = 1e-9


def _nearest_partner(cengine: ClusteringEngine, worst: int) -> int:
    """Live cluster nearest to ``worst``'s centroid (reference tie-breaking).

    Evaluates squared centroid distances through the engine's shared buffer,
    masks dead clusters and ``worst`` itself, and takes the argmin (lowest
    cluster id on exact ties).  Whenever more than one cluster lands within
    a conservative margin of the minimum, exactly those candidates are
    re-judged with the pre-engine arithmetic (``diff @ diff``, first index
    wins), mirroring :meth:`ClusteringEngine.farthest_from_centroid`'s
    near-tie adjudication.
    """
    cengine.eval_distances(cengine.row(worst))
    buf = cengine.masked_distances(np.inf)
    buf[int(cengine.positions_of(np.array([worst]))[0])] = np.inf
    pos = int(np.argmin(buf))
    d2_min = float(buf[pos])
    band = _PARTNER_MARGIN * (1.0 + d2_min)
    cand_pos = np.flatnonzero(buf <= d2_min + band)
    if cand_pos.size == 1:
        return int(cengine.ids_at(cand_pos)[0])
    worst_centroid = cengine.row(worst)
    best_g, best_d2 = -1, np.inf
    for g in cengine.ids_at(cand_pos):  # ascending position == ascending id
        diff = cengine.row(int(g)) - worst_centroid
        d2 = float(diff @ diff)
        if d2 < best_d2:
            best_g, best_d2 = int(g), d2
    return best_g


class _PartnerIndex:
    """Block-pruned partner search: :func:`_nearest_partner` subquadratically.

    The merge loop asks one nearest-centroid query per merge, and measured
    query streams show the asked-about cluster is essentially never the
    same twice in a row (the merged cluster's EMD drops, so the next worst
    cluster is a different one) — so caching *per-cluster* candidate heaps
    would never hit.  What is stable across queries is the geometry: G
    centroids of which exactly one moves and one dies per merge.  This
    index exploits that instead:

    * live centroids are grouped into spatially tight *blocks* by kd-style
      median splits with an extent-based stopping rule (a leaf must be
      small in *diameter*, not just in count — on heavy-tailed data,
      count-balanced leaves have dataset-scale radii and prune nothing),
      stored block-contiguously in a (d, G) column matrix;
    * each block keeps its mean as a pivot and a covering radius, giving a
      sqrt-space triangle-inequality lower bound on any member's distance
      to the query centroid;
    * a query seeds a threshold by scanning the block containing the
      queried cluster (one kernel call), prunes every block whose lower
      bound cannot reach that threshold's near-tie band in one vectorized
      pass, gathers the surviving blocks' columns and evaluates them with
      a single kernel call — so every cluster the flat scan would have
      placed inside the band has provably been evaluated;
    * merge commits invalidate in place: the absorbed cluster's column is
      masked to ``+inf`` (its kernel distance becomes ``+inf``, exactly
      like the flat scan's dead-cluster mask), the survivor's column is
      rewritten and its block's radius grown, and after enough commits
      the whole index rebuilds from the engine's live rows.

    Exactness: block scans evaluate the same canonical kernel on the same
    centroid floats as the engine's flat scan, so every evaluated distance
    is bitwise the flat scan's value; the band filter uses the identical
    float expression; and near-ties are re-judged with the same
    ``diff @ diff`` loop over the same ascending cluster ids.  Partner
    choices are therefore bit-for-bit those of :func:`_nearest_partner`
    (pinned by ``tests/core/test_partner_index.py``).  All pruning bounds
    carry :data:`_INDEX_BOUND_SLACK` so float rounding can only cause a
    spurious block scan, never a missed candidate.

    The index is *derived* state: it is never checkpointed, and a resumed
    merge loop simply builds a fresh one from the restored engine —
    partner choices do not depend on block layout, so resume stays
    bit-for-bit.
    """

    def __init__(self, cengine: ClusteringEngine, alive: list[bool]):
        self._eng = cengine
        self._alive = alive
        self._built = False
        self._updates = 0
        self._rebuild_at = 0

    def _build(self) -> None:
        eng = self._eng
        ids = np.flatnonzero(np.asarray(self._alive))
        X = eng.rows(ids)
        n, d = X.shape
        # kd-style median splits on the widest extent, but the stopping
        # rule is *extent*, not just leaf size: covering radii must come
        # down to the nearest-partner spacing or the triangle bounds prune
        # nothing.  Heavy-tailed data is the reason — count-balanced
        # leaves over a dense core plus sparse halo leave halo leaves
        # whose radii sit at dataset scale, and a block that is both huge
        # and near everything is unprunable.  Forcing every leaf's widest
        # side under a fixed fraction of the bounding box caps radii
        # instead (isolated halo points just become tiny singleton leaves,
        # which are far away and prune trivially).
        widths = X.max(axis=0) - X.min(axis=0) if n else np.zeros(d)
        max_extent = float(widths.max()) / 16.0 if d else 0.0
        leaves: list[np.ndarray] = []
        stack = [np.arange(n)]
        while stack:
            idx = stack.pop()
            if idx.size <= 2:
                leaves.append(idx)
                continue
            pts = X[idx]
            spans = pts.max(axis=0) - pts.min(axis=0)
            if idx.size <= 64 and float(spans.max()) <= max_extent:
                leaves.append(idx)
                continue
            j = int(np.argmax(spans))
            half = idx.size // 2
            split = np.argpartition(pts[:, j], half)
            stack.append(idx[split[:half]])
            stack.append(idx[split[half:]])
        order = np.concatenate(leaves)
        starts = np.zeros(len(leaves) + 1, dtype=np.int64)
        np.cumsum([leaf.size for leaf in leaves], out=starts[1:])
        centers = np.stack([X[leaf].mean(axis=0) for leaf in leaves])
        radii = np.empty(len(leaves))
        for b, leaf in enumerate(leaves):
            diff = X[leaf] - centers[b]
            radii[b] = math.sqrt(float((diff * diff).sum(axis=1).max())) * (
                1.0 + _INDEX_BOUND_SLACK
            )
        self._ids = ids[order]
        self._cols = np.ascontiguousarray(X[order].T)
        self._starts = starts
        self._centers = centers
        self._radii = radii
        self._pos = np.full(len(self._alive), -1, dtype=np.int64)
        self._pos[self._ids] = np.arange(n)
        self._d2 = np.empty(n)
        self._tmp = np.empty(n)
        self._built = True
        self._updates = 0
        self._rebuild_at = max(64, n // 4)

    def on_merge(self, survivor: int, absorbed: int) -> None:
        """Invalidate after a committed merge (engine already updated)."""
        if not self._built:
            return
        apos = int(self._pos[absorbed])
        spos = int(self._pos[survivor])
        self._cols[:, apos] = np.inf
        row = self._eng.row(survivor)
        self._cols[:, spos] = row
        b = int(np.searchsorted(self._starts, spos, side="right")) - 1
        diff = row - self._centers[b]
        reach = math.sqrt(float(diff @ diff)) * (1.0 + _INDEX_BOUND_SLACK)
        if reach > self._radii[b]:
            self._radii[b] = reach
        self._updates += 1
        if self._updates >= self._rebuild_at:
            # Enough radii growth and dead columns accumulated: rebuild
            # lazily from the engine's live rows on the next query.
            self._built = False

    def nearest(self, worst: int) -> int:
        """Partner choice, bitwise :func:`_nearest_partner`'s."""
        if not self._built:
            self._build()
        eng = self._eng
        q = eng.row(worst)
        starts, d2, tmp = self._starts, self._d2, self._tmp
        wpos = int(self._pos[worst])
        # Seed probe: the block holding `worst` is its spatial
        # neighbourhood, so its minimum is a near-final pruning threshold
        # after one kernel call.
        seed = int(np.searchsorted(starts, wpos, side="right")) - 1
        s, e = int(starts[seed]), int(starts[seed + 1])
        sq_distances_block(self._cols, q, d2, tmp, s, e)
        d2[wpos] = np.inf
        probe = float(np.min(d2[s:e]))
        t2 = probe + _PARTNER_MARGIN * (1.0 + probe)
        # One vectorized pruning pass: every block whose sqrt-space lower
        # bound can reach the seed threshold gets evaluated.  The selected
        # set is a superset of what an entry-by-entry lazy walk would
        # touch, which keeps correctness while replacing per-block Python
        # bookkeeping with a handful of array ops over the block table.
        diffc = self._centers - q
        lb = np.sqrt(np.einsum("ij,ij->i", diffc, diffc))
        lb *= 1.0 - _INDEX_BOUND_SLACK
        lb -= self._radii
        np.maximum(lb, 0.0, out=lb)
        sel = lb * lb <= t2 * (1.0 + _INDEX_BOUND_SLACK)
        sel[seed] = True
        cand_blocks = np.flatnonzero(sel)
        # Gather every candidate block's positions (vectorized
        # ranges-to-indices) and evaluate the lot with one kernel call —
        # candidate blocks are many tiny leaves, so per-block calls would
        # drown the arithmetic in dispatch overhead.
        bs = starts[cand_blocks]
        lens = starts[cand_blocks + 1] - bs
        m = int(lens.sum())
        offsets = np.repeat(bs - np.concatenate(([0], np.cumsum(lens[:-1]))), lens)
        pos = offsets + np.arange(m)
        gout = np.empty(m)
        gtmp = np.empty(m)
        sq_distances_block(self._cols[:, pos], q, gout, gtmp, 0, m)
        wloc = int(np.searchsorted(pos, wpos))
        if wloc < m and int(pos[wloc]) == wpos:
            gout[wloc] = np.inf
        best = float(np.min(gout))
        # Same float expressions as the flat scan's band filter.
        band = _PARTNER_MARGIN * (1.0 + best)
        limit = best + band
        hits = np.flatnonzero(gout <= limit)
        if hits.size == 1:
            return int(self._ids[int(pos[int(hits[0])])])
        cand_ids = sorted(int(g) for g in self._ids[pos[hits]])
        best_g, best_d2 = -1, np.inf
        for g in cand_ids:  # ascending id, like the flat scan's re-judge
            diff = eng.row(g) - q
            v = float(diff @ diff)
            if v < best_d2:
                best_g, best_d2 = g, v
        return best_g


def merge_to_t_closeness(
    data: Microdata,
    partition: Partition,
    t: float,
    *,
    model: ConfidentialModel | None = None,
    qi_matrix: np.ndarray | None = None,
    emd_mode: str = "distinct",
    partner_policy: str = "nearest-qi",
    seed: int = 0,
    backend: ComputeBackend | str | None = None,
    progress=None,
    stage: str = "merge",
) -> tuple[Partition, np.ndarray, int]:
    """Greedy merging phase: merge clusters until all are t-close.

    Each round picks the cluster with the largest EMD to the full table and
    merges it with a partner chosen by ``partner_policy``:

    * ``"nearest-qi"`` (the paper's quality criterion): the cluster whose
      quasi-identifier centroid is nearest;
    * ``"lowest-emd"``: the cluster whose merge yields the smallest merged
      EMD (greedy on the privacy objective, blind to utility);
    * ``"random"``: a uniformly random partner (ablation control).

    Parameters
    ----------
    data:
        Original microdata (confidential attributes read from here).
    partition:
        Starting partition (typically k-anonymous).
    t:
        Target t-closeness level.
    model:
        Optional pre-built :class:`ConfidentialModel` (saves rebuilding the
        EMD reference when sweeping many parameters).
    qi_matrix:
        Optional pre-computed quasi-identifier geometry.
    emd_mode:
        EMD flavour when ``model`` is not supplied.
    partner_policy:
        Merge-partner selection rule (see above).
    seed:
        RNG seed for the ``"random"`` policy.
    backend:
        Compute backend for the centroid engine's partner scans (name,
        instance or ``None`` for the ``REPRO_BACKEND`` default).
    progress:
        Optional :class:`~repro.runtime.FitProgress`.  The loop then
        snapshots its complete state (member lists, EMDs, heap, centroid
        engine, RNG) every ``every_merges`` merges under ``stage``, and a
        later call with the same progress store resumes from the last
        snapshot, replaying the remaining merges **bit-for-bit** — every
        snapshotted quantity round-trips exactly, so resumed decisions
        are the decisions the uninterrupted loop would have made.  The
        ``merge.step`` fault point fires after each committed merge.
    stage:
        Progress namespace; callers use ``"alg1:merge"``,
        ``"alg2:merge"`` or ``"repair:merge"`` so each pipeline position
        checkpoints independently.

    Returns
    -------
    (partition, cluster_emds, n_merges)
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if partner_policy not in ("nearest-qi", "lowest-emd", "random"):
        raise ValueError(
            f"unknown partner_policy {partner_policy!r}; expected "
            "'nearest-qi', 'lowest-emd' or 'random'"
        )
    if model is None:
        model = ConfidentialModel(data, emd_mode=emd_mode)
    if qi_matrix is None:
        qi_matrix = encode_mixed(data, data.quasi_identifiers)
    rng = np.random.default_rng(seed)

    # Partner search: a ClusteringEngine over the cluster-centroid matrix,
    # built lazily on the first merge (the loose-t common case never pays
    # for it).  Merges update it in place: the survivor's centroid row is
    # replaced (O(d)), the absorbed cluster is killed and masked out.
    # Deep cascades additionally get a block-pruned partner index over the
    # same centroids (also lazily built — it is derived state, so a resumed
    # loop starts it fresh); the flat engine scan stays both the small-G
    # path and the reference the index is pinned against.
    cengine: ClusteringEngine | None = None
    pindex: _PartnerIndex | None = None

    saved = progress.load(stage) if progress is not None else None
    if saved is not None:
        # Resume mid-loop: every decision input round-trips exactly (the
        # heap keeps its list order — same array, still a valid heap; g
        # and v are < 2^53, exact in float64; the RNG continues from its
        # serialized bit-generator state), so the merges that follow are
        # the ones the uninterrupted run would have made.
        meta = saved["meta"]
        lengths = saved["lengths"]
        flat = np.asarray(saved["flat"], dtype=np.int64)
        members = []
        offset = 0
        for length in lengths:
            if length < 0:
                members.append(None)
            else:
                members.append(flat[offset : offset + int(length)].copy())
                offset += int(length)
        n_groups = len(members)
        emds = [float(e) for e in saved["emds"]]
        sizes = [int(s) for s in saved["sizes"]]
        alive = [bool(a) for a in saved["alive"]]
        versions = [int(v) for v in saved["versions"]]
        heap = [
            (float(row[0]), int(row[1]), int(row[2]))
            for row in np.asarray(saved["heap"]).reshape(-1, 3)
        ]
        n_alive = int(meta["n_alive"])
        n_merges = int(meta["n_merges"])
        rng.bit_generator.state = meta["rng"]
        if meta["has_cengine"]:
            snap = saved["cengine"]
            cengine = ClusteringEngine(
                np.ascontiguousarray(np.asarray(snap["X"], dtype=np.float64)),
                backend=backend,
            )
            cengine.restore(snap)
    else:
        members = [m for m in partition.clusters()]
        n_groups = len(members)
        emds = [float(e) for e in model.partition_emds(members, sparse=True)]
        sizes = [len(m) for m in members]
        alive = [True] * n_groups
        n_alive = n_groups
        n_merges = 0

        # Worst-cluster selection: lazy-deletion max-heap on (EMD, cluster
        # id).  Only the surviving cluster's EMD changes per merge, so a
        # version counter per cluster invalidates its stale entries on the
        # fly; exact EMD ties pop the lowest cluster id first — the same
        # cluster the reference linear scan's ``max`` selected.
        versions = [0] * n_groups
        heap = [(-e, g, 0) for g, e in enumerate(emds)]
        heapq.heapify(heap)

    def worst_alive() -> int:
        while True:
            neg_e, g, v = heap[0]
            if alive[g] and v == versions[g]:
                return g
            heapq.heappop(heap)

    def snapshot_state() -> dict:
        live = [m for m in members if m is not None]
        return {
            "flat": np.concatenate(live) if live else np.empty(0, dtype=np.int64),
            "lengths": np.array(
                [-1 if m is None else len(m) for m in members], dtype=np.int64
            ),
            "emds": np.array(emds, dtype=np.float64),
            "sizes": np.array(sizes, dtype=np.int64),
            "alive": np.array(alive, dtype=bool),
            "versions": np.array(versions, dtype=np.int64),
            "heap": np.array(heap, dtype=np.float64).reshape(-1, 3),
            "meta": {
                "n_alive": n_alive,
                "n_merges": n_merges,
                "rng": rng.bit_generator.state,
                "has_cengine": cengine is not None,
            },
            **({"cengine": cengine.snapshot()} if cengine is not None else {}),
        }

    while n_alive > 1:
        if progress is not None:
            progress.tick(stage, n_merges, snapshot_state)
        worst = worst_alive()
        top = emds[worst]
        # Runner-up peek: pop the worst entry, clean stale entries off the
        # new top, read the second-best live EMD, restore.  Each stale
        # entry is popped exactly once over the whole run, so selection
        # stays amortized O(log G); the O(G) banded rescan below only runs
        # when the runner-up actually sits inside the tie band.
        top_entry = heapq.heappop(heap)
        runner_emd = -np.inf
        while heap:
            neg_e, g, v = heap[0]
            if alive[g] and v == versions[g]:
                runner_emd = -neg_e
                break
            heapq.heappop(heap)
        heapq.heappush(heap, top_entry)
        if runner_emd >= top - _TIE_BAND:
            # Sparse near-tie for the worst cluster: re-judge the banded
            # clusters with the dense arithmetic the reference linear scan
            # maximized (first index wins on exact dense ties).
            banded = [
                g
                for g in range(n_groups)
                if alive[g] and emds[g] >= top - _TIE_BAND
            ]
            worst, worst_emd = -1, -np.inf
            for g in banded:
                value = model.cluster_emd(members[g], sparse=False)
                if value > worst_emd:
                    worst, worst_emd = g, value
        elif abs(top - t) <= _TIE_BAND:
            worst_emd = model.cluster_emd(members[worst], sparse=False)
        else:
            worst_emd = top
        if worst_emd <= t:
            break
        if partner_policy == "nearest-qi":
            if cengine is None:
                # No merge has happened yet, so every initial cluster is
                # intact; the reference gather-and-mean keeps centroid
                # floats identical to the pre-engine implementation's.
                cengine = ClusteringEngine(
                    np.stack([qi_matrix[m].mean(axis=0) for m in members]),
                    backend=backend,
                )
            if pindex is None and qi_matrix.shape[1] > 0:
                pindex = _PartnerIndex(cengine, alive)
            if pindex is not None and n_alive > _INDEX_MIN_CLUSTERS:
                best_g = pindex.nearest(worst)
            else:
                best_g = _nearest_partner(cengine, worst)
        elif partner_policy == "lowest-emd":
            candidates = [g for g in range(n_groups) if alive[g] and g != worst]
            values = [
                model.cluster_emd(
                    np.concatenate([members[worst], members[g]]), sparse=True
                )
                for g in candidates
            ]
            lowest = min(values)
            near = [g for g, v in zip(candidates, values) if v <= lowest + _TIE_BAND]
            if len(near) > 1:
                # Sparse near-tie between merge partners: the dense
                # arithmetic picks, first index winning exact ties.
                best_g, best_emd = -1, np.inf
                for g in near:
                    value = model.cluster_emd(
                        np.concatenate([members[worst], members[g]]), sparse=False
                    )
                    if value < best_emd:
                        best_g, best_emd = g, value
            else:
                best_g = candidates[int(np.argmin(values))]
        else:  # random
            candidates = [g for g in range(n_groups) if alive[g] and g != worst]
            best_g = int(rng.choice(candidates))
        merged = np.concatenate([members[worst], members[best_g]])
        size_w, size_b = sizes[worst], sizes[best_g]
        if cengine is not None:
            cengine.replace_row(
                worst,
                (size_w * cengine.row(worst) + size_b * cengine.row(best_g))
                / (size_w + size_b),
            )
            cengine.kill_one(best_g)
            if pindex is not None:
                pindex.on_merge(worst, best_g)
        sizes[worst] = size_w + size_b
        members[worst] = merged
        emds[worst] = model.cluster_emd(merged, sparse=True)
        versions[worst] += 1
        heapq.heappush(heap, (-emds[worst], worst, versions[worst]))
        members[best_g] = None
        alive[best_g] = False
        n_alive -= 1
        n_merges += 1
        fault_point("merge.step")

    survivors = [(m, e) for m, e, a in zip(members, emds, alive) if a]
    # Partition relabels clusters by first appearance in record order, so
    # sort by each cluster's smallest record index to keep the EMD array
    # aligned with the returned cluster ids.
    survivors.sort(key=lambda pair: int(pair[0].min()))
    final = Partition.from_clusters([m for m, _ in survivors], data.n_records)
    final_emds = np.array([e for _, e in survivors])
    return final, final_emds, n_merges


@register_method("merge")
def microaggregation_merge(
    data: Microdata,
    k: int,
    t: float,
    *,
    partitioner: Partitioner | str = mdav,
    emd_mode: str = "distinct",
    backend: ComputeBackend | str | None = None,
    progress=None,
) -> TClosenessResult:
    """Algorithm 1: microaggregate the quasi-identifiers, then merge.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned.
    k:
        Minimum cluster size (k-anonymity level).
    t:
        t-closeness level to enforce.
    partitioner:
        Base microaggregation heuristic; MDAV by default.  Accepts either a
        callable ``(X, k) -> Partition`` or a registered partitioner name
        (see :data:`repro.registry.PARTITIONERS`).
    emd_mode:
        ``"distinct"`` (default) or ``"rank"`` ordered-EMD flavour.
    backend:
        Compute backend for the partition and merge phases (name, instance
        or ``None`` for the ``REPRO_BACKEND`` default).  Forwarded to the
        partitioner when its signature accepts a ``backend`` keyword (the
        built-in ``mdav``/``vmdav`` do; third-party ``(X, k)`` callables
        without one are simply called as before).
    progress:
        Optional :class:`~repro.runtime.FitProgress` for checkpointed
        fits.  The base microaggregation replays deterministically on
        resume (it is fast relative to merging), so only the merge loop
        snapshots, under the ``"alg1:merge"`` stage.

    Returns
    -------
    TClosenessResult
        ``info`` records ``n_merges`` and the pre-merge cluster count.
    """
    if data.n_records == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= data.n_records:
        raise ValueError(f"k must be in [1, {data.n_records}], got {k}")
    if isinstance(partitioner, str):
        partitioner = PARTITIONERS.resolve(partitioner)
    backend = resolve_backend(backend)
    qi_matrix = encode_mixed(data, data.quasi_identifiers)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    if _accepts_backend(partitioner):
        initial = partitioner(qi_matrix, k, backend=backend)
    else:
        initial = partitioner(qi_matrix, k)
    initial.validate_min_size(k)
    final, emds, n_merges = merge_to_t_closeness(
        data,
        initial,
        t,
        model=model,
        qi_matrix=qi_matrix,
        backend=backend,
        progress=progress,
        stage="alg1:merge",
    )
    return TClosenessResult(
        algorithm="merge",
        k=k,
        t=t,
        partition=final,
        cluster_emds=emds,
        info={
            "n_merges": n_merges,
            "initial_clusters": initial.n_clusters,
            "emd_mode": emd_mode,
        },
    )
