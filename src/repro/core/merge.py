"""Algorithm 1 — standard microaggregation followed by cluster merging.

The simplest route to k-anonymous t-closeness (Section 5 of the paper):

1. run any microaggregation heuristic (MDAV by default) on the
   quasi-identifiers with minimum cluster size k;
2. while some cluster's confidential-attribute distribution is farther than
   t from the whole table's, take the *worst* such cluster and merge it with
   the cluster whose quasi-identifier centroid is nearest.

Termination is guaranteed: in the worst case everything collapses into a
single cluster, whose EMD to the table is zero.  The merging phase is
exposed separately (:func:`merge_to_t_closeness`) because the paper reuses
it as the closing step of Algorithm 2, which cannot guarantee t-closeness
on its own.

Implementation notes — the phase runs on incremental state end to end:

* per-cluster EMDs are evaluated sparsely (O(c log m) segment evaluation,
  :meth:`~repro.distance.emd.OrderedEMDReference.emd_of_bins_sparse`)
  instead of densely over all m bins, both for the initial scan and for
  each merged cluster;
* the worst cluster is popped from a lazy-deletion max-heap keyed by EMD —
  only the merged cluster's key changes per round, so re-selection is
  O(log G) instead of an O(G) scan;
* nearest-centroid partner search runs on a
  :class:`~repro.microagg.engine.ClusteringEngine` built over the cluster
  centroids, reusing its preallocated distance buffer, masked selections
  and O(d) in-place centroid updates (:meth:`~ClusteringEngine.replace_row`)
  instead of recomputing a Python-loop distance scan from scratch per
  merge.  Near-tie candidates are re-judged with the pre-engine
  ``diff @ diff`` arithmetic so partner choices — and therefore partitions
  — stay bit-for-bit identical to the reference implementation (pinned by
  ``tests/microagg/test_kanon_first_golden.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..backend import ComputeBackend, accepts_backend as _accepts_backend, resolve_backend
from ..data.dataset import Microdata
from ..distance.records import encode_mixed
from ..microagg.engine import ClusteringEngine
from ..microagg.mdav import mdav
from ..microagg.partition import Partition
from ..registry import PARTITIONERS, register_method
from ..runtime.faults import fault_point
from .base import TClosenessResult
from .confidential import ConfidentialModel

#: Signature every base partitioner must satisfy: (QI matrix, k) -> Partition.
Partitioner = Callable[[np.ndarray, int], Partition]

#: Relative margin within which centroid-distance near-ties are re-judged
#: with the reference ``diff @ diff`` arithmetic (the engine's canonical
#: column-sequential kernel can differ from it in the last ulp, which is
#: enough to pick a different — equally near — merge partner).
_PARTNER_MARGIN = 1e-6

#: Decision band for the sparse EMD fast path (see
#: ``repro.core.kanon_first._TIE_BAND``): worst-cluster selection, the
#: stop check against t and lowest-emd partner selection re-judge any
#: comparison within this band of flipping with the dense Definition-2
#: arithmetic the pre-refactor merge loop used throughout.
_TIE_BAND = 1e-12


def _nearest_partner(cengine: ClusteringEngine, worst: int) -> int:
    """Live cluster nearest to ``worst``'s centroid (reference tie-breaking).

    Evaluates squared centroid distances through the engine's shared buffer,
    masks dead clusters and ``worst`` itself, and takes the argmin (lowest
    cluster id on exact ties).  Whenever more than one cluster lands within
    a conservative margin of the minimum, exactly those candidates are
    re-judged with the pre-engine arithmetic (``diff @ diff``, first index
    wins), mirroring :meth:`ClusteringEngine.farthest_from_centroid`'s
    near-tie adjudication.
    """
    cengine.eval_distances(cengine.row(worst))
    buf = cengine.masked_distances(np.inf)
    buf[int(cengine.positions_of(np.array([worst]))[0])] = np.inf
    pos = int(np.argmin(buf))
    d2_min = float(buf[pos])
    band = _PARTNER_MARGIN * (1.0 + d2_min)
    cand_pos = np.flatnonzero(buf <= d2_min + band)
    if cand_pos.size == 1:
        return int(cengine.ids_at(cand_pos)[0])
    worst_centroid = cengine.row(worst)
    best_g, best_d2 = -1, np.inf
    for g in cengine.ids_at(cand_pos):  # ascending position == ascending id
        diff = cengine.row(int(g)) - worst_centroid
        d2 = float(diff @ diff)
        if d2 < best_d2:
            best_g, best_d2 = int(g), d2
    return best_g


def merge_to_t_closeness(
    data: Microdata,
    partition: Partition,
    t: float,
    *,
    model: ConfidentialModel | None = None,
    qi_matrix: np.ndarray | None = None,
    emd_mode: str = "distinct",
    partner_policy: str = "nearest-qi",
    seed: int = 0,
    backend: ComputeBackend | str | None = None,
    progress=None,
    stage: str = "merge",
) -> tuple[Partition, np.ndarray, int]:
    """Greedy merging phase: merge clusters until all are t-close.

    Each round picks the cluster with the largest EMD to the full table and
    merges it with a partner chosen by ``partner_policy``:

    * ``"nearest-qi"`` (the paper's quality criterion): the cluster whose
      quasi-identifier centroid is nearest;
    * ``"lowest-emd"``: the cluster whose merge yields the smallest merged
      EMD (greedy on the privacy objective, blind to utility);
    * ``"random"``: a uniformly random partner (ablation control).

    Parameters
    ----------
    data:
        Original microdata (confidential attributes read from here).
    partition:
        Starting partition (typically k-anonymous).
    t:
        Target t-closeness level.
    model:
        Optional pre-built :class:`ConfidentialModel` (saves rebuilding the
        EMD reference when sweeping many parameters).
    qi_matrix:
        Optional pre-computed quasi-identifier geometry.
    emd_mode:
        EMD flavour when ``model`` is not supplied.
    partner_policy:
        Merge-partner selection rule (see above).
    seed:
        RNG seed for the ``"random"`` policy.
    backend:
        Compute backend for the centroid engine's partner scans (name,
        instance or ``None`` for the ``REPRO_BACKEND`` default).
    progress:
        Optional :class:`~repro.runtime.FitProgress`.  The loop then
        snapshots its complete state (member lists, EMDs, heap, centroid
        engine, RNG) every ``every_merges`` merges under ``stage``, and a
        later call with the same progress store resumes from the last
        snapshot, replaying the remaining merges **bit-for-bit** — every
        snapshotted quantity round-trips exactly, so resumed decisions
        are the decisions the uninterrupted loop would have made.  The
        ``merge.step`` fault point fires after each committed merge.
    stage:
        Progress namespace; callers use ``"alg1:merge"``,
        ``"alg2:merge"`` or ``"repair:merge"`` so each pipeline position
        checkpoints independently.

    Returns
    -------
    (partition, cluster_emds, n_merges)
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if partner_policy not in ("nearest-qi", "lowest-emd", "random"):
        raise ValueError(
            f"unknown partner_policy {partner_policy!r}; expected "
            "'nearest-qi', 'lowest-emd' or 'random'"
        )
    if model is None:
        model = ConfidentialModel(data, emd_mode=emd_mode)
    if qi_matrix is None:
        qi_matrix = encode_mixed(data, data.quasi_identifiers)
    rng = np.random.default_rng(seed)

    # Partner search: a ClusteringEngine over the cluster-centroid matrix,
    # built lazily on the first merge (the loose-t common case never pays
    # for it).  Merges update it in place: the survivor's centroid row is
    # replaced (O(d)), the absorbed cluster is killed and masked out.
    cengine: ClusteringEngine | None = None

    saved = progress.load(stage) if progress is not None else None
    if saved is not None:
        # Resume mid-loop: every decision input round-trips exactly (the
        # heap keeps its list order — same array, still a valid heap; g
        # and v are < 2^53, exact in float64; the RNG continues from its
        # serialized bit-generator state), so the merges that follow are
        # the ones the uninterrupted run would have made.
        meta = saved["meta"]
        lengths = saved["lengths"]
        flat = np.asarray(saved["flat"], dtype=np.int64)
        members = []
        offset = 0
        for length in lengths:
            if length < 0:
                members.append(None)
            else:
                members.append(flat[offset : offset + int(length)].copy())
                offset += int(length)
        n_groups = len(members)
        emds = [float(e) for e in saved["emds"]]
        sizes = [int(s) for s in saved["sizes"]]
        alive = [bool(a) for a in saved["alive"]]
        versions = [int(v) for v in saved["versions"]]
        heap = [
            (float(row[0]), int(row[1]), int(row[2]))
            for row in np.asarray(saved["heap"]).reshape(-1, 3)
        ]
        n_alive = int(meta["n_alive"])
        n_merges = int(meta["n_merges"])
        rng.bit_generator.state = meta["rng"]
        if meta["has_cengine"]:
            snap = saved["cengine"]
            cengine = ClusteringEngine(
                np.ascontiguousarray(np.asarray(snap["X"], dtype=np.float64)),
                backend=backend,
            )
            cengine.restore(snap)
    else:
        members = [m for m in partition.clusters()]
        n_groups = len(members)
        emds = [float(e) for e in model.partition_emds(members, sparse=True)]
        sizes = [len(m) for m in members]
        alive = [True] * n_groups
        n_alive = n_groups
        n_merges = 0

        # Worst-cluster selection: lazy-deletion max-heap on (EMD, cluster
        # id).  Only the surviving cluster's EMD changes per merge, so a
        # version counter per cluster invalidates its stale entries on the
        # fly; exact EMD ties pop the lowest cluster id first — the same
        # cluster the reference linear scan's ``max`` selected.
        versions = [0] * n_groups
        heap = [(-e, g, 0) for g, e in enumerate(emds)]
        heapq.heapify(heap)

    def worst_alive() -> int:
        while True:
            neg_e, g, v = heap[0]
            if alive[g] and v == versions[g]:
                return g
            heapq.heappop(heap)

    def snapshot_state() -> dict:
        live = [m for m in members if m is not None]
        return {
            "flat": np.concatenate(live) if live else np.empty(0, dtype=np.int64),
            "lengths": np.array(
                [-1 if m is None else len(m) for m in members], dtype=np.int64
            ),
            "emds": np.array(emds, dtype=np.float64),
            "sizes": np.array(sizes, dtype=np.int64),
            "alive": np.array(alive, dtype=bool),
            "versions": np.array(versions, dtype=np.int64),
            "heap": np.array(heap, dtype=np.float64).reshape(-1, 3),
            "meta": {
                "n_alive": n_alive,
                "n_merges": n_merges,
                "rng": rng.bit_generator.state,
                "has_cengine": cengine is not None,
            },
            **({"cengine": cengine.snapshot()} if cengine is not None else {}),
        }

    while n_alive > 1:
        if progress is not None:
            progress.tick(stage, n_merges, snapshot_state)
        worst = worst_alive()
        top = emds[worst]
        # Runner-up peek: pop the worst entry, clean stale entries off the
        # new top, read the second-best live EMD, restore.  Each stale
        # entry is popped exactly once over the whole run, so selection
        # stays amortized O(log G); the O(G) banded rescan below only runs
        # when the runner-up actually sits inside the tie band.
        top_entry = heapq.heappop(heap)
        runner_emd = -np.inf
        while heap:
            neg_e, g, v = heap[0]
            if alive[g] and v == versions[g]:
                runner_emd = -neg_e
                break
            heapq.heappop(heap)
        heapq.heappush(heap, top_entry)
        if runner_emd >= top - _TIE_BAND:
            # Sparse near-tie for the worst cluster: re-judge the banded
            # clusters with the dense arithmetic the reference linear scan
            # maximized (first index wins on exact dense ties).
            banded = [
                g
                for g in range(n_groups)
                if alive[g] and emds[g] >= top - _TIE_BAND
            ]
            worst, worst_emd = -1, -np.inf
            for g in banded:
                value = model.cluster_emd(members[g], sparse=False)
                if value > worst_emd:
                    worst, worst_emd = g, value
        elif abs(top - t) <= _TIE_BAND:
            worst_emd = model.cluster_emd(members[worst], sparse=False)
        else:
            worst_emd = top
        if worst_emd <= t:
            break
        if partner_policy == "nearest-qi":
            if cengine is None:
                # No merge has happened yet, so every initial cluster is
                # intact; the reference gather-and-mean keeps centroid
                # floats identical to the pre-engine implementation's.
                cengine = ClusteringEngine(
                    np.stack([qi_matrix[m].mean(axis=0) for m in members]),
                    backend=backend,
                )
            best_g = _nearest_partner(cengine, worst)
        elif partner_policy == "lowest-emd":
            candidates = [g for g in range(n_groups) if alive[g] and g != worst]
            values = [
                model.cluster_emd(
                    np.concatenate([members[worst], members[g]]), sparse=True
                )
                for g in candidates
            ]
            lowest = min(values)
            near = [g for g, v in zip(candidates, values) if v <= lowest + _TIE_BAND]
            if len(near) > 1:
                # Sparse near-tie between merge partners: the dense
                # arithmetic picks, first index winning exact ties.
                best_g, best_emd = -1, np.inf
                for g in near:
                    value = model.cluster_emd(
                        np.concatenate([members[worst], members[g]]), sparse=False
                    )
                    if value < best_emd:
                        best_g, best_emd = g, value
            else:
                best_g = candidates[int(np.argmin(values))]
        else:  # random
            candidates = [g for g in range(n_groups) if alive[g] and g != worst]
            best_g = int(rng.choice(candidates))
        merged = np.concatenate([members[worst], members[best_g]])
        size_w, size_b = sizes[worst], sizes[best_g]
        if cengine is not None:
            cengine.replace_row(
                worst,
                (size_w * cengine.row(worst) + size_b * cengine.row(best_g))
                / (size_w + size_b),
            )
            cengine.kill(np.array([best_g]))
        sizes[worst] = size_w + size_b
        members[worst] = merged
        emds[worst] = model.cluster_emd(merged, sparse=True)
        versions[worst] += 1
        heapq.heappush(heap, (-emds[worst], worst, versions[worst]))
        members[best_g] = None
        alive[best_g] = False
        n_alive -= 1
        n_merges += 1
        fault_point("merge.step")

    survivors = [(m, e) for m, e, a in zip(members, emds, alive) if a]
    # Partition relabels clusters by first appearance in record order, so
    # sort by each cluster's smallest record index to keep the EMD array
    # aligned with the returned cluster ids.
    survivors.sort(key=lambda pair: int(pair[0].min()))
    final = Partition.from_clusters([m for m, _ in survivors], data.n_records)
    final_emds = np.array([e for _, e in survivors])
    return final, final_emds, n_merges


@register_method("merge")
def microaggregation_merge(
    data: Microdata,
    k: int,
    t: float,
    *,
    partitioner: Partitioner | str = mdav,
    emd_mode: str = "distinct",
    backend: ComputeBackend | str | None = None,
    progress=None,
) -> TClosenessResult:
    """Algorithm 1: microaggregate the quasi-identifiers, then merge.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned.
    k:
        Minimum cluster size (k-anonymity level).
    t:
        t-closeness level to enforce.
    partitioner:
        Base microaggregation heuristic; MDAV by default.  Accepts either a
        callable ``(X, k) -> Partition`` or a registered partitioner name
        (see :data:`repro.registry.PARTITIONERS`).
    emd_mode:
        ``"distinct"`` (default) or ``"rank"`` ordered-EMD flavour.
    backend:
        Compute backend for the partition and merge phases (name, instance
        or ``None`` for the ``REPRO_BACKEND`` default).  Forwarded to the
        partitioner when its signature accepts a ``backend`` keyword (the
        built-in ``mdav``/``vmdav`` do; third-party ``(X, k)`` callables
        without one are simply called as before).
    progress:
        Optional :class:`~repro.runtime.FitProgress` for checkpointed
        fits.  The base microaggregation replays deterministically on
        resume (it is fast relative to merging), so only the merge loop
        snapshots, under the ``"alg1:merge"`` stage.

    Returns
    -------
    TClosenessResult
        ``info`` records ``n_merges`` and the pre-merge cluster count.
    """
    if data.n_records == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= data.n_records:
        raise ValueError(f"k must be in [1, {data.n_records}], got {k}")
    if isinstance(partitioner, str):
        partitioner = PARTITIONERS.resolve(partitioner)
    backend = resolve_backend(backend)
    qi_matrix = encode_mixed(data, data.quasi_identifiers)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    if _accepts_backend(partitioner):
        initial = partitioner(qi_matrix, k, backend=backend)
    else:
        initial = partitioner(qi_matrix, k)
    initial.validate_min_size(k)
    final, emds, n_merges = merge_to_t_closeness(
        data,
        initial,
        t,
        model=model,
        qi_matrix=qi_matrix,
        backend=backend,
        progress=progress,
        stage="alg1:merge",
    )
    return TClosenessResult(
        algorithm="merge",
        k=k,
        t=t,
        partition=final,
        cluster_emds=emds,
        info={
            "n_merges": n_merges,
            "initial_clusters": initial.n_clusters,
            "emd_mode": emd_mode,
        },
    )
