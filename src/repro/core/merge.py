"""Algorithm 1 — standard microaggregation followed by cluster merging.

The simplest route to k-anonymous t-closeness (Section 5 of the paper):

1. run any microaggregation heuristic (MDAV by default) on the
   quasi-identifiers with minimum cluster size k;
2. while some cluster's confidential-attribute distribution is farther than
   t from the whole table's, take the *worst* such cluster and merge it with
   the cluster whose quasi-identifier centroid is nearest.

Termination is guaranteed: in the worst case everything collapses into a
single cluster, whose EMD to the table is zero.  The merging phase is
exposed separately (:func:`merge_to_t_closeness`) because the paper reuses
it as the closing step of Algorithm 2, which cannot guarantee t-closeness
on its own.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.dataset import Microdata
from ..distance.records import encode_mixed
from ..microagg.mdav import mdav
from ..microagg.partition import Partition
from .base import TClosenessResult
from .confidential import ConfidentialModel

#: Signature every base partitioner must satisfy: (QI matrix, k) -> Partition.
Partitioner = Callable[[np.ndarray, int], Partition]


def merge_to_t_closeness(
    data: Microdata,
    partition: Partition,
    t: float,
    *,
    model: ConfidentialModel | None = None,
    qi_matrix: np.ndarray | None = None,
    emd_mode: str = "distinct",
    partner_policy: str = "nearest-qi",
    seed: int = 0,
) -> tuple[Partition, np.ndarray, int]:
    """Greedy merging phase: merge clusters until all are t-close.

    Each round picks the cluster with the largest EMD to the full table and
    merges it with a partner chosen by ``partner_policy``:

    * ``"nearest-qi"`` (the paper's quality criterion): the cluster whose
      quasi-identifier centroid is nearest;
    * ``"lowest-emd"``: the cluster whose merge yields the smallest merged
      EMD (greedy on the privacy objective, blind to utility);
    * ``"random"``: a uniformly random partner (ablation control).

    Parameters
    ----------
    data:
        Original microdata (confidential attributes read from here).
    partition:
        Starting partition (typically k-anonymous).
    t:
        Target t-closeness level.
    model:
        Optional pre-built :class:`ConfidentialModel` (saves rebuilding the
        EMD reference when sweeping many parameters).
    qi_matrix:
        Optional pre-computed quasi-identifier geometry.
    emd_mode:
        EMD flavour when ``model`` is not supplied.
    partner_policy:
        Merge-partner selection rule (see above).
    seed:
        RNG seed for the ``"random"`` policy.

    Returns
    -------
    (partition, cluster_emds, n_merges)
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if partner_policy not in ("nearest-qi", "lowest-emd", "random"):
        raise ValueError(
            f"unknown partner_policy {partner_policy!r}; expected "
            "'nearest-qi', 'lowest-emd' or 'random'"
        )
    if model is None:
        model = ConfidentialModel(data, emd_mode=emd_mode)
    if qi_matrix is None:
        qi_matrix = encode_mixed(data, data.quasi_identifiers)
    rng = np.random.default_rng(seed)

    members: list[np.ndarray | None] = [m for m in partition.clusters()]
    emds = [model.cluster_emd(m) for m in members]
    centroids = [qi_matrix[m].mean(axis=0) for m in members]
    alive = [True] * len(members)
    n_alive = len(members)
    n_merges = 0

    while n_alive > 1:
        worst = max(
            (g for g in range(len(members)) if alive[g]), key=lambda g: emds[g]
        )
        if emds[worst] <= t:
            break
        candidates = [g for g in range(len(members)) if alive[g] and g != worst]
        if partner_policy == "nearest-qi":
            worst_centroid = centroids[worst]
            best_g, best_d2 = -1, np.inf
            for g in candidates:
                diff = centroids[g] - worst_centroid
                d2 = float(diff @ diff)
                if d2 < best_d2:
                    best_g, best_d2 = g, d2
        elif partner_policy == "lowest-emd":
            best_g, best_emd = -1, np.inf
            for g in candidates:
                value = model.cluster_emd(
                    np.concatenate([members[worst], members[g]])
                )
                if value < best_emd:
                    best_g, best_emd = g, value
        else:  # random
            best_g = int(rng.choice(candidates))
        merged = np.concatenate([members[worst], members[best_g]])
        size_w, size_b = len(members[worst]), len(members[best_g])
        centroids[worst] = (
            size_w * centroids[worst] + size_b * centroids[best_g]
        ) / (size_w + size_b)
        members[worst] = merged
        emds[worst] = model.cluster_emd(merged)
        members[best_g] = None
        alive[best_g] = False
        n_alive -= 1
        n_merges += 1

    survivors = [(m, e) for m, e, a in zip(members, emds, alive) if a]
    # Partition relabels clusters by first appearance in record order, so
    # sort by each cluster's smallest record index to keep the EMD array
    # aligned with the returned cluster ids.
    survivors.sort(key=lambda pair: int(pair[0].min()))
    final = Partition.from_clusters([m for m, _ in survivors], data.n_records)
    final_emds = np.array([e for _, e in survivors])
    return final, final_emds, n_merges


def microaggregation_merge(
    data: Microdata,
    k: int,
    t: float,
    *,
    partitioner: Partitioner = mdav,
    emd_mode: str = "distinct",
) -> TClosenessResult:
    """Algorithm 1: microaggregate the quasi-identifiers, then merge.

    Parameters
    ----------
    data:
        Microdata with quasi-identifier and confidential roles assigned.
    k:
        Minimum cluster size (k-anonymity level).
    t:
        t-closeness level to enforce.
    partitioner:
        Base microaggregation heuristic; MDAV by default, V-MDAV or the
        optimal univariate partitioner are drop-in alternatives.
    emd_mode:
        ``"distinct"`` (default) or ``"rank"`` ordered-EMD flavour.

    Returns
    -------
    TClosenessResult
        ``info`` records ``n_merges`` and the pre-merge cluster count.
    """
    if data.n_records == 0:
        raise ValueError("dataset is empty")
    if not 1 <= k <= data.n_records:
        raise ValueError(f"k must be in [1, {data.n_records}], got {k}")
    qi_matrix = encode_mixed(data, data.quasi_identifiers)
    model = ConfidentialModel(data, emd_mode=emd_mode)
    initial = partitioner(qi_matrix, k)
    initial.validate_min_size(k)
    final, emds, n_merges = merge_to_t_closeness(
        data, initial, t, model=model, qi_matrix=qi_matrix
    )
    return TClosenessResult(
        algorithm="merge",
        k=k,
        t=t,
        partition=final,
        cluster_emds=emds,
        info={
            "n_merges": n_merges,
            "initial_clusters": initial.n_clusters,
            "emd_mode": emd_mode,
        },
    )
