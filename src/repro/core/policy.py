"""Composable privacy requirements and release policies.

The paper treats t-closeness as one member of a family of
microaggregation-enforceable privacy models (Section 2 surveys
k-anonymity, p-sensitivity, l-diversity and t-closeness).  This module
makes that family first-class: each model is a small immutable
*requirement* object, and requirements compose with ``&`` into a
:class:`PrivacyPolicy` that the anonymization lifecycle consumes and the
release audit verifies::

    policy = KAnonymity(5) & TCloseness(0.15) & DistinctLDiversity(3)
    policy = PrivacyPolicy.parse("k=5,t=0.15,l=3")   # equivalent

Requirement objects are deliberately *pure*: they know their parameter,
how to serialize themselves, and whether a measured level satisfies them
— but they never measure anything.  Measurement lives with the verifiers
in :mod:`repro.privacy` (see :func:`repro.privacy.audit.audit_policy`),
so the policy layer stays import-free of the heavier machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..constants import T_TOLERANCE


class PolicyError(ValueError):
    """Raised for malformed policies (bad parameters, duplicates, parse errors)."""


@dataclass(frozen=True)
class Requirement:
    """Base class for one privacy requirement.

    Subclasses define the class attributes ``key`` (the one-letter spec
    token, e.g. ``"k"``) and ``label`` (the human-readable model name) and
    implement :meth:`satisfied_by`.
    """

    #: Spec token used by :meth:`PrivacyPolicy.parse` and ``str()``.
    key = ""
    #: Human-readable privacy-model name for reports.
    label = ""

    def __and__(self, other: "Requirement | PrivacyPolicy") -> "PrivacyPolicy":
        return PrivacyPolicy(self) & other

    @property
    def value(self) -> int | float:
        """The requirement's single parameter (k, t, l or p)."""
        raise NotImplementedError

    def satisfied_by(self, achieved: int | float) -> bool:
        """Whether a measured level meets this requirement."""
        raise NotImplementedError

    def spec(self) -> str:
        """The ``key=value`` token (``repr`` of floats, so parsing is exact)."""
        return f"{self.key}={self.value!r}"


@dataclass(frozen=True)
class KAnonymity(Requirement):
    """Every equivalence class holds at least ``k`` records."""

    k: int
    key = "k"
    label = "k-anonymity"

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise PolicyError(f"k must be an integer >= 1, got {self.k!r}")

    @property
    def value(self) -> int:
        return self.k

    def satisfied_by(self, achieved: int | float) -> bool:
        return achieved >= self.k


@dataclass(frozen=True)
class TCloseness(Requirement):
    """Every class's confidential distribution is within EMD ``t`` of the table's."""

    t: float
    key = "t"
    label = "t-closeness"

    def __post_init__(self) -> None:
        if isinstance(self.t, bool) or not isinstance(self.t, (int, float)):
            raise PolicyError(f"t must be a number >= 0, got {self.t!r}")
        object.__setattr__(self, "t", float(self.t))
        if math.isnan(self.t) or self.t < 0:
            raise PolicyError(f"t must be a number >= 0, got {self.t!r}")

    @property
    def value(self) -> float:
        return self.t

    def satisfied_by(self, achieved: int | float) -> bool:
        return achieved <= self.t + T_TOLERANCE


@dataclass(frozen=True)
class DistinctLDiversity(Requirement):
    """Every class holds at least ``l`` distinct values per confidential attribute."""

    l: int
    key = "l"
    label = "distinct l-diversity"

    def __post_init__(self) -> None:
        if not isinstance(self.l, int) or isinstance(self.l, bool) or self.l < 1:
            raise PolicyError(f"l must be an integer >= 1, got {self.l!r}")

    @property
    def value(self) -> int:
        return self.l

    def satisfied_by(self, achieved: int | float) -> bool:
        return achieved >= self.l


@dataclass(frozen=True)
class PSensitivity(Requirement):
    """p-sensitive k-anonymity's attribute condition (Truta & Vinay 2006).

    Structurally identical to distinct l-diversity with ``l = p``; kept as
    a separate requirement so a policy can name the model it promises.
    """

    p: int
    key = "p"
    label = "p-sensitivity"

    def __post_init__(self) -> None:
        if not isinstance(self.p, int) or isinstance(self.p, bool) or self.p < 1:
            raise PolicyError(f"p must be an integer >= 1, got {self.p!r}")

    @property
    def value(self) -> int:
        return self.p

    def satisfied_by(self, achieved: int | float) -> bool:
        return achieved >= self.p


#: Canonical requirement order (and the full parse vocabulary).
REQUIREMENT_TYPES: tuple[type[Requirement], ...] = (
    KAnonymity,
    TCloseness,
    DistinctLDiversity,
    PSensitivity,
)

_BY_KEY: dict[str, type[Requirement]] = {cls.key: cls for cls in REQUIREMENT_TYPES}
_ORDER: dict[str, int] = {cls.key: i for i, cls in enumerate(REQUIREMENT_TYPES)}


class PrivacyPolicy:
    """An immutable conjunction of privacy requirements.

    Parameters
    ----------
    requirements:
        At most one requirement per privacy model; stored in canonical
        (k, t, l, p) order regardless of construction order, so policies
        that promise the same thing compare (and serialize) identically.
    """

    __slots__ = ("_requirements",)

    def __init__(self, *requirements: Requirement) -> None:
        seen: dict[str, Requirement] = {}
        for req in requirements:
            if not isinstance(req, Requirement):
                raise PolicyError(
                    f"expected a Requirement, got {req!r} "
                    f"(compose policies with &)"
                )
            if req.key in seen:
                raise PolicyError(
                    f"duplicate {req.label} requirement: "
                    f"{seen[req.key].spec()} and {req.spec()}"
                )
            seen[req.key] = req
        ordered = sorted(seen.values(), key=lambda r: _ORDER[r.key])
        self._requirements: tuple[Requirement, ...] = tuple(ordered)

    # -- composition -------------------------------------------------------------

    def __and__(self, other: "Requirement | PrivacyPolicy") -> "PrivacyPolicy":
        if isinstance(other, Requirement):
            return PrivacyPolicy(*self._requirements, other)
        if isinstance(other, PrivacyPolicy):
            return PrivacyPolicy(*self._requirements, *other._requirements)
        return NotImplemented

    __rand__ = __and__

    # -- access ------------------------------------------------------------------

    @property
    def requirements(self) -> tuple[Requirement, ...]:
        return self._requirements

    def __iter__(self) -> Iterator[Requirement]:
        return iter(self._requirements)

    def __len__(self) -> int:
        return len(self._requirements)

    def requirement(self, cls: type[Requirement]) -> Requirement | None:
        """The policy's requirement of type ``cls``, or None."""
        for req in self._requirements:
            if isinstance(req, cls):
                return req
        return None

    @property
    def k(self) -> int:
        """k-anonymity level (1 — no constraint — when unspecified)."""
        req = self.requirement(KAnonymity)
        return req.k if req is not None else 1

    @property
    def t(self) -> float | None:
        """t-closeness level, or None when the policy does not require it."""
        req = self.requirement(TCloseness)
        return req.t if req is not None else None

    @property
    def l(self) -> int | None:
        req = self.requirement(DistinctLDiversity)
        return req.l if req is not None else None

    @property
    def p(self) -> int | None:
        req = self.requirement(PSensitivity)
        return req.p if req is not None else None

    @property
    def required_distinct(self) -> int:
        """Distinct confidential values every class must hold (l and p unified)."""
        return max(self.l or 1, self.p or 1)

    # -- serialization ------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "PrivacyPolicy":
        """Parse a ``"k=5,t=0.15,l=3"`` spec string (the CLI ``--require`` format)."""
        requirements = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, value = token.partition("=")
            key = key.strip().lower()
            if not sep or key not in _BY_KEY:
                raise PolicyError(
                    f"cannot parse requirement {token!r}; expected key=value "
                    f"with key in {sorted(_BY_KEY)}"
                )
            req_cls = _BY_KEY[key]
            try:
                number = float(value) if req_cls is TCloseness else int(value)
            except ValueError:
                kind = "a number" if req_cls is TCloseness else "an integer"
                raise PolicyError(
                    f"requirement {token!r}: {value!r} is not {kind}"
                ) from None
            requirements.append(req_cls(number))
        if not requirements:
            raise PolicyError(f"policy spec {spec!r} declares no requirements")
        return cls(*requirements)

    def spec(self) -> str:
        """Canonical spec string; ``PrivacyPolicy.parse`` inverts it exactly."""
        return ",".join(req.spec() for req in self._requirements)

    def to_dict(self) -> dict[str, int | float]:
        """JSON-ready mapping ``{key: value}`` (see :meth:`from_dict`)."""
        return {req.key: req.value for req in self._requirements}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, int | float]) -> "PrivacyPolicy":
        """Inverse of :meth:`to_dict`."""
        requirements = []
        for key, value in mapping.items():
            if key not in _BY_KEY:
                raise PolicyError(
                    f"unknown requirement key {key!r}; expected one of {sorted(_BY_KEY)}"
                )
            req_cls = _BY_KEY[key]
            requirements.append(
                req_cls(float(value) if req_cls is TCloseness else int(value))
            )
        if not requirements:
            raise PolicyError("policy mapping declares no requirements")
        return cls(*requirements)

    # -- comparison / repr ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrivacyPolicy):
            return NotImplemented
        return self._requirements == other._requirements

    def __hash__(self) -> int:
        return hash(self._requirements)

    def __str__(self) -> str:
        return self.spec()

    def __repr__(self) -> str:
        inner = ", ".join(repr(req) for req in self._requirements)
        return f"PrivacyPolicy({inner})"


def as_policy(
    policy: "PrivacyPolicy | Requirement | str | Mapping[str, int | float]",
) -> PrivacyPolicy:
    """Coerce any accepted policy form to a :class:`PrivacyPolicy`.

    Accepts a policy, a single requirement, a ``"k=5,t=0.15"`` spec string,
    or a ``{"k": 5, "t": 0.15}`` mapping.
    """
    if isinstance(policy, PrivacyPolicy):
        return policy
    if isinstance(policy, Requirement):
        return PrivacyPolicy(policy)
    if isinstance(policy, str):
        return PrivacyPolicy.parse(policy)
    if isinstance(policy, Mapping):
        return PrivacyPolicy.from_dict(policy)
    raise PolicyError(
        f"cannot interpret {policy!r} as a privacy policy; expected a "
        "PrivacyPolicy, a Requirement, a spec string or a mapping"
    )
