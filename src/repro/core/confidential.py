"""Uniform EMD evaluation over a dataset's confidential attributes.

The three anonymization algorithms need to answer the same two questions
for arbitrary record subsets:

* "what is this cluster's EMD to the whole table?" — where EMD is the
  ordered EMD for numeric/ordinal confidential attributes and the
  equal-ground-distance EMD for nominal ones, maximized over attributes
  when a data set declares several confidential columns;
* (Algorithm 2 only) "how would the EMD change if record *b* in the
  cluster were replaced by record *a*?" — evaluated for every member b at
  once, thousands of times, so it must be incremental.

:class:`ConfidentialModel` wraps a dataset and exposes both, hiding the
attribute-kind dispatch and the tracker bookkeeping.
"""

from __future__ import annotations

import numpy as np

from ..data.attributes import AttributeKind
from ..data.dataset import Microdata
from ..distance.emd import (
    ClusterEMDTracker,
    NominalClusterTracker,
    NominalEMDReference,
    OrderedEMDReference,
)
from ..registry import EMD_MODES


class ConfidentialModel:
    """EMD evaluators for every confidential attribute of one dataset.

    Parameters
    ----------
    data:
        Dataset with at least one attribute whose role is ``CONFIDENTIAL``.
    emd_mode:
        ``"distinct"`` (Li et al. bins; supports incremental trackers) or
        ``"rank"`` (the propositions' per-record bins; evaluation only).
    """

    def __init__(self, data: Microdata, *, emd_mode: str = "distinct") -> None:
        names = data.confidential
        if not names:
            raise ValueError(
                "dataset declares no confidential attributes; assign roles "
                "with Microdata.with_roles(confidential=[...])"
            )
        self.attribute_names = names
        self.emd_mode = emd_mode
        self.n_records = data.n_records
        self._refs: list[object] = []
        self._bins: list[np.ndarray | None] = []
        for name in names:
            spec = data.spec(name)
            column = data.values(name)
            if spec.kind is AttributeKind.NOMINAL:
                ref = NominalEMDReference(column, spec.n_categories)
                self._refs.append(ref)
                self._bins.append(column.astype(np.int64))
            else:
                mode_spec = EMD_MODES.resolve(emd_mode)
                ref = mode_spec.make(column.astype(np.float64))
                self._refs.append(ref)
                if mode_spec.supports_trackers:
                    self._bins.append(ref.bins_of(column.astype(np.float64)))
                else:
                    self._bins.append(None)
        self._values = [data.values(name) for name in names]
        self._specs = [data.spec(name) for name in names]

    @property
    def supports_trackers(self) -> bool:
        """Whether incremental swap evaluation is available (distinct mode)."""
        return all(b is not None for b in self._bins)

    # -- one-shot evaluation -------------------------------------------------------

    def cluster_emd(self, members: np.ndarray, *, sparse: bool = False) -> float:
        """EMD of the cluster given by record indices (max over attributes).

        ``sparse=True`` evaluates ordered distinct-mode attributes with the
        O(c log m) segment path
        (:meth:`OrderedEMDReference.emd_of_bins_sparse`) instead of the
        dense O(m) histogram; the two agree to the last float ulp (same
        terms, different summation grouping).  The merge phase runs sparse;
        the dense default remains the Definition-2 reference arithmetic the
        formal verifier (:mod:`repro.privacy.tcloseness`) applies.
        """
        members = np.asarray(members)
        if members.size == 0:
            raise ValueError("cluster must be non-empty")
        worst = 0.0
        for ref, bins, values in zip(self._refs, self._bins, self._values):
            if sparse and bins is not None and isinstance(ref, OrderedEMDReference):
                value = ref.emd_of_bins_sparse(bins[members])
            elif bins is not None:
                value = ref.emd_of_bins(bins[members])
            else:
                value = ref.emd(values[members])
            worst = max(worst, value)
        return worst

    def partition_emds(
        self, clusters: list[np.ndarray], *, sparse: bool = True
    ) -> np.ndarray:
        """Per-cluster EMD for an explicit list of clusters.

        With ``sparse=True`` (the bulk-reporting default), ordered
        distinct-mode attributes are evaluated with
        :meth:`OrderedEMDReference.emd_of_bins_sparse` (O(c log m) per
        cluster instead of O(m)), which can differ from the dense
        :meth:`cluster_emd` in the last float ulp.  Pass ``sparse=False``
        wherever the value feeds a *verification verdict* against a
        threshold — the formal t-closeness verifier does — so the verdict
        uses exactly the dense Definition-2 evaluation.  The algorithms'
        own decisions (swap refinement, merge selection) run on the sparse
        evaluations, whose agreement with the dense definition is pinned by
        the differential suite in ``tests/distance/test_emd_sparse.py`` and
        the end-to-end golden fixtures.
        """
        if not clusters:
            return np.array([])
        worst = np.zeros(len(clusters))
        for ref, bins, values in zip(self._refs, self._bins, self._values):
            if sparse and bins is not None and isinstance(ref, OrderedEMDReference):
                per_cluster = [
                    ref.emd_of_bins_sparse(bins[members]) for members in clusters
                ]
            elif bins is not None:
                per_cluster = [ref.emd_of_bins(bins[members]) for members in clusters]
            else:
                per_cluster = [ref.emd(values[members]) for members in clusters]
            np.maximum(worst, per_cluster, out=worst)
        return worst

    # -- incremental evaluation (Algorithm 2) -----------------------------------------

    def make_tracker(self, members: np.ndarray) -> "ClusterTrackerSet":
        """Incremental evaluator seeded with a cluster's record indices."""
        if not self.supports_trackers:
            raise ValueError(
                "incremental trackers require emd_mode='distinct' "
                "(rank mode has no per-record bins)"
            )
        return ClusterTrackerSet(self, np.asarray(members))


class ClusterTrackerSet:
    """Max-over-attributes incremental EMD for one mutable cluster.

    All methods address records by their *record index* in the original
    dataset; the per-attribute bin translation happens internally.
    """

    def __init__(self, model: ConfidentialModel, members: np.ndarray) -> None:
        if members.size == 0:
            raise ValueError("cluster must be non-empty")
        self._model = model
        self._trackers = []
        for ref, bins in zip(model._refs, model._bins):
            member_bins = bins[members]
            if isinstance(ref, NominalEMDReference):
                self._trackers.append((NominalClusterTracker(ref, member_bins), bins))
            else:
                self._trackers.append((ClusterEMDTracker(ref, member_bins), bins))

    @property
    def emd(self) -> float:
        """Current cluster EMD (max over confidential attributes).

        The fast sparse evaluation — within ~1e-14 of :attr:`exact_emd`;
        decisions landing inside that float-resolution band should consult
        the exact value.
        """
        return max(tracker.emd for tracker, _ in self._trackers)

    @property
    def exact_emd(self) -> float:
        """Cluster EMD in the dense reference arithmetic (tie adjudication)."""
        return max(tracker.exact_emd for tracker, _ in self._trackers)

    def bins_key(self, record: int) -> tuple[int, ...]:
        """Per-attribute bins of one record — records sharing a key are
        interchangeable for swap scoring (identical scores, all paths)."""
        return tuple(int(bins[record]) for _, bins in self._trackers)

    def exact_swap_emd(self, member_record: int, new_record: int) -> float:
        """One swap's cluster EMD in the dense reference arithmetic."""
        return max(
            tracker.exact_swap_emd(int(bins[member_record]), int(bins[new_record]))
            for tracker, bins in self._trackers
        )

    def swap_emds(self, member_records: np.ndarray, new_record: int) -> np.ndarray:
        """Cluster EMD after replacing each member by ``new_record``.

        Returns one value per entry of ``member_records``; each is the
        max-over-attributes EMD of the hypothetical cluster.
        """
        member_records = np.asarray(member_records)
        out: np.ndarray | None = None
        for tracker, bins in self._trackers:
            scores = tracker.swap_emds(bins[member_records], int(bins[new_record]))
            out = scores if out is None else np.maximum(out, scores)
        if out is None:
            raise ValueError("tracker set has no confidential attributes")
        return out

    def swap_emds_batch(
        self, member_records: np.ndarray, new_records: np.ndarray
    ) -> np.ndarray:
        """:meth:`swap_emds` for a block of incoming candidates at once.

        Returns a ``(len(new_records), len(member_records))`` matrix whose
        row ``b`` is bitwise the vector ``swap_emds(member_records,
        new_records[b])`` would produce (each per-attribute batch scorer
        guarantees row-for-row identity, and the max-over-attributes here
        is elementwise).  The pass is read-only on every tracker, so
        compute backends may evaluate candidate shards concurrently; this
        is the primitive behind
        :meth:`repro.backend.ComputeBackend.score_swaps`.
        """
        member_records = np.asarray(member_records)
        new_records = np.asarray(new_records)
        out: np.ndarray | None = None
        for tracker, bins in self._trackers:
            scores = tracker.swap_emds_batch(bins[member_records], bins[new_records])
            out = scores if out is None else np.maximum(out, scores, out=out)
        if out is None:
            raise ValueError("tracker set has no confidential attributes")
        return out

    def apply_swap(self, removed_record: int, added_record: int) -> None:
        """Commit the replacement of one member record by another."""
        for tracker, bins in self._trackers:
            tracker.apply_swap(int(bins[removed_record]), int(bins[added_record]))

    def snapshot(self) -> dict:
        """Per-attribute tracker snapshots for an exact-resume checkpoint."""
        return {
            f"t{i}": tracker.snapshot()
            for i, (tracker, _) in enumerate(self._trackers)
        }

    @classmethod
    def from_snapshot(
        cls, model: ConfidentialModel, state: dict
    ) -> "ClusterTrackerSet":
        """Rebuild a tracker set against the (deterministically rebuilt)
        confidential model, continuing bit-for-bit."""
        trackers = cls.__new__(cls)
        trackers._model = model
        trackers._trackers = []
        for i, (ref, bins) in enumerate(zip(model._refs, model._bins)):
            sub = state[f"t{i}"]
            if isinstance(ref, NominalEMDReference):
                tracker = NominalClusterTracker.from_snapshot(ref, sub)
            else:
                tracker = ClusterEMDTracker.from_snapshot(ref, sub)
            trackers._trackers.append((tracker, bins))
        return trackers
