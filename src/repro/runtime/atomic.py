"""Atomic, checksummed artifact writes — the crash-safety substrate.

Every artifact this library persists (fitted models, fit checkpoints,
their JSON sidecars) goes through this module, which upholds one
contract: **a reader never observes a half-written file**.  Writes land
in a temporary file in the destination directory, are flushed and
fsync'd, and only then renamed over the destination with ``os.replace``
— the one filesystem operation POSIX guarantees atomic.  The directory
entry itself is fsync'd afterwards so the rename survives a power cut.

A crash therefore leaves either the old artifact (intact) or the new one
(complete); the only residue is a ``*.tmp-*`` file that the next writer
sweeps.  Detection of damage that happens *outside* this layer — a
truncated copy, a bit flip on disk, a hand-edited sidecar — is the
reader's half of the contract: every artifact records SHA-256 content
checksums, and :func:`verify_checksum` / the typed :class:`ArtifactError`
hierarchy turn mismatches into actionable errors instead of numpy
tracebacks deep inside ``np.load``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path
from typing import Mapping

import numpy as np

from .faults import fault_point

#: Suffix marker for in-flight temporary files (swept by later writers).
_TMP_MARKER = ".tmp-"


class ArtifactError(RuntimeError):
    """Base of every persisted-artifact failure this library raises.

    Subclasses carry an actionable message naming the file and the fix;
    callers (CLI, serving loaders) can catch this one type to turn any
    artifact problem into a clean exit instead of a traceback.
    """


class ArtifactMissingError(ArtifactError, FileNotFoundError):
    """An expected artifact file does not exist."""


class ArtifactCorruptError(ArtifactError):
    """An artifact exists but its bytes fail validation (truncation,
    bit flips, checksum mismatch, unparseable JSON/npz)."""


class ArtifactVersionError(ArtifactError):
    """An artifact's format version is not readable by this build."""


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Path) -> str:
    """Hex SHA-256 of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def array_checksums(arrays: Mapping[str, np.ndarray]) -> dict[str, str]:
    """Per-array content checksum over dtype, shape and raw bytes."""
    out: dict[str, str] = {}
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        digest = hashlib.sha256()
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
        out[name] = digest.hexdigest()
    return out


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a completed rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def sweep_tmp_files(directory: Path) -> None:
    """Remove leftover ``*.tmp-*`` files from interrupted writes."""
    for stale in directory.glob(f"*{_TMP_MARKER}*"):
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - racing sweepers
            pass


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + replace).

    The fault point ``atomic.replace`` fires between the durable temp
    write and the rename — the window in which a crash must leave the old
    destination untouched (exercised by the fault-injection suite).
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}{_TMP_MARKER}{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("atomic.replace", path=path, tmp=tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload: object) -> Path:
    """Atomic, deterministic (sorted keys) JSON write."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def atomic_write_npz(path: str | Path, arrays: Mapping[str, np.ndarray]) -> Path:
    """Write an ``.npz`` archive atomically and return its path.

    The archive is serialized in memory first (these artifacts are small
    relative to the datasets they describe), so the on-disk write is a
    single durable byte write followed by one rename.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **dict(arrays))
    return atomic_write_bytes(path, buffer.getvalue())


def read_json(path: str | Path, *, kind: str = "artifact") -> dict:
    """Read a JSON artifact with typed errors for missing/corrupt files."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ArtifactMissingError(
            f"{kind} sidecar {path} does not exist; it is written alongside "
            "the .npz and both files must be kept together"
        ) from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptError(
            f"{kind} sidecar {path} is not valid JSON ({exc}); the file is "
            "truncated or was edited — restore it from a backup or recreate "
            "the artifact"
        ) from None
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(
            f"{kind} sidecar {path} does not contain a JSON object"
        )
    return payload


def read_npz(
    path: str | Path,
    *,
    kind: str = "artifact",
    mmap_mode: str | None = None,
) -> dict[str, np.ndarray]:
    """Read an ``.npz`` artifact into a dict with typed errors.

    Truncated or bit-flipped archives surface as
    :class:`ArtifactCorruptError` naming the file, instead of the
    ``zipfile``/``ValueError`` internals ``np.load`` raises.

    ``mmap_mode="r"`` memory-maps each array in place instead of copying
    it into anonymous memory.  ``np.load`` cannot do this for ``.npz``
    archives, but ``np.savez`` stores its members *uncompressed*
    (``ZIP_STORED``), so each member's data region is a plain ``.npy``
    byte range inside the file: the arrays returned here are read-only
    :class:`numpy.memmap` views onto those ranges.  Every process that
    maps the same artifact then shares one set of page-cache pages — the
    point of the serving workers' shared model registry.  A member that
    is (unexpectedly) compressed falls back to a normal in-memory read.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactMissingError(f"{kind} file {path} does not exist")
    if mmap_mode is None:
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
            raise ArtifactCorruptError(
                f"{kind} file {path} is unreadable ({exc.__class__.__name__}: "
                f"{exc}); the file is truncated or corrupted — restore it "
                "from a backup or recreate the artifact"
            ) from None
    if mmap_mode != "r":
        raise ValueError(
            f"mmap_mode must be 'r' or None for npz artifacts, got {mmap_mode!r}"
        )
    try:
        out: dict[str, np.ndarray] = {}
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                out[name] = _read_member(path, archive, info)
        return out
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
        raise ArtifactCorruptError(
            f"{kind} file {path} is unreadable ({exc.__class__.__name__}: "
            f"{exc}); the file is truncated or corrupted — restore it from a "
            "backup or recreate the artifact"
        ) from None


def _read_member(
    path: Path, archive: zipfile.ZipFile, info: zipfile.ZipInfo
) -> np.ndarray:
    """One npz member as a read-only memmap (in-memory fallback if compressed)."""
    with archive.open(info) as member:
        version = np.lib.format.read_magic(member)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
        else:  # future .npy header revision: correctness over page sharing
            member.seek(0)
            return np.lib.format.read_array(member, allow_pickle=False)
        if (
            info.compress_type != zipfile.ZIP_STORED
            or dtype.hasobject
            or len(shape) == 0
            or 0 in shape  # zero-size ranges cannot be mmapped
        ):
            member.seek(0)
            return np.lib.format.read_array(member, allow_pickle=False)
        header_size = member.tell()
    # The central directory's name/extra lengths can differ from the local
    # header's, so the data offset must be read from the local header.
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ArtifactCorruptError(
            f"artifact file {path} has a damaged zip member header for "
            f"{info.filename!r}"
        )
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    offset = info.header_offset + 30 + name_len + extra_len + header_size
    array = np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )
    # np.ndarray view so downstream isinstance/serialization code sees a
    # plain (read-only, file-backed) array rather than the memmap subclass.
    return array.view(np.ndarray)


def verify_checksum(
    path: Path, expected: str, *, kind: str = "artifact"
) -> None:
    """Raise :class:`ArtifactCorruptError` unless ``path`` hashes to
    ``expected``."""
    actual = sha256_file(path)
    if actual != expected:
        raise ArtifactCorruptError(
            f"{kind} file {path} fails its checksum (recorded "
            f"{expected[:12]}…, found {actual[:12]}…); the file was modified "
            "or corrupted after it was written — restore the matching pair "
            "or recreate the artifact"
        )


def verify_array_checksums(
    arrays: Mapping[str, np.ndarray],
    expected: Mapping[str, str],
    *,
    source: Path,
    kind: str = "artifact",
) -> None:
    """Verify per-array checksums recorded in a sidecar/manifest."""
    missing = sorted(set(expected) - set(arrays))
    if missing:
        raise ArtifactCorruptError(
            f"{kind} file {source} is missing recorded array(s) {missing}; "
            "the .npz does not match its sidecar — restore the matching pair"
        )
    actual = array_checksums({name: arrays[name] for name in expected})
    for name, digest in expected.items():
        if actual[name] != digest:
            raise ArtifactCorruptError(
                f"{kind} array {name!r} in {source} fails its checksum; the "
                "file was modified or corrupted after it was written — "
                "restore the matching pair or recreate the artifact"
            )
