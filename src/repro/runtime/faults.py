"""Fault injection harness for crash-safety testing.

Long anonymization runs die in ways unit tests never exercise: the
process is killed between a checkpoint's temp write and its rename, an
exception fires exactly at a phase boundary, a write is torn mid-file.
This module plants named **fault points** at those spots so tests (and
the CI fault matrix) can make each failure happen on demand:

>>> from repro.runtime import faults
>>> faults.arm("checkpoint.phase:repair", "raise")   # fail at a boundary
>>> faults.arm("kanon.swap@40", "exit")              # die at 40th tick

Fault specs are ``name`` or ``name@N`` (trigger on the N-th hit,
1-based; default 1) with an action:

``raise``
    Raise :class:`InjectedFault` (a ``BaseException`` subclass, so
    ordinary ``except Exception`` recovery code cannot swallow it —
    exactly like a real SIGKILL would not be caught).
``exit``
    ``os._exit(73)`` — an honest process kill for subprocess tests.
``torn``
    For write fault points only: truncate the temp file to half its
    length before continuing, simulating a torn write that the
    checksum layer must then detect.

The environment variable ``REPRO_FAULTS`` arms points in spawned
processes, comma-separated: ``REPRO_FAULTS="atomic.replace=raise,
kanon.swap@3=exit"``.  With nothing armed, :func:`fault_point` is a
dict-truthiness check — effectively free on hot paths.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Exit code used by the ``exit`` action; tests assert on it.
EXIT_CODE = 73

_ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "exit", "torn")


class InjectedFault(BaseException):
    """Raised by an armed ``raise`` fault point.

    Deliberately a ``BaseException``: injected crashes must tear through
    ``except Exception`` blocks the same way a kill signal would, so
    tests prove recovery works from the on-disk state alone.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"injected fault at {name!r}")
        self.name = name


class _Armed:
    __slots__ = ("action", "at", "hits")

    def __init__(self, action: str, at: int) -> None:
        self.action = action
        self.at = at
        self.hits = 0


#: name -> _Armed.  Module-level dict so `if not _armed:` is the entire
#: disarmed cost of a fault_point() call.
_armed: dict[str, _Armed] = {}


def parse_spec(spec: str) -> tuple[str, int, str]:
    """Parse ``"name@N=action"`` into ``(name, at, action)``."""
    target, sep, action = spec.partition("=")
    action = action.strip() if sep else "raise"
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {action!r} in {spec!r}; "
            f"expected one of {_ACTIONS}"
        )
    name, sep, count = target.strip().partition("@")
    at = 1
    if sep:
        try:
            at = int(count)
        except ValueError:
            raise ValueError(f"bad hit count in fault spec {spec!r}") from None
        if at < 1:
            raise ValueError(f"fault hit count must be >= 1, got {spec!r}")
    if not name:
        raise ValueError(f"empty fault point name in spec {spec!r}")
    return name, at, action


def arm(name: str, action: str = "raise", *, at: int = 1) -> None:
    """Arm a fault point so its ``at``-th hit triggers ``action``."""
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {action!r}; expected one of {_ACTIONS}"
        )
    if at < 1:
        raise ValueError(f"fault hit count must be >= 1, got {at}")
    _armed[name] = _Armed(action, at)


def arm_from_spec(specs: str) -> None:
    """Arm fault points from a comma-separated spec string."""
    for spec in specs.split(","):
        spec = spec.strip()
        if not spec:
            continue
        name, at, action = parse_spec(spec)
        arm(name, action, at=at)


def clear() -> None:
    """Disarm every fault point."""
    _armed.clear()


def armed() -> dict[str, str]:
    """Names of currently armed fault points (name -> ``action@at``)."""
    return {name: f"{a.action}@{a.at}" for name, a in _armed.items()}


def load_env() -> None:
    """Arm fault points from ``REPRO_FAULTS`` (call once at startup)."""
    specs = os.environ.get(_ENV_VAR, "")
    if specs:
        arm_from_spec(specs)


def fault_point(name: str, *, path: Path | None = None, tmp: Path | None = None) -> None:
    """Declare a crash-relevant execution point.

    No-op unless a test (or ``REPRO_FAULTS``) armed ``name``.  Write
    fault points pass ``tmp`` so the ``torn`` action can mangle the
    in-flight temp file.
    """
    if not _armed:
        return
    entry = _armed.get(name)
    if entry is None:
        return
    entry.hits += 1
    if entry.hits != entry.at:
        return
    del _armed[name]
    if entry.action == "raise":
        raise InjectedFault(name)
    if entry.action == "exit":
        os._exit(EXIT_CODE)
    if entry.action == "torn":
        if tmp is not None and tmp.exists():
            size = tmp.stat().st_size
            with open(tmp, "r+b") as handle:
                handle.truncate(size // 2)
        return


load_env()
