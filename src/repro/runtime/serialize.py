"""State-tree serialization for checkpoints and artifacts.

Checkpoint state is produced by the algorithms as *nested dicts* whose
leaves are numpy arrays or JSON-able scalars (the ``snapshot()`` protocol
of the engine and the EMD trackers).  This module flattens such a tree
into the two things an ``.npz`` + manifest pair can hold — a flat mapping
of arrays (keys joined with ``/``) and a JSON-able scalar tree — and
reassembles the identical tree on load.  Arrays round-trip bitwise
(dtype, shape and bytes), scalars through JSON (arbitrary-precision ints
included, which the RNG bit-generator state needs).

It also owns the :class:`~repro.data.dataset.Microdata` ↔ state-tree
conversion (a checkpoint directory embeds its input data so a resumed
process needs nothing but the directory) and the content fingerprint
that ties a checkpoint to one (data, configuration) pair.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Mapping

import numpy as np

from ..data.attributes import AttributeKind, AttributeRole, AttributeSpec
from ..data.dataset import Microdata

_SEP = "/"


def pack_state(tree: Mapping) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a nested state tree into ``(arrays, scalars)``.

    Array leaves land in ``arrays`` under their ``/``-joined path;
    everything else (bool/int/float/str/None, and dicts of such — e.g. an
    RNG bit-generator state) lands in the JSON-able ``scalars`` tree at
    the same position.  Keys must not contain ``/``.
    """
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}

    def walk(node: Mapping, prefix: str, meta: dict) -> None:
        for key, value in node.items():
            key = str(key)
            if _SEP in key:
                raise ValueError(f"state key {key!r} must not contain {_SEP!r}")
            path = f"{prefix}{key}"
            if isinstance(value, np.ndarray):
                arrays[path] = value
            elif isinstance(value, dict) and not _is_scalar_dict(value):
                sub: dict = {}
                walk(value, f"{path}{_SEP}", sub)
                if sub:
                    meta[key] = sub
            else:
                meta[key] = _to_scalar(value)

    walk(tree, "", scalars)
    return arrays, scalars


def _is_scalar_dict(value: dict) -> bool:
    """Dicts with no array anywhere below are stored as one JSON leaf
    (keeps e.g. ``rng.bit_generator.state`` intact, big ints and all)."""
    for v in value.values():
        if isinstance(v, np.ndarray):
            return False
        if isinstance(v, dict) and not _is_scalar_dict(v):
            return False
    return True


def _to_scalar(value):
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else repr(value)
    return value


def unpack_state(arrays: Mapping[str, np.ndarray], scalars: Mapping) -> dict:
    """Inverse of :func:`pack_state`."""
    tree: dict = json.loads(json.dumps(scalars))  # deep copy, plain types
    for path, arr in arrays.items():
        node = tree
        parts = path.split(_SEP)
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = arr
    return tree


# -- Microdata <-> state tree --------------------------------------------------


def spec_to_dict(spec: AttributeSpec) -> dict:
    """JSON payload of one attribute spec (shared by models/checkpoints)."""
    return {
        "name": spec.name,
        "kind": spec.kind.value,
        "role": spec.role.value,
        "categories": list(spec.categories),
    }


def spec_from_dict(payload: dict) -> AttributeSpec:
    """Inverse of :func:`spec_to_dict`."""
    return AttributeSpec(
        name=payload["name"],
        kind=AttributeKind(payload["kind"]),
        role=AttributeRole(payload["role"]),
        categories=tuple(payload["categories"]),
    )


def microdata_to_state(data: Microdata) -> dict:
    """State tree holding a full table (columns by position + schema)."""
    state: dict = {
        "schema": {"specs": [spec_to_dict(s) for s in data.schema]},
    }
    for i, name in enumerate(data.attribute_names):
        state[f"col{i}"] = np.asarray(data.values(name))
    return state


def microdata_from_state(state: dict) -> Microdata:
    """Inverse of :func:`microdata_to_state`."""
    schema = [spec_from_dict(d) for d in state["schema"]["specs"]]
    columns = {s.name: state[f"col{i}"] for i, s in enumerate(schema)}
    return Microdata(columns, schema, validate=False)


def data_fingerprint(data: Microdata, config: dict) -> str:
    """Content hash tying a checkpoint to one (data, configuration) pair.

    Covers the schema, every column's exact bytes, and the canonical JSON
    of the fit configuration — anything that can change the fitted output
    changes the fingerprint, so a resume against different data or a
    different policy is refused instead of silently producing a hybrid.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps([spec_to_dict(s) for s in data.schema], sort_keys=True).encode()
    )
    for name in data.attribute_names:
        col = np.ascontiguousarray(data.values(name))
        digest.update(str(col.dtype).encode())
        digest.update(col.tobytes())
    digest.update(json.dumps(config, sort_keys=True).encode())
    return digest.hexdigest()
