"""Crash-safe runtime: atomic artifacts, checkpoints, fault injection.

Three layers, bottom up:

* :mod:`repro.runtime.atomic` — every persisted file goes through
  temp-write + fsync + rename, with SHA-256 checksums and the typed
  :class:`ArtifactError` hierarchy on the read side;
* :mod:`repro.runtime.checkpoint` — the :class:`CheckpointStore`
  (phase + intra-phase snapshots behind a commit-last manifest) and
  :class:`FitProgress` cadence gate that make
  ``Anonymizer.fit(..., checkpoint=dir)`` / ``Anonymizer.resume(dir)``
  continue a killed run bit-for-bit;
* :mod:`repro.runtime.faults` — named fault points
  (``REPRO_FAULTS="atomic.replace=raise"``) so crash recovery is tested
  by actually crashing.
"""

from .atomic import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactVersionError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
    read_json,
    read_npz,
    sha256_bytes,
    sha256_file,
    sweep_tmp_files,
    verify_checksum,
)
from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    FitProgress,
    accepts_progress,
)
from .faults import EXIT_CODE, InjectedFault, fault_point

__all__ = [
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactMissingError",
    "ArtifactVersionError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_text",
    "read_json",
    "read_npz",
    "sha256_bytes",
    "sha256_file",
    "sweep_tmp_files",
    "verify_checksum",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "FitProgress",
    "accepts_progress",
    "EXIT_CODE",
    "InjectedFault",
    "fault_point",
]
