"""Checkpoint store and progress ticks for resumable fits.

A checkpoint directory is a self-contained, crash-consistent record of
one fit in flight:

``config.json``
    The fit configuration (policy, method, kwargs) plus the content
    fingerprint tying the checkpoint to one (data, config) pair.
``data.npz``
    The input table itself, so ``Anonymizer.resume(dir)`` needs nothing
    but the directory.
``phase-<name>.npz``
    Output of a completed pipeline phase (cluster / repair / aggregate).
``progress-<stage>.<seq>.npz``
    Intra-phase snapshot from inside a long loop (Algorithm 2's swap
    refinement, the merge loops), sequence-numbered.
``manifest.json``
    The *commit record*: which phase/progress files are current, with
    their SHA-256 checksums.  Every state write lands fully (atomic
    temp+rename) **before** the manifest is atomically replaced, and
    superseded files are unlinked only **after** the manifest commit —
    so a crash at any instant leaves the directory describing one
    consistent, resumable view (either the old state or the new, never
    a torn mix).

All snapshot payloads go through :mod:`repro.runtime.serialize`, which
round-trips numpy arrays bitwise — the foundation of the resume
guarantee that a killed-and-resumed fit equals an uninterrupted one
bit for bit.
"""

from __future__ import annotations

import inspect
import io
import json
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..data.dataset import Microdata
from .atomic import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactVersionError,
    atomic_write_bytes,
    atomic_write_json,
    read_json,
    read_npz,
    sha256_bytes,
    sweep_tmp_files,
    verify_checksum,
)
from .faults import fault_point
from .serialize import (
    data_fingerprint,
    microdata_from_state,
    microdata_to_state,
    pack_state,
    unpack_state,
)

#: Bumped whenever the on-disk checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__meta__"


def accepts_progress(fn) -> bool:
    """Whether a callable takes an explicit ``progress`` keyword.

    Mirrors :func:`repro.backend.base.accepts_backend`: only an explicit
    parameter counts — a ``**kwargs`` catch-all does not advertise
    checkpoint support.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "progress" in parameters


# -- state files ---------------------------------------------------------------


def write_state_bytes(tree: dict) -> bytes:
    """Serialize a state tree to self-contained ``.npz`` bytes.

    Arrays are stored under their flat ``/``-joined keys; scalars travel
    as JSON embedded in a ``__meta__`` byte array, so a state file can be
    read back with nothing but the file itself.
    """
    arrays, scalars = pack_state(tree)
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "scalars": scalars,
    }
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    return buffer.getvalue()


def read_state_file(path: Path, *, kind: str = "checkpoint state") -> dict:
    """Read a state tree written by :func:`write_state_bytes`."""
    arrays = read_npz(path, kind=kind)
    blob = arrays.pop(_META_KEY, None)
    if blob is None:
        raise ArtifactCorruptError(
            f"{kind} {path} has no embedded metadata; the file is not a "
            "repro state file or was written by an incompatible version"
        )
    try:
        meta = json.loads(bytes(blob).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptError(
            f"{kind} {path} has unreadable embedded metadata ({exc}); the "
            "file is corrupted — recreate the checkpoint"
        ) from None
    version = meta.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{kind} {path} has format version {version}, this build reads "
            f"version {CHECKPOINT_FORMAT_VERSION}; re-run the fit to produce "
            "a fresh checkpoint"
        )
    return unpack_state(arrays, meta["scalars"])


def _stage_slug(stage: str) -> str:
    return stage.replace(":", "-")


class CheckpointStore:
    """Crash-consistent store of one fit's phase and progress snapshots.

    Use :meth:`open` when starting a (possibly restarted) checkpointed
    fit and :meth:`load` when resuming from a directory alone.
    """

    _MANIFEST = "manifest.json"
    _CONFIG = "config.json"
    _DATA = "data.npz"

    def __init__(self, directory: Path, manifest: dict, config: dict) -> None:
        self.directory = Path(directory)
        self._manifest = manifest
        self._config = config

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(cls, directory, *, config: dict, data: Microdata) -> "CheckpointStore":
        """Create (or re-open) a checkpoint directory for a fit.

        A fresh directory is initialised with the config, the data and an
        empty manifest.  If the directory already holds a checkpoint for
        the *same* data and configuration (matching fingerprint), it is
        re-opened as-is — re-running the identical ``fit --checkpoint DIR``
        command after a crash simply continues, and by the bitwise resume
        guarantee produces the same output an uninterrupted run would.
        A checkpoint for *different* data or config is refused rather
        than overwritten.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sweep_tmp_files(directory)
        fingerprint = data_fingerprint(data, config)
        manifest_path = directory / cls._MANIFEST
        if manifest_path.exists():
            manifest = read_json(manifest_path, kind="checkpoint manifest")
            cls._check_manifest(manifest, manifest_path)
            if manifest.get("fingerprint") != fingerprint:
                raise ArtifactError(
                    f"checkpoint directory {directory} belongs to a different "
                    "fit (data or configuration fingerprint mismatch); use a "
                    "fresh directory, or resume the original fit with "
                    "Anonymizer.resume / `fit --resume`"
                )
            config = read_json(directory / cls._CONFIG, kind="checkpoint config")[
                "config"
            ]
            return cls(directory, manifest, config)
        atomic_write_json(
            directory / cls._CONFIG,
            {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "config": config,
            },
        )
        data_bytes = write_state_bytes(microdata_to_state(data))
        atomic_write_bytes(directory / cls._DATA, data_bytes)
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "data_checksum": sha256_bytes(data_bytes),
            "phases": {},
            "progress": {},
        }
        store = cls(directory, manifest, config)
        store._commit()
        return store

    @classmethod
    def load(cls, directory) -> "CheckpointStore":
        """Open an existing checkpoint directory for resuming."""
        directory = Path(directory)
        manifest_path = directory / cls._MANIFEST
        if not directory.is_dir() or not manifest_path.exists():
            raise ArtifactMissingError(
                f"no checkpoint found at {directory}: missing "
                f"{cls._MANIFEST}; pass the directory given to "
                "fit(checkpoint=...) / `fit --checkpoint`"
            )
        sweep_tmp_files(directory)
        manifest = read_json(manifest_path, kind="checkpoint manifest")
        cls._check_manifest(manifest, manifest_path)
        config_payload = read_json(directory / cls._CONFIG, kind="checkpoint config")
        if config_payload.get("fingerprint") != manifest.get("fingerprint"):
            raise ArtifactCorruptError(
                f"checkpoint config {directory / cls._CONFIG} does not match "
                "the manifest fingerprint; the directory mixes files from "
                "different runs — start a fresh checkpointed fit"
            )
        return cls(directory, manifest, config_payload["config"])

    @staticmethod
    def _check_manifest(manifest: dict, path: Path) -> None:
        version = manifest.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ArtifactVersionError(
                f"checkpoint manifest {path} has format version {version}, "
                f"this build reads version {CHECKPOINT_FORMAT_VERSION}; "
                "re-run the fit to produce a fresh checkpoint"
            )
        for key in ("fingerprint", "phases", "progress"):
            if key not in manifest:
                raise ArtifactCorruptError(
                    f"checkpoint manifest {path} is missing its {key!r} "
                    "entry; the file is truncated or hand-edited — start a "
                    "fresh checkpointed fit"
                )

    # -- accessors -------------------------------------------------------------

    @property
    def config(self) -> dict:
        """The fit configuration recorded at checkpoint creation."""
        return self._config

    @property
    def fingerprint(self) -> str:
        return self._manifest["fingerprint"]

    def load_data(self) -> Microdata:
        """The input table embedded in the checkpoint, verified."""
        path = self.directory / self._DATA
        verify_checksum(
            path, self._manifest["data_checksum"], kind="checkpoint data"
        )
        return microdata_from_state(read_state_file(path, kind="checkpoint data"))

    def verify_against(self, data: Microdata) -> None:
        """Refuse to resume against data/config the checkpoint wasn't built on."""
        fingerprint = data_fingerprint(data, self._config)
        if fingerprint != self.fingerprint:
            raise ArtifactError(
                f"checkpoint {self.directory} was created for different data "
                "than supplied; resume with the embedded data "
                "(Anonymizer.resume(dir)) or start a fresh fit"
            )

    # -- phase snapshots -------------------------------------------------------

    def phase_done(self, name: str) -> bool:
        """Whether phase ``name`` has a committed snapshot."""
        return name in self._manifest["phases"]

    def load_phase(self, name: str) -> dict:
        """The committed output state of phase ``name``, verified."""
        entry = self._manifest["phases"][name]
        path = self.directory / entry["file"]
        verify_checksum(path, entry["checksum"], kind=f"phase checkpoint {name!r}")
        return read_state_file(path, kind=f"phase checkpoint {name!r}")

    def complete_phase(self, name: str, state: dict) -> None:
        """Record a phase's output and retire all intra-phase progress.

        The phase file is durably written first; the manifest commit then
        switches the current view in one atomic rename; only afterwards
        are the superseded progress files unlinked.
        """
        file_name = f"phase-{name}.npz"
        payload = write_state_bytes(state)
        atomic_write_bytes(self.directory / file_name, payload)
        stale = [entry["file"] for entry in self._manifest["progress"].values()]
        self._manifest["phases"][name] = {
            "file": file_name,
            "checksum": sha256_bytes(payload),
        }
        self._manifest["progress"] = {}
        self._commit()
        for old in stale:
            (self.directory / old).unlink(missing_ok=True)

    # -- intra-phase progress --------------------------------------------------

    def load_progress(self, stage: str) -> dict | None:
        """The latest progress snapshot for ``stage`` (None if none yet)."""
        entry = self._manifest["progress"].get(stage)
        if entry is None:
            return None
        path = self.directory / entry["file"]
        verify_checksum(
            path, entry["checksum"], kind=f"progress checkpoint {stage!r}"
        )
        return read_state_file(path, kind=f"progress checkpoint {stage!r}")

    def progress_units(self, stage: str) -> int:
        """Unit counter recorded with ``stage``'s latest snapshot (0 if none)."""
        entry = self._manifest["progress"].get(stage)
        return int(entry["units"]) if entry else 0

    def write_progress(self, stage: str, units: int, state: dict) -> None:
        """Snapshot in-flight loop state (sequence-numbered, commit-last)."""
        previous = self._manifest["progress"].get(stage)
        seq = (previous["seq"] + 1) if previous else 1
        file_name = f"progress-{_stage_slug(stage)}.{seq:06d}.npz"
        payload = write_state_bytes(state)
        atomic_write_bytes(self.directory / file_name, payload)
        self._manifest["progress"][stage] = {
            "file": file_name,
            "checksum": sha256_bytes(payload),
            "seq": seq,
            "units": int(units),
        }
        self._commit()
        if previous:
            (self.directory / previous["file"]).unlink(missing_ok=True)

    # -- internals -------------------------------------------------------------

    def _commit(self) -> None:
        atomic_write_json(self.directory / self._MANIFEST, self._manifest)


class FitProgress:
    """Cadenced progress ticks inside long algorithm loops.

    The algorithms call :meth:`tick` at every safe snapshot point with
    the current unit counter (accepted swaps, merges) and a *thunk* that
    builds the state tree; the thunk only runs when the cadence gate
    opens, so disarmed ticks stay cheap.  Cadence never changes computed
    values — only how often they are persisted — so any cadence yields
    the same fitted output.

    Stages whose name ends in ``merge`` are gated by ``every_merges``;
    every other stage (the swap-refinement loops) by ``every_swaps``.  A
    ``min_interval_s`` floor (default 0: disabled, fully deterministic
    ticks) additionally rate-limits wall-clock churn on fast loops.
    """

    def __init__(
        self,
        store: CheckpointStore,
        *,
        every_swaps: int = 2048,
        every_merges: int = 64,
        min_interval_s: float = 0.0,
    ) -> None:
        if every_swaps < 1 or every_merges < 1:
            raise ValueError("checkpoint cadence must be >= 1")
        self.store = store
        self.every_swaps = int(every_swaps)
        self.every_merges = int(every_merges)
        self.min_interval_s = float(min_interval_s)
        self._last_units: dict[str, int] = {}
        self._last_time: dict[str, float] = {}

    def _cadence(self, stage: str) -> int:
        return self.every_merges if stage.endswith("merge") else self.every_swaps

    def load(self, stage: str) -> dict | None:
        """Resume state for a stage, if a progress snapshot exists."""
        state = self.store.load_progress(stage)
        if state is not None:
            self._last_units[stage] = self.store.progress_units(stage)
        return state

    def tick(
        self,
        stage: str,
        units: int,
        state_fn: Callable[[], dict],
        *,
        force: bool = False,
    ) -> bool:
        """Maybe persist a snapshot at a safe point; returns True if written."""
        if not force:
            if units - self._last_units.get(stage, 0) < self._cadence(stage):
                return False
            if self.min_interval_s > 0.0:
                now = time.monotonic()
                if now - self._last_time.get(stage, 0.0) < self.min_interval_s:
                    return False
        self.store.write_progress(stage, units, state_fn())
        self._last_units[stage] = units
        self._last_time[stage] = time.monotonic()
        fault_point(f"progress:{stage}")
        return True
