"""Named registries for pluggable implementations.

Four extension points of the library are discoverable by name:

* **methods** — the anonymization algorithms behind
  :func:`repro.anonymize` and :class:`repro.Anonymizer` (the paper's three
  algorithms ship pre-registered; third parties add their own with
  :func:`register_method`);
* **partitioners** — fixed-size microaggregation heuristics usable as
  Algorithm 1's base step (``mdav``, ``vmdav``, ...);
* **EMD modes** — flavours of the ordered Earth Mover's Distance
  (``distinct`` per Li et al., ``rank`` per the paper's propositions);
* **compute backends** — execution strategies for the engine's hot
  primitives (``serial``, ``threaded``; see :mod:`repro.backend`).

Each registry is a read-only mapping from name to implementation, so
``sorted(METHODS)``, ``"merge" in METHODS`` and ``METHODS["merge"]`` all
work, and the CLI / sweep runner enumerate choices without hard-coding
them.  Registration happens at definition site::

    from repro.registry import register_method

    @register_method("my-algorithm")
    def my_algorithm(data, k, t, **kwargs):
        ...

The built-in entries are registered when their defining modules import,
which ``repro`` (and ``repro.core``) trigger eagerly — importing this
module *alone* yields registries that only fill up once the rest of the
library loads.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, TypeVar

T = TypeVar("T")


class RegistryError(KeyError, ValueError):
    """Raised on lookup of an unregistered name (lists what is available).

    Inherits both ``KeyError`` (it is a failed mapping lookup) and
    ``ValueError`` (the historical type raised for unknown method names, so
    pre-registry callers' ``except ValueError`` handlers keep working).
    """

    def __str__(self) -> str:
        # KeyError.__str__ shows repr(args[0]) — wrong for a sentence.
        return str(self.args[0]) if self.args else ""


class Registry(Mapping[str, T]):
    """A read-only mapping of names to implementations with decorator entry.

    Parameters
    ----------
    kind:
        Human-readable noun for error messages ("method", "partitioner").
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: dict[str, T] = {}

    # -- registration -----------------------------------------------------------

    def register(self, name: str, obj: T | None = None) -> Callable[[T], T] | T:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``register("x")`` returns a decorator; ``register("x", fn)``
        registers immediately and returns ``fn``.  Re-registering a taken
        name raises — replacing an implementation must be an explicit
        :meth:`unregister` first, never an accident of import order.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self._kind} name must be a non-empty string")

        def _add(impl: T) -> T:
            if name in self._entries:
                raise ValueError(
                    f"{self._kind} {name!r} is already registered "
                    f"({self._entries[name]!r}); unregister it first"
                )
            self._entries[name] = impl
            return impl

        if obj is not None:
            return _add(obj)
        return _add

    def unregister(self, name: str) -> T:
        """Remove and return the entry for ``name`` (for tests/extensions)."""
        self.resolve(name)  # raises RegistryError with the available names
        return self._entries.pop(name)

    # -- lookup ------------------------------------------------------------------

    def resolve(self, name: str) -> T:
        """Look up ``name``; unknown names raise listing the alternatives.

        (The inherited :meth:`Mapping.get` keeps its stdlib contract —
        returns ``default`` on a miss — so the raising lookup has its own
        name.)
        """
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self._kind} {name!r}; "
                f"expected one of {sorted(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._entries))

    # -- Mapping protocol ---------------------------------------------------------

    def __getitem__(self, name: str) -> T:
        return self.resolve(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self._kind}: {sorted(self._entries)})"


#: Anonymization algorithms: ``(data, k, t, **kwargs) -> TClosenessResult``.
METHODS: Registry = Registry("method")

#: Fixed-size partitioners: ``(X, k) -> Partition`` over an encoded matrix.
PARTITIONERS: Registry = Registry("partitioner")

#: Ordered-EMD flavours: name -> :class:`EMDModeSpec`.
EMD_MODES: Registry = Registry("EMD mode")

#: Compute backends: name -> zero-argument :class:`ComputeBackend` factory
#: (typically the class itself); resolution goes through
#: :func:`repro.backend.resolve_backend`, which also honours the
#: ``REPRO_BACKEND`` environment default.
BACKENDS: Registry = Registry("backend")


def register_method(name: str, fn: Callable | None = None):
    """Register an anonymization algorithm under ``name`` (decorator)."""
    return METHODS.register(name, fn)


def register_partitioner(name: str, fn: Callable | None = None):
    """Register a fixed-size partitioner under ``name`` (decorator)."""
    return PARTITIONERS.register(name, fn)


def register_emd_mode(name: str, spec=None):
    """Register an ordered-EMD mode descriptor under ``name`` (decorator)."""
    return EMD_MODES.register(name, spec)


def register_backend(name: str, factory=None):
    """Register a compute-backend factory under ``name`` (decorator)."""
    return BACKENDS.register(name, factory)
