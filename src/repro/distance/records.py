"""Record-to-record distances for the partition step of microaggregation.

Microaggregation clusters records by similarity of their quasi-identifiers.
For purely numeric quasi-identifiers the convention (Domingo-Ferrer &
Mateo-Sanz 2002) is Euclidean distance on standardized attributes; for mixed
numeric/categorical quasi-identifiers we provide a Gower-compatible
embedding so the same Euclidean machinery (and thus the same MDAV code)
applies:

* numeric columns are range-normalized to [0, 1];
* ordinal columns are mapped to rank / (m - 1) in [0, 1];
* nominal columns are one-hot encoded and scaled by 1/sqrt(2), so the
  squared distance between two records differing in that attribute is
  exactly 1 — the Gower contribution.
"""

from __future__ import annotations

import numpy as np

# Re-exported for callers that block their own evaluations: the canonical
# kernel and the block iterator live in repro.backend.kernels (shared with
# the clustering engine and every compute backend).
from ..backend.kernels import iter_blocks, sq_distances_block
from ..data.attributes import AttributeKind
from ..data.dataset import Microdata

__all__ = [
    "QIEncoder",
    "centroid",
    "encode_mixed",
    "farthest_index",
    "iter_blocks",
    "k_nearest_indices",
    "k_smallest_indices",
    "nearest_index",
    "pairwise_sq_distances",
    "sq_distances_block",
    "sq_distances_to",
]


def sq_distances_to(X: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance from one point ``x`` to every row of ``X``.

    This is the library's *canonical* distance arithmetic — one call of
    :func:`repro.backend.kernels.sq_distances_block` over the whole
    matrix.  The squares are accumulated column by column, left to right,
    with plain elementwise ufuncs; unlike a BLAS product or an ``einsum``
    reduction (whose internal summation order depends on the numpy build,
    SIMD width and block layout), that order is fully determined by the
    shared kernel — so the clustering engine and every compute backend,
    which evaluate the same kernel over their own buffers and blockings,
    produce bitwise-identical distances, and exact ties between records
    (ubiquitous for integer-valued or category-encoded data) are preserved
    everywhere.
    """
    X = np.asarray(X, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if x.shape != (X.shape[1],):
        raise ValueError(f"x must have shape ({X.shape[1]},), got {x.shape}")
    n, d = X.shape
    if d == 0 or n == 0:
        return np.zeros(n)
    out = np.empty(n)
    tmp = np.empty(n)
    sq_distances_block(X.T, x, out, tmp, 0, n)
    return out


def pairwise_sq_distances(
    X: np.ndarray, *, chunk_size: int | None = None
) -> np.ndarray:
    """Full n x n matrix of squared Euclidean distances.

    Parameters
    ----------
    X:
        Record matrix (n x d).
    chunk_size:
        When given, the Gram product and the broadcast sums are evaluated in
        row blocks of at most ``chunk_size`` rows, so the only full-size
        allocation is the n x n result itself (peak *scratch* memory is
        O(chunk_size * n) instead of a second n x n temporary).  ``None``
        evaluates in one shot, which is fastest while everything fits in
        memory.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    sq = np.einsum("ij,ij->i", X, X)
    if chunk_size is None:
        d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
        # Clamp tiny negatives produced by floating point cancellation.
        np.maximum(d2, 0.0, out=d2)
        return d2
    d2 = np.empty((n, n))
    for start, stop in iter_blocks(n, chunk_size):
        block = d2[start:stop]
        np.matmul(X[start:stop], X.T, out=block)
        block *= -2.0
        block += sq[start:stop, None]
        block += sq[None, :]
        np.maximum(block, 0.0, out=block)
    return d2


def centroid(X: np.ndarray) -> np.ndarray:
    """Mean record of a matrix of records."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValueError(f"X must be a non-empty 2-D matrix, got shape {X.shape}")
    return X.mean(axis=0)


def farthest_index(X: np.ndarray, x: np.ndarray) -> int:
    """Index of the row of ``X`` farthest from ``x`` (ties -> lowest index)."""
    return int(np.argmax(sq_distances_to(X, x)))


def nearest_index(X: np.ndarray, x: np.ndarray) -> int:
    """Index of the row of ``X`` nearest to ``x`` (ties -> lowest index)."""
    return int(np.argmin(sq_distances_to(X, x)))


def k_smallest_indices(d2: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest entries of ``d2``, smallest first.

    This is the one selection primitive every partitioner's "k nearest"
    step reduces to; the clustering engine
    (:class:`repro.microagg.engine.ClusteringEngine`) calls it on masked
    distance buffers so that engine-backed partitions inherit exactly the
    same selection and tie-breaking behaviour as the direct implementations.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k >= len(d2):
        return np.argsort(d2, kind="stable")
    part = np.argpartition(d2, k - 1)[:k]
    return part[np.argsort(d2[part], kind="stable")]


def k_nearest_indices(X: np.ndarray, x: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` rows of ``X`` nearest to ``x``, nearest first."""
    return k_smallest_indices(sq_distances_to(X, x), k)


def encode_mixed(
    data: Microdata,
    names: tuple[str, ...] | None = None,
) -> np.ndarray:
    """Embed (possibly mixed-type) columns into a Euclidean space.

    Returns a float matrix where squared Euclidean distances reproduce a
    Gower-style dissimilarity: range-normalized squared difference for
    numeric, normalized rank difference for ordinal, 0/1 for nominal.

    Purely numeric inputs are standardized instead (zero mean, unit
    variance), matching the microaggregation literature's convention.
    """
    if names is None:
        names = data.quasi_identifiers or data.attribute_names
    specs = [data.spec(name) for name in names]
    if all(s.is_numeric for s in specs):
        return data.matrix(names, scale="standardize")

    blocks: list[np.ndarray] = []
    for spec in specs:
        column = data.values(spec.name).astype(np.float64)
        if spec.kind is AttributeKind.NUMERIC:
            lo, hi = column.min(), column.max()
            span = hi - lo if hi > lo else 1.0
            blocks.append(((column - lo) / span)[:, None])
        elif spec.kind is AttributeKind.ORDINAL:
            denom = max(spec.n_categories - 1, 1)
            blocks.append((column / denom)[:, None])
        else:  # NOMINAL: one-hot / sqrt(2) => squared distance 1 across categories
            onehot = np.zeros((len(column), spec.n_categories))
            onehot[np.arange(len(column)), column.astype(np.int64)] = 1.0
            blocks.append(onehot / np.sqrt(2.0))
    return np.hstack(blocks)


class QIEncoder:
    """Parametric form of :func:`encode_mixed`, fitted once and reusable.

    :func:`encode_mixed` derives its normalization (column means/stds, or
    ranges for the Gower embedding) from the table it encodes — correct for
    one-shot anonymization, but a fitted model serving incoming batches
    must embed *new* records into the geometry of the *fit* data, not into
    each batch's own.  ``QIEncoder`` captures those parameters at fit time;
    :meth:`encode` then reproduces ``encode_mixed(fit_data, names)``
    bit-for-bit on the fit table (same expressions, same stored scalars)
    and applies the identical map to any later matrix.

    The fitted state is a handful of floats per column, (de)serializable
    via :meth:`to_dict`/:meth:`from_dict` — this is what makes
    ``Anonymizer.save``/``load`` round-trip ``transform`` exactly.
    """

    def __init__(
        self,
        names: tuple[str, ...],
        kinds: tuple[str, ...],
        params: tuple[tuple[float, ...], ...],
        standardized: bool,
    ) -> None:
        self.names = tuple(names)
        self.kinds = tuple(kinds)
        self.params = tuple(tuple(float(p) for p in ps) for ps in params)
        self.standardized = bool(standardized)

    @classmethod
    def fit(cls, data: Microdata, names: tuple[str, ...] | None = None) -> "QIEncoder":
        """Capture the encoding parameters of ``data`` (see :func:`encode_mixed`)."""
        if names is None:
            names = data.quasi_identifiers or data.attribute_names
        specs = [data.spec(name) for name in names]
        kinds = tuple(str(s.kind) for s in specs)
        if all(s.is_numeric for s in specs):
            mat = data.matrix(names)
            mean = mat.mean(axis=0)
            std = mat.std(axis=0)
            std[std == 0.0] = 1.0
            params = tuple((m, s) for m, s in zip(mean, std))
            return cls(tuple(names), kinds, params, standardized=True)
        params_list: list[tuple[float, ...]] = []
        for spec in specs:
            column = data.values(spec.name).astype(np.float64)
            if spec.kind is AttributeKind.NUMERIC:
                lo, hi = column.min(), column.max()
                span = hi - lo if hi > lo else 1.0
                params_list.append((float(lo), float(span)))
            elif spec.kind is AttributeKind.ORDINAL:
                params_list.append((float(max(spec.n_categories - 1, 1)),))
            else:
                params_list.append((float(spec.n_categories),))
        return cls(tuple(names), kinds, tuple(params_list), standardized=False)

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Embed a raw value/code matrix (columns parallel to ``names``)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.names):
            raise ValueError(
                f"matrix must have shape (n, {len(self.names)}), got {matrix.shape}"
            )
        if self.standardized:
            mean = np.array([p[0] for p in self.params])
            std = np.array([p[1] for p in self.params])
            return (matrix - mean) / std
        blocks: list[np.ndarray] = []
        for j, (kind, params) in enumerate(zip(self.kinds, self.params)):
            column = matrix[:, j]
            if kind == "numeric":
                lo, span = params
                blocks.append(((column - lo) / span)[:, None])
            elif kind == "ordinal":
                blocks.append((column / params[0])[:, None])
            else:
                n_categories = int(params[0])
                codes = column.astype(np.int64)
                if codes.size and (codes.min() < 0 or codes.max() >= n_categories):
                    raise ValueError(
                        f"column {self.names[j]!r} has codes outside "
                        f"[0, {n_categories})"
                    )
                onehot = np.zeros((len(column), n_categories))
                onehot[np.arange(len(column)), codes] = 1.0
                blocks.append(onehot / np.sqrt(2.0))
        return np.hstack(blocks)

    def encode_data(self, data: Microdata) -> np.ndarray:
        """Embed the ``names`` columns of a :class:`Microdata` table."""
        return self.encode(data.matrix(self.names))

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready parameters (floats survive exactly via ``repr``)."""
        return {
            "names": list(self.names),
            "kinds": list(self.kinds),
            "params": [list(ps) for ps in self.params],
            "standardized": self.standardized,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QIEncoder":
        """Inverse of :meth:`to_dict`."""
        return cls(
            tuple(payload["names"]),
            tuple(payload["kinds"]),
            tuple(tuple(ps) for ps in payload["params"]),
            bool(payload["standardized"]),
        )
