"""Rooted value taxonomies (generalization hierarchies over category labels).

A :class:`Taxonomy` serves two consumers in this library:

* the *hierarchical* Earth Mover's Distance of Li et al. (ICDE 2007), which
  measures how far probability mass moves through a semantic tree, and
* the generalization baselines (Incognito, Mondrian, SABRE), which replace a
  leaf value by one of its ancestors.

Node names must be unique across the whole tree; leaves are the attribute's
category labels.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class TaxonomyError(ValueError):
    """Raised for malformed trees or unknown node lookups."""


class Taxonomy:
    """An immutable rooted tree over category labels.

    Build one from a nested mapping, where internal nodes map to their
    children and leaf lists terminate the recursion::

        Taxonomy.from_nested({
            "Any": {
                "Technical": ["engineer", "lawyer"],
                "Other": ["writer", "dancer"],
            }
        })
    """

    def __init__(
        self,
        root: str,
        children: Mapping[str, Sequence[str]],
    ) -> None:
        self._root = root
        self._children: dict[str, tuple[str, ...]] = {
            name: tuple(kids) for name, kids in children.items()
        }
        self._parent: dict[str, str | None] = {root: None}
        self._depth: dict[str, int] = {root: 0}

        # Walk the tree once: assign parents/depths, detect cycles/dupes.
        stack = [root]
        visited: set[str] = set()
        while stack:
            node = stack.pop()
            if node in visited:
                raise TaxonomyError(f"node {node!r} appears more than once")
            visited.add(node)
            for child in self._children.get(node, ()):
                if child in self._parent:
                    raise TaxonomyError(f"node {child!r} appears more than once")
                self._parent[child] = node
                self._depth[child] = self._depth[node] + 1
                stack.append(child)

        unreachable = set(self._children) - visited
        if unreachable:
            raise TaxonomyError(
                f"internal nodes not reachable from root: {sorted(unreachable)}"
            )
        self._leaves = tuple(
            name for name in self._iter_preorder() if not self._children.get(name)
        )
        if not self._leaves:
            raise TaxonomyError("taxonomy has no leaves")
        self._height = max(self._depth[leaf] for leaf in self._leaves)
        if self._height == 0:
            raise TaxonomyError("taxonomy must have height >= 1 (root plus leaves)")

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_nested(cls, nested: Mapping[str, object]) -> "Taxonomy":
        """Build from a single-rooted nested dict of dicts/lists."""
        if len(nested) != 1:
            raise TaxonomyError(
                f"nested spec must have exactly one root, got {len(nested)}"
            )
        children: dict[str, list[str]] = {}

        def walk(name: str, subtree: object) -> None:
            if isinstance(subtree, Mapping):
                children[name] = list(subtree.keys())
                for child, sub in subtree.items():
                    walk(str(child), sub)
            elif isinstance(subtree, (list, tuple)):
                children[name] = [str(v) for v in subtree]
            else:
                raise TaxonomyError(
                    f"subtree of {name!r} must be a mapping or list, "
                    f"got {type(subtree).__name__}"
                )

        ((root, subtree),) = nested.items()
        walk(str(root), subtree)
        return cls(str(root), children)

    @classmethod
    def flat(cls, categories: Sequence[str], root: str = "*") -> "Taxonomy":
        """A two-level tree: every category hangs directly off the root.

        Under this tree the hierarchical EMD degenerates to the equal-ground
        -distance (total-variation) EMD, which is the semantics Li et al.
        prescribe for nominal attributes without a taxonomy.
        """
        return cls(root, {root: list(categories)})

    # -- structure queries ---------------------------------------------------------

    @property
    def root(self) -> str:
        return self._root

    @property
    def leaves(self) -> tuple[str, ...]:
        """Leaf labels in pre-order (stable, deterministic)."""
        return self._leaves

    @property
    def height(self) -> int:
        """Maximum root-to-leaf depth."""
        return self._height

    def __contains__(self, name: object) -> bool:
        return name in self._parent

    def is_leaf(self, name: str) -> bool:
        """Whether ``name`` has no children."""
        self._check(name)
        return not self._children.get(name)

    def parent(self, name: str) -> str | None:
        """Parent node name, or None for the root."""
        self._check(name)
        return self._parent[name]

    def children(self, name: str) -> tuple[str, ...]:
        """Child node names (empty tuple for leaves)."""
        self._check(name)
        return self._children.get(name, ())

    def depth(self, name: str) -> int:
        """Number of edges from the root (root has depth 0)."""
        self._check(name)
        return self._depth[name]

    def node_height(self, name: str) -> int:
        """Height of a node above the leaf level (root has height = height)."""
        self._check(name)
        return self._height - self._depth[name]

    def leaves_under(self, name: str) -> tuple[str, ...]:
        """All leaf labels in the subtree rooted at ``name``."""
        self._check(name)
        out = []
        stack = [name]
        while stack:
            node = stack.pop()
            kids = self._children.get(node, ())
            if kids:
                stack.extend(reversed(kids))
            else:
                out.append(node)
        return tuple(out)

    def ancestors(self, name: str) -> tuple[str, ...]:
        """Chain of ancestors from the node's parent up to the root."""
        self._check(name)
        chain = []
        cursor = self._parent[name]
        while cursor is not None:
            chain.append(cursor)
            cursor = self._parent[cursor]
        return tuple(chain)

    def lowest_common_ancestor(self, a: str, b: str) -> str:
        """Deepest node having both ``a`` and ``b`` in its subtree."""
        self._check(a)
        self._check(b)
        seen = {a} | set(self.ancestors(a))
        cursor: str | None = b
        while cursor is not None:
            if cursor in seen:
                return cursor
            cursor = self._parent[cursor]
        raise TaxonomyError(f"{a!r} and {b!r} share no ancestor")  # pragma: no cover

    def generalize(self, leaf: str, levels: int) -> str:
        """Ancestor of ``leaf`` after climbing ``levels`` edges (capped at root)."""
        self._check(leaf)
        if levels < 0:
            raise TaxonomyError(f"levels must be >= 0, got {levels}")
        cursor = leaf
        for _ in range(levels):
            parent = self._parent[cursor]
            if parent is None:
                break
            cursor = parent
        return cursor

    def leaf_distance(self, a: str, b: str) -> float:
        """Ground distance of Li et al.: node height of the LCA over tree height."""
        if a == b:
            return 0.0
        return self.node_height(self.lowest_common_ancestor(a, b)) / self._height

    # -- internals -------------------------------------------------------------------

    def _iter_preorder(self) -> Iterable[str]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children.get(node, ())))

    def _check(self, name: str) -> None:
        if name not in self._parent:
            raise TaxonomyError(f"unknown taxonomy node {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Taxonomy(root={self._root!r}, {len(self._leaves)} leaves, "
            f"height={self._height})"
        )
