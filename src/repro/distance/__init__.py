"""Distances between records and between confidential-value distributions."""

from .emd import (
    ClusterEMDTracker,
    NominalClusterTracker,
    NominalEMDReference,
    OrderedEMDReference,
    emd_hierarchical,
    emd_nominal,
    emd_ordered,
)
from .emd import EMDModeSpec
from .records import (
    QIEncoder,
    centroid,
    encode_mixed,
    farthest_index,
    k_nearest_indices,
    nearest_index,
    pairwise_sq_distances,
    sq_distances_to,
)
from .taxonomy import Taxonomy, TaxonomyError

__all__ = [
    "OrderedEMDReference",
    "ClusterEMDTracker",
    "NominalEMDReference",
    "NominalClusterTracker",
    "emd_ordered",
    "emd_nominal",
    "emd_hierarchical",
    "Taxonomy",
    "TaxonomyError",
    "sq_distances_to",
    "pairwise_sq_distances",
    "centroid",
    "farthest_index",
    "nearest_index",
    "k_nearest_indices",
    "encode_mixed",
    "QIEncoder",
    "EMDModeSpec",
]
