"""Earth Mover's Distance (EMD) between confidential-attribute distributions.

t-Closeness (Li, Li & Venkatasubramanian, ICDE 2007) compares the
distribution of the confidential attribute inside an equivalence class
against its distribution over the whole table.  Three ground distances are
implemented, matching the original paper and the needs of Soria-Comas et
al.'s microaggregation algorithms:

``ordered`` (numerical / ordinal attributes)
    Bins are the sorted attribute values; moving mass from bin *i* to bin
    *j* costs ``|i - j| / (m - 1)``.  The EMD then has the closed form

    .. math:: EMD(P, Q) = \\frac{1}{m-1} \\sum_{i=1}^{m}
              \\Bigl| \\sum_{j \\le i} (p_j - q_j) \\Bigr|

    Two flavours are provided.  ``distinct`` mode (the Li et al. definition)
    uses one bin per *distinct* dataset value.  ``rank`` mode uses one bin
    per *record* (n bins of mass 1/n), which is the formulation under which
    the paper's Propositions 1 and 2 are stated; ties are handled by
    spreading a value's mass uniformly over its tied rank slots.  The two
    coincide when all dataset values are distinct.

``nominal``
    Equal ground distance between any two categories; the EMD degenerates
    to total variation distance, ``0.5 * sum_i |p_i - q_i|``.

``hierarchical``
    Ground distance derived from a value taxonomy
    (:class:`~repro.distance.taxonomy.Taxonomy`); mass moving across a
    subtree boundary pays that subtree's height over the tree height.

The module also provides :class:`OrderedEMDReference` — a precomputed frame
for evaluating many clusters against one dataset, including the sparse
segment-wise evaluation that costs O(c log m) per cluster instead of O(m) —
and :class:`ClusterEMDTracker`, the sparse incremental evaluator for the
replace-one-record updates that dominate Algorithm 2's running time.
"""

from __future__ import annotations

from dataclasses import dataclass as _dataclass
from typing import Callable as _Callable, Sequence

import numpy as np

from ..registry import register_emd_mode
from .taxonomy import Taxonomy


def _as_1d_float(values: object, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


class OrderedEMDReference:
    """Precomputed frame for ordered EMD of clusters against one dataset.

    Builds the bin grid and the dataset's distribution once, then evaluates
    any cluster in O(c + m) where c is the cluster size and m the number of
    bins.  All of this library's t-closeness checks and all three paper
    algorithms funnel through this class.

    Parameters
    ----------
    dataset_values:
        Confidential attribute column of the *entire* original dataset.
    mode:
        ``"distinct"`` — one bin per distinct value (Li et al. definition);
        ``"rank"`` — one bin per record (the propositions' formulation).
    """

    __slots__ = (
        "mode",
        "bin_values",
        "q",
        "m",
        "_denom",
        "_tie_lo",
        "_tie_width",
        "_qcum",
        "_qcum_prefix",
    )

    def __init__(self, dataset_values: Sequence[float], *, mode: str = "distinct") -> None:
        values = _as_1d_float(dataset_values, "dataset_values")
        if mode not in ("distinct", "rank"):
            raise ValueError(f"mode must be 'distinct' or 'rank', got {mode!r}")
        self.mode = mode
        n = len(values)
        if mode == "distinct":
            self.bin_values, counts = np.unique(values, return_counts=True)
            self.q = counts.astype(np.float64) / n
        else:
            sorted_values = np.sort(values)
            self.bin_values = sorted_values
            self.q = np.full(n, 1.0 / n)
            # Tie bookkeeping: a value occupying sorted slots [lo, lo+width)
            # spreads its mass uniformly over those slots.
            uniq, lo, width = np.unique(
                sorted_values, return_index=True, return_counts=True
            )
            self._tie_lo = dict(zip(uniq.tolist(), lo.tolist()))
            self._tie_width = dict(zip(uniq.tolist(), width.tolist()))
        self.m = len(self.bin_values)
        self._denom = float(max(self.m - 1, 1))
        self._qcum: np.ndarray | None = None
        self._qcum_prefix: np.ndarray | None = None

    # -- bin mapping -------------------------------------------------------------

    def bins_of(self, values: Sequence[float]) -> np.ndarray:
        """Map values (which must occur in the dataset) to bin indices.

        Only meaningful in ``distinct`` mode, where every value owns exactly
        one bin.  Raises if a value is not a dataset value — clusters are
        subsets of the dataset by construction, so a miss is a caller bug.
        """
        if self.mode != "distinct":
            raise ValueError("bins_of is only defined for mode='distinct'")
        arr = _as_1d_float(values, "values")
        idx = np.searchsorted(self.bin_values, arr)
        idx = np.clip(idx, 0, self.m - 1)
        if not np.array_equal(self.bin_values[idx], arr):
            missing = arr[self.bin_values[idx] != arr]
            raise ValueError(
                f"{missing.size} value(s) not present in the reference dataset "
                f"(first: {missing[0]!r})"
            )
        return idx

    def histogram(self, values: Sequence[float]) -> np.ndarray:
        """Cluster distribution (probability mass per bin) for given values."""
        arr = _as_1d_float(values, "values")
        c = len(arr)
        p = np.zeros(self.m)
        if self.mode == "distinct":
            np.add.at(p, self.bins_of(arr), 1.0 / c)
            return p
        for v in arr.tolist():
            try:
                lo = self._tie_lo[v]
                width = self._tie_width[v]
            except KeyError:
                raise ValueError(
                    f"value {v!r} not present in the reference dataset"
                ) from None
            p[lo : lo + width] += 1.0 / (c * width)
        return p

    # -- EMD evaluation -------------------------------------------------------------

    def emd_of_histogram(self, p: np.ndarray) -> float:
        """EMD of an explicit cluster histogram against the dataset."""
        p = np.asarray(p, dtype=np.float64)
        if p.shape != (self.m,):
            raise ValueError(f"histogram must have shape ({self.m},), got {p.shape}")
        return float(np.abs(np.cumsum(p - self.q)).sum() / self._denom)

    def emd(self, cluster_values: Sequence[float]) -> float:
        """EMD between a cluster's values and the dataset distribution."""
        return self.emd_of_histogram(self.histogram(cluster_values))

    def emd_of_bins(self, bins: np.ndarray, cluster_size: int | None = None) -> float:
        """EMD of a cluster given directly as bin indices (``distinct`` mode)."""
        if self.mode != "distinct":
            raise ValueError("emd_of_bins is only defined for mode='distinct'")
        bins = np.asarray(bins)
        c = cluster_size if cluster_size is not None else len(bins)
        if c <= 0:
            raise ValueError("cluster_size must be positive")
        p = np.bincount(bins, minlength=self.m).astype(np.float64) / c
        return self.emd_of_histogram(p)

    def _ensure_prefix(self) -> tuple[np.ndarray, np.ndarray]:
        """Lazily built cumulative distribution and its prefix sums.

        ``qcum[i] = sum_{j<=i} q_j`` and ``qprefix[i] = sum_{j<i} qcum[j]``;
        together they let any segment sum of ``|const - qcum|`` be evaluated
        with two lookups (see :meth:`_segment_abs_sums`).  Built once per
        reference and shared by every sparse evaluation against it.
        """
        if self._qcum is None:
            self._qcum = np.cumsum(self.q)
            self._qcum_prefix = np.concatenate([[0.0], np.cumsum(self._qcum)])
        return self._qcum, self._qcum_prefix

    def _segment_abs_sums(
        self, starts: np.ndarray, stops: np.ndarray, consts: np.ndarray
    ) -> np.ndarray:
        """Sum of ``|consts_j - qcum_i|`` over segments ``[starts_j, stops_j)``.

        ``consts`` holds the cluster's (constant) cumulative mass on each
        segment; it may be 1-D ``(S,)`` for one cluster or 2-D ``(R, S)``
        for R candidate clusters sharing one segment grid — the reduction
        runs over the last axis either way.  Within a segment ``qcum`` is
        non-decreasing, so ``|const - qcum|`` changes sign at most once; the
        crossing is located by binary search and both halves collapse to
        prefix-sum lookups.
        """
        qcum, qprefix = self._ensure_prefix()
        # First bin index in each segment where cum_q exceeds the constant.
        cross = np.clip(np.searchsorted(qcum, consts, side="right"), starts, stops)
        below = consts * (cross - starts) - (qprefix[cross] - qprefix[starts])
        above = (qprefix[stops] - qprefix[cross]) - consts * (stops - cross)
        return (below + above).sum(axis=-1)

    def emd_of_bins_sparse(
        self, bins: np.ndarray, cluster_size: int | None = None
    ) -> float:
        """EMD of a cluster of bin indices, in O(c log m) instead of O(m).

        Mathematically identical to :meth:`emd_of_bins` but evaluated
        segment-wise: between two consecutive (sorted) member bins the
        cluster's cumulative mass is constant, so the sum of
        ``|cum_p - cum_q|`` over the segment reduces to two prefix-sum
        lookups around the point where the dataset's cumulative distribution
        crosses that constant.  Results can differ from the dense evaluation
        in the last float ulp (different summation order).  This is the
        evaluation the incremental trackers (:class:`ClusterEMDTracker`) and
        all bulk reporting
        (:meth:`repro.core.confidential.ConfidentialModel.partition_emds`)
        are built on; the dense form remains the *definitional* reference,
        pinned to this one by the differential tests in
        ``tests/distance/test_emd_sparse.py``.
        """
        if self.mode != "distinct":
            raise ValueError("emd_of_bins_sparse is only defined for mode='distinct'")
        bins = np.asarray(bins)
        c = cluster_size if cluster_size is not None else len(bins)
        if c <= 0:
            raise ValueError("cluster_size must be positive")
        uniq, counts = np.unique(bins, return_counts=True)
        # Segment j covers bin range [starts[j], stops[j]) where the
        # cluster's cumulative mass is the constant consts[j]; the leading
        # segment [0, first member bin) carries constant 0.
        consts = np.concatenate([[0.0], np.cumsum(counts) / c])
        starts = np.concatenate([[0], uniq])
        stops = np.concatenate([uniq, [self.m]])
        return float(self._segment_abs_sums(starts, stops, consts) / self._denom)


def _insert_at(arr: np.ndarray, idx: int, value) -> np.ndarray:
    """``np.insert(arr, idx, value)`` for 1-D arrays, without its ~25 µs of
    axis-normalization overhead — these arrays are cluster-sized (a handful
    of elements) and the swap loop edits them tens of thousands of times."""
    out = np.empty(arr.size + 1, dtype=arr.dtype)
    out[:idx] = arr[:idx]
    out[idx] = value
    out[idx + 1 :] = arr[idx:]
    return out


def _delete_at(arr: np.ndarray, idx: int) -> np.ndarray:
    """``np.delete(arr, idx)`` for 1-D arrays (see :func:`_insert_at`)."""
    out = np.empty(arr.size - 1, dtype=arr.dtype)
    out[:idx] = arr[:idx]
    out[idx:] = arr[idx + 1 :]
    return out


class ClusterEMDTracker:
    """Incremental ordered-EMD evaluator for one mutable cluster.

    Keeps the cluster as a *sorted multiset of member bins* — O(c) state for
    a cluster of c records, independent of the m dataset bins — plus the
    current EMD as a cached float, so that

    * reading the current EMD is O(1) (:attr:`emd`);
    * *evaluating* a swap (replace the member at bin ``b`` with a candidate
      at bin ``a``) costs O(c log m): the swapped cluster's cumulative mass
      is piecewise constant over at most c + 2 segments, and each segment
      collapses to two prefix-sum lookups against the reference's cached
      cumulative distribution
      (:meth:`OrderedEMDReference._segment_abs_sums`, the engine under
      :meth:`OrderedEMDReference.emd_of_bins_sparse`).  All |C| candidate
      removals share one segment grid and are scored in a single
      vectorized O(c^2 log m) pass (:meth:`swap_emds`) — replacing the
      dense O(|C| x m) broadcast that dominated Algorithm 2's swap phase;
    * *applying* a swap is an O(c) delta update of the sorted member array
      (:meth:`apply_swap`); the cached EMD is refreshed with the same
      segment evaluation the swap was scored with, so the committed value
      equals the score bit-for-bit.

    Swap-contract (shared with :class:`NominalClusterTracker`): a swap
    *replaces* one member — remove at ``remove_bin`` and add at ``add_bin``
    happen simultaneously at constant cluster size (no intermediate
    c - 1-sized cluster); ``remove_bin == add_bin`` is a no-op and scores
    exactly the current :attr:`emd`; bins outside ``[0, m)`` raise
    ``IndexError``; *committing* a removal at a bin that holds no member
    raises ``ValueError``.

    Sparse and dense sums of the same terms can land an ulp apart, and an
    ulp is enough to break an exact tie between two candidate swaps
    differently than the dense predecessor did.  For callers that need the
    predecessor's decisions bit-for-bit (Algorithm 2's golden-pinned swap
    loop), :attr:`exact_emd` and :meth:`exact_swap_emd` reproduce the dense
    tracker's arithmetic *including its path dependence*: the cumulative
    difference vector is materialized lazily from the initial members plus
    the applied-swap history (replayed as the dense O(m) range updates) and
    kept incrementally up to date afterwards.  The fast sparse values stay
    within ~1e-14 of these, so consulting them is only ever needed inside a
    float-resolution decision band.

    This is the data structure that brings the paper's Algorithm 2 from
    unusably slow to the O(n^2/k)–O(n^3/k) envelope the paper reports.
    """

    __slots__ = (
        "ref",
        "size",
        "_member_bins",
        "_emd",
        "_uniq",
        "_cum_counts",
        "_last_scores",
        "_initial_bins",
        "_history",
        "_dense_cum",
        "_dense_emd",
    )

    def __init__(self, ref: OrderedEMDReference, member_bins: np.ndarray) -> None:
        if ref.mode != "distinct":
            raise ValueError("ClusterEMDTracker requires a 'distinct'-mode reference")
        member_bins = np.asarray(member_bins, dtype=np.int64)
        if member_bins.size == 0:
            raise ValueError("cluster must be non-empty")
        if member_bins.min() < 0 or member_bins.max() >= ref.m:
            raise IndexError(f"member bins out of range [0, {ref.m})")
        self.ref = ref
        self.size = int(member_bins.size)
        self._member_bins = np.sort(member_bins)
        self._emd = ref.emd_of_bins_sparse(self._member_bins)
        self._rebuild_grid_cache()
        self._initial_bins = member_bins.copy()
        self._history: list[tuple[int, int]] = []
        self._dense_cum: np.ndarray | None = None
        self._dense_emd = 0.0

    def _rebuild_grid_cache(self) -> None:
        """Per-cluster prefix sums over the member multiset.

        ``_uniq`` holds the distinct member bins and ``_cum_counts[i]`` the
        number of members at or below ``_uniq[i]`` — the add_bin-independent
        half of every scoring grid.  Built from scratch (O(c log c)) at
        construction; accepted swaps maintain it by the O(c) integer delta
        of :meth:`_shift_grid_cache` instead — the arrays are exact integer
        state, so the two routes are indistinguishable to every scorer.
        """
        self._uniq, counts = np.unique(self._member_bins, return_counts=True)
        self._cum_counts = np.cumsum(counts)
        self._last_scores: tuple[np.ndarray, int, np.ndarray] | None = None

    def _shift_grid_cache(self, remove_bin: int, add_bin: int) -> None:
        """Delta-update ``_uniq``/``_cum_counts`` for one committed swap.

        Exactly the arrays :meth:`_rebuild_grid_cache` would recompute
        (all-integer bookkeeping, so equality is exact, not approximate),
        without the per-swap ``np.unique`` sort that dominated the commit
        cost of accept-heavy refinement runs.
        """
        uniq, cum = self._uniq, self._cum_counts
        ri = int(np.searchsorted(uniq, remove_bin))
        count_r = int(cum[ri]) - (int(cum[ri - 1]) if ri else 0)
        if count_r > 1:
            cum[ri:] -= 1
        else:
            uniq = _delete_at(uniq, ri)
            cum = _delete_at(cum, ri)
            cum[ri:] -= 1
        ai = int(np.searchsorted(uniq, add_bin))
        if ai < uniq.size and uniq[ai] == add_bin:
            cum[ai:] += 1
        else:
            uniq = _insert_at(uniq, ai, add_bin)
            cum = _insert_at(cum, ai, int(cum[ai - 1]) if ai else 0)
            cum[ai:] += 1
        self._uniq, self._cum_counts = uniq, cum
        self._last_scores = None

    @property
    def emd(self) -> float:
        """Current EMD of the tracked cluster to the dataset (cached)."""
        return self._emd

    # -- dense reference arithmetic (tie adjudication) -------------------------

    def _materialize_dense(self) -> np.ndarray:
        """Cumulative difference vector, exactly as the dense tracker held it.

        Rebuilt from the initial members and the applied-swap history so the
        float state is *path-dependent* in the same way: the dense tracker
        initialized ``cumsum(p - q)`` once and then applied signed O(m)
        range updates per swap, and a fresh histogram of today's members
        would round differently.
        """
        if self._dense_cum is None:
            p = (
                np.bincount(self._initial_bins, minlength=self.ref.m).astype(
                    np.float64
                )
                / self.size
            )
            self._dense_cum = np.cumsum(p - self.ref.q)
            for remove_bin, add_bin in self._history:
                self._dense_range_update(remove_bin, add_bin)
            self._refresh_dense_emd()
        return self._dense_cum

    def _dense_range_update(self, remove_bin: int, add_bin: int) -> None:
        if add_bin < remove_bin:
            lo, hi, sign = add_bin, remove_bin, +1.0
        else:
            lo, hi, sign = remove_bin, add_bin, -1.0
        self._dense_cum[lo:hi] += sign / self.size

    def _refresh_dense_emd(self) -> None:
        self._dense_emd = float(
            np.abs(self._dense_cum).sum() / self.ref._denom
        )

    @property
    def exact_emd(self) -> float:
        """Current EMD in the dense predecessor's exact arithmetic."""
        self._materialize_dense()
        return self._dense_emd

    def exact_swap_emd(self, remove_bin: int, add_bin: int) -> float:
        """One swap's EMD in the dense predecessor's exact arithmetic.

        Replicates the retired O(|C| x m) broadcast for a single candidate
        (same expressions, same reduction order), evaluated against the
        materialized path-dependent cumulative state — the value the dense
        ``swap_emds`` row for this candidate would have held bit-for-bit.
        """
        self._check_bin(remove_bin)
        self._check_bin(add_bin)
        dense = self._materialize_dense()
        idx = np.arange(self.ref.m)
        add_step = (idx >= add_bin).astype(np.float64)
        remove_steps = (idx[None, :] >= np.array([remove_bin])[:, None]).astype(
            np.float64
        )
        new_cum = dense[None, :] + (1.0 / self.size) * (
            add_step[None, :] - remove_steps
        )
        return float((np.abs(new_cum).sum(axis=1) / self.ref._denom)[0])

    def _check_bin(self, b: int) -> None:
        if not 0 <= b < self.ref.m:
            raise IndexError(f"bin {b} out of range [0, {self.ref.m})")

    def _score_swaps(self, remove_bins: np.ndarray, add_bin: int) -> np.ndarray:
        """Segment-wise EMD of every candidate swap, one shared bin grid.

        The grid's breakpoints are the current member bins plus ``add_bin``
        — a superset of every candidate cluster's breakpoints, so each
        candidate's cumulative mass is constant on every segment (redundant
        breakpoints only split a constant segment in two, which leaves the
        value unchanged up to float regrouping).  Candidate (row) r's
        constant on the segment starting at s is
        ``(#members <= s + [add_bin <= s] - [remove_bins[r] <= s]) / c`` —
        exact integer arithmetic until the single division.  The
        member-only half of the grid comes from the cached per-cluster
        prefix sums (:meth:`_rebuild_grid_cache`); only ``add_bin``'s
        insertion is computed per call.
        """
        ref = self.ref
        uniq, cum = self._uniq, self._cum_counts
        n_uniq = uniq.size
        pos = int(np.searchsorted(uniq, add_bin))
        if pos < n_uniq and uniq[pos] == add_bin:
            grid, grid_cum = uniq, cum
        else:
            grid = np.empty(n_uniq + 1, dtype=np.int64)
            grid[:pos] = uniq[:pos]
            grid[pos] = add_bin
            grid[pos + 1 :] = uniq[pos:]
            grid_cum = np.empty(n_uniq + 1, dtype=np.int64)
            grid_cum[:pos] = cum[:pos]
            grid_cum[pos] = cum[pos - 1] if pos else 0
            grid_cum[pos + 1 :] = cum[pos:]
        n_seg = grid.size + 1
        starts = np.empty(n_seg, dtype=np.int64)
        starts[0] = 0
        starts[1:] = grid
        stops = np.empty(n_seg, dtype=np.int64)
        stops[:-1] = grid
        stops[-1] = ref.m
        counts = np.empty(n_seg, dtype=np.int64)
        counts[0] = cum[0] if uniq[0] == 0 else 0  # members at bin 0
        counts[1:] = grid_cum
        counts += add_bin <= starts
        consts = (counts[None, :] - (remove_bins[:, None] <= starts[None, :])) / (
            self.size
        )
        return ref._segment_abs_sums(starts, stops, consts) / ref._denom

    def emd_with_swap(self, remove_bin: int, add_bin: int) -> float:
        """EMD if one member at ``remove_bin`` were replaced by ``add_bin``."""
        self._check_bin(remove_bin)
        self._check_bin(add_bin)
        if remove_bin == add_bin:
            return self._emd
        return float(self._score_swaps(np.array([remove_bin]), add_bin)[0])

    def swap_emds(self, remove_bins: np.ndarray, add_bin: int) -> np.ndarray:
        """EMD for every candidate swap (vectorized over removal candidates).

        Parameters
        ----------
        remove_bins:
            Bin index of each current member considered for removal.
        add_bin:
            Bin index of the incoming record.

        Returns
        -------
        np.ndarray
            ``out[j]`` is the cluster EMD after replacing member ``j`` by the
            incoming record; entries with ``remove_bins[j] == add_bin`` are
            exactly the current :attr:`emd` (the swap is a no-op).
        """
        remove_bins = np.asarray(remove_bins, dtype=np.int64)
        if remove_bins.size:
            self._check_bin(int(remove_bins.min()))
            self._check_bin(int(remove_bins.max()))
        self._check_bin(add_bin)
        out = self._score_swaps(remove_bins, add_bin)
        out[remove_bins == add_bin] = self._emd
        # Remember this scoring pass so a subsequent apply_swap of one of
        # these candidates commits the already-computed value instead of
        # re-evaluating it (invalidated as soon as the cluster changes).
        self._last_scores = (remove_bins, add_bin, out)
        return out

    def swap_emds_batch(
        self, remove_bins: np.ndarray, add_bins: np.ndarray
    ) -> np.ndarray:
        """:meth:`swap_emds` for a whole block of incoming candidates.

        Returns the ``(len(add_bins), len(remove_bins))`` matrix whose row
        ``b`` is **bitwise** ``swap_emds(remove_bins, add_bins[b])``: each
        candidate is scored on exactly the segment grid the one-candidate
        call would build (candidates whose bin already belongs to the
        member multiset share the member grid; the rest get the member
        grid with their own bin inserted), all integer grid arithmetic is
        exact, and the float segment reduction runs per row over the same
        contiguous axis — so regrouping candidates into one call (or
        sharding them across a backend's workers) cannot move a single
        ulp.  This is what collapses Algorithm 2's per-candidate numpy
        dispatch (~40 µs each) into one call per speculative block.

        Scoring is *read-only*: unlike :meth:`swap_emds`, no scoring-pass
        cache is retained (a later :meth:`apply_swap` simply re-evaluates
        its one pair, which lands on the identical float), which makes
        concurrent batch scoring from backend worker threads safe.
        """
        remove_bins = np.asarray(remove_bins, dtype=np.int64)
        add_bins = np.asarray(add_bins, dtype=np.int64)
        if remove_bins.size:
            self._check_bin(int(remove_bins.min()))
            self._check_bin(int(remove_bins.max()))
        if add_bins.size:
            self._check_bin(int(add_bins.min()))
            self._check_bin(int(add_bins.max()))
        n_cand = add_bins.size
        out = np.empty((n_cand, remove_bins.size))
        if n_cand == 0:
            return out
        ref = self.ref
        uniq, cum = self._uniq, self._cum_counts
        n_uniq = uniq.size
        members_at_zero = int(cum[0]) if uniq[0] == 0 else 0
        pos = np.searchsorted(uniq, add_bins)
        in_uniq = (pos < n_uniq) & (uniq[np.minimum(pos, n_uniq - 1)] == add_bins)

        shared = np.flatnonzero(in_uniq)
        if shared.size:
            # Candidates already in the member multiset score on the
            # member grid itself, exactly like the single-candidate path.
            n_seg = n_uniq + 1
            starts = np.empty(n_seg, dtype=np.int64)
            starts[0] = 0
            starts[1:] = uniq
            stops = np.empty(n_seg, dtype=np.int64)
            stops[:-1] = uniq
            stops[-1] = ref.m
            counts = np.empty(n_seg, dtype=np.int64)
            counts[0] = members_at_zero
            counts[1:] = cum
            counts = counts[None, :] + (add_bins[shared, None] <= starts[None, :])
            consts = (
                counts[:, None, :] - (remove_bins[None, :, None] <= starts[None, None, :])
            ) / (self.size)
            out[shared] = ref._segment_abs_sums(starts, stops, consts) / ref._denom

        fresh = np.flatnonzero(~in_uniq)
        if fresh.size:
            # Vectorized insertion of each candidate's bin into the member
            # grid — same breakpoints, same integer prefix counts as the
            # single-candidate insertion, just built for all rows at once.
            pos_f = pos[fresh][:, None]
            add_f = add_bins[fresh][:, None]
            j = np.arange(n_uniq + 1)[None, :]
            u_lo = uniq[np.minimum(j, n_uniq - 1)]
            u_hi = uniq[np.maximum(j - 1, 0)]
            grid = np.where(j < pos_f, u_lo, np.where(j == pos_f, add_f, u_hi))
            c_lo = cum[np.minimum(j, n_uniq - 1)]
            c_hi = cum[np.maximum(j - 1, 0)]
            cum_at_pos = np.where(pos_f > 0, cum[np.maximum(pos_f - 1, 0)], 0)
            grid_cum = np.where(
                j < pos_f, c_lo, np.where(j == pos_f, cum_at_pos, c_hi)
            )
            n_rows = fresh.size
            n_seg = n_uniq + 2
            starts = np.empty((n_rows, n_seg), dtype=np.int64)
            starts[:, 0] = 0
            starts[:, 1:] = grid
            stops = np.empty((n_rows, n_seg), dtype=np.int64)
            stops[:, :-1] = grid
            stops[:, -1] = ref.m
            counts = np.empty((n_rows, n_seg), dtype=np.int64)
            counts[:, 0] = members_at_zero
            counts[:, 1:] = grid_cum
            counts = counts + (add_f <= starts)
            consts = (
                counts[:, None, :] - (remove_bins[None, :, None] <= starts[:, None, :])
            ) / (self.size)
            out[fresh] = (
                ref._segment_abs_sums(starts[:, None, :], stops[:, None, :], consts)
                / ref._denom
            )

        out[add_bins[:, None] == remove_bins[None, :]] = self._emd
        return out

    def snapshot(self) -> dict:
        """Capture tracker state for an exact-resume checkpoint.

        Everything float-path-dependent is saved verbatim: the cached EMD
        (committed scoring-pass values), the dense adjudication state if it
        was ever materialized, and the swap history that allows a restored
        tracker to materialize it later with the identical replay.  The
        scoring-pass memo (``_last_scores``) is deliberately dropped — a
        post-restore ``apply_swap`` re-scores its one pair on the same
        segment grid and lands on the identical float — and checkpoint
        ticks fire only at committed-swap boundaries, where the memo is
        already invalidated.
        """
        state = {
            "member_bins": self._member_bins.copy(),
            "emd": float(self._emd),
            "uniq": self._uniq.copy(),
            "cum_counts": self._cum_counts.copy(),
            "initial_bins": self._initial_bins.copy(),
            "history": np.asarray(self._history, dtype=np.int64).reshape(-1, 2),
            "dense_emd": float(self._dense_emd),
            "has_dense": bool(self._dense_cum is not None),
        }
        if self._dense_cum is not None:
            state["dense_cum"] = self._dense_cum.copy()
        return state

    @classmethod
    def from_snapshot(
        cls, ref: OrderedEMDReference, state: dict
    ) -> "ClusterEMDTracker":
        """Rebuild a tracker from :meth:`snapshot`, continuing bit-for-bit."""
        tracker = cls.__new__(cls)
        tracker.ref = ref
        member_bins = np.asarray(state["member_bins"], dtype=np.int64)
        tracker.size = int(member_bins.size)
        tracker._member_bins = member_bins.copy()
        tracker._emd = float(state["emd"])
        tracker._uniq = np.asarray(state["uniq"], dtype=np.int64).copy()
        tracker._cum_counts = np.asarray(
            state["cum_counts"], dtype=np.int64
        ).copy()
        tracker._last_scores = None
        tracker._initial_bins = np.asarray(
            state["initial_bins"], dtype=np.int64
        ).copy()
        tracker._history = [
            (int(r), int(a))
            for r, a in np.asarray(state["history"], dtype=np.int64).reshape(
                -1, 2
            )
        ]
        if bool(state["has_dense"]):
            tracker._dense_cum = np.asarray(
                state["dense_cum"], dtype=np.float64
            ).copy()
        else:
            tracker._dense_cum = None
        tracker._dense_emd = float(state["dense_emd"])
        return tracker

    def apply_swap(self, remove_bin: int, add_bin: int) -> None:
        """Commit a swap previously scored by :meth:`swap_emds`.

        Delta-updates the sorted member multiset in O(c) and caches the
        swapped cluster's EMD, evaluated with exactly the arithmetic of the
        scoring pass — so :attr:`emd` afterwards equals the accepted
        ``swap_emds`` entry bit-for-bit.  ``remove_bin`` must currently hold
        a member (the dense predecessor silently produced a negative-mass
        histogram here; that was never a meaningful cluster).
        """
        self._check_bin(remove_bin)
        self._check_bin(add_bin)
        if remove_bin == add_bin:
            return
        members = self._member_bins
        idx = int(np.searchsorted(members, remove_bin))
        if idx >= self.size or members[idx] != remove_bin:
            raise ValueError(
                f"remove_bin {remove_bin} is not a member of the cluster"
            )
        score: float | None = None
        if self._last_scores is not None:
            last_removes, last_add, last_out = self._last_scores
            if last_add == add_bin:
                hits = np.flatnonzero(last_removes == remove_bin)
                if hits.size:
                    # remove_bin != add_bin here, so the no-op fill never
                    # touched this entry: it is the raw scoring-pass value.
                    score = float(last_out[hits[0]])
        if score is None:
            score = float(self._score_swaps(np.array([remove_bin]), add_bin)[0])
        self._emd = score
        without = _delete_at(members, idx)
        self._member_bins = _insert_at(
            without, int(np.searchsorted(without, add_bin)), add_bin
        )
        self._shift_grid_cache(remove_bin, add_bin)
        self._history.append((remove_bin, add_bin))
        if self._dense_cum is not None:
            self._dense_range_update(remove_bin, add_bin)
            self._refresh_dense_emd()


@_dataclass(frozen=True)
class EMDModeSpec:
    """Registry descriptor for one ordered-EMD flavour.

    Attributes
    ----------
    name:
        Registered mode name (``emd_mode=`` accepts it everywhere).
    supports_trackers:
        Whether references built by this mode expose the incremental
        swap-tracker protocol (``bins_of`` / :class:`ClusterEMDTracker`)
        that Algorithm 2 and the sparse merge phase require.
    factory:
        ``(dataset_values) -> reference`` builder; the reference must offer
        ``emd(cluster_values)`` and, when ``supports_trackers``, the
        distinct-mode bin API.
    """

    name: str
    supports_trackers: bool
    factory: _Callable[[np.ndarray], object]

    def make(self, dataset_values: np.ndarray) -> object:
        """Build the mode's EMD reference for one confidential column."""
        return self.factory(dataset_values)


register_emd_mode(
    "distinct",
    EMDModeSpec(
        name="distinct",
        supports_trackers=True,
        factory=lambda values: OrderedEMDReference(values, mode="distinct"),
    ),
)
register_emd_mode(
    "rank",
    EMDModeSpec(
        name="rank",
        supports_trackers=False,
        factory=lambda values: OrderedEMDReference(values, mode="rank"),
    ),
)


class NominalEMDReference:
    """Precomputed frame for equal-ground-distance EMD (total variation).

    The nominal counterpart of :class:`OrderedEMDReference`: for attributes
    without an order, Li et al. define the ground distance between any two
    categories as 1, under which the EMD collapses to
    ``0.5 * sum_i |p_i - q_i|``.
    """

    __slots__ = ("n_categories", "q", "m")

    def __init__(self, dataset_codes: Sequence[int], n_categories: int) -> None:
        codes = np.asarray(dataset_codes, dtype=np.int64)
        if codes.ndim != 1 or codes.size == 0:
            raise ValueError("dataset_codes must be a non-empty 1-D array")
        if n_categories < 1:
            raise ValueError(f"n_categories must be >= 1, got {n_categories}")
        if codes.min() < 0 or codes.max() >= n_categories:
            raise ValueError(f"dataset codes outside [0, {n_categories})")
        self.n_categories = int(n_categories)
        self.m = self.n_categories
        self.q = np.bincount(codes, minlength=n_categories) / codes.size

    def bins_of(self, codes: Sequence[int]) -> np.ndarray:
        """Codes *are* bins for nominal attributes (validated pass-through)."""
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_categories):
            raise ValueError(f"codes outside [0, {self.n_categories})")
        return arr

    def emd(self, cluster_codes: Sequence[int]) -> float:
        """EMD (total variation) between the cluster and the dataset."""
        return self.emd_of_bins(self.bins_of(cluster_codes))

    def emd_of_bins(self, bins: np.ndarray, cluster_size: int | None = None) -> float:
        """EMD of a cluster given as codes (mirrors the ordered API)."""
        bins = self.bins_of(bins)
        if bins.size == 0:
            raise ValueError("cluster must be non-empty")
        c = cluster_size if cluster_size is not None else len(bins)
        p = np.bincount(bins, minlength=self.n_categories) / c
        return float(0.5 * np.abs(p - self.q).sum())


class NominalClusterTracker:
    """Incremental total-variation EMD evaluator for one mutable cluster.

    The nominal counterpart of :class:`ClusterEMDTracker`, under the same
    swap-contract (see that class's docstring): swaps *replace* one member
    at constant cluster size, ``remove_bin == add_bin`` scores exactly the
    current :attr:`emd`, out-of-range bins raise ``IndexError``, and
    committing a removal from an empty category raises ``ValueError``.
    Scoring a swap only touches the two affected category bins, so
    evaluating all |C| candidate removals is O(|C|).
    """

    __slots__ = ("ref", "size", "_diff", "_counts", "_step")

    def __init__(self, ref: NominalEMDReference, member_bins: np.ndarray) -> None:
        member_bins = np.asarray(member_bins, dtype=np.int64)
        if member_bins.size == 0:
            raise ValueError("cluster must be non-empty")
        if member_bins.min() < 0 or member_bins.max() >= ref.n_categories:
            raise IndexError(f"member bins out of range [0, {ref.n_categories})")
        self.ref = ref
        self.size = int(member_bins.size)
        self._counts = np.bincount(member_bins, minlength=ref.n_categories)
        p = self._counts / self.size
        self._diff = p - ref.q
        self._step = 1.0 / self.size

    @property
    def emd(self) -> float:
        """Current EMD (total variation) of the tracked cluster."""
        return float(0.5 * np.abs(self._diff).sum())

    @property
    def exact_emd(self) -> float:
        """Alias of :attr:`emd` — this tracker's fast path *is* the dense
        predecessor's arithmetic (O(categories) state, unchanged)."""
        return self.emd

    def exact_swap_emd(self, remove_bin: int, add_bin: int) -> float:
        """One swap's EMD, grouped exactly as the vectorized scoring pass."""
        return float(self.swap_emds(np.array([remove_bin]), add_bin)[0])

    def _check_bin(self, b: int) -> None:
        if not 0 <= b < self.ref.n_categories:
            raise IndexError(f"bin {b} out of range [0, {self.ref.n_categories})")

    def emd_with_swap(self, remove_bin: int, add_bin: int) -> float:
        """EMD if one member at ``remove_bin`` were replaced by ``add_bin``."""
        self._check_bin(remove_bin)
        self._check_bin(add_bin)
        if remove_bin == add_bin:
            return self.emd
        d = self._diff
        delta = (
            abs(d[add_bin] + self._step)
            - abs(d[add_bin])
            + abs(d[remove_bin] - self._step)
            - abs(d[remove_bin])
        )
        return float(self.emd + 0.5 * delta)

    def swap_emds(self, remove_bins: np.ndarray, add_bin: int) -> np.ndarray:
        """EMD for every candidate swap (vectorized over removal candidates).

        Parameters
        ----------
        remove_bins:
            Bin (category) index of each current member considered for
            removal.
        add_bin:
            Bin (category) index of the incoming record.

        Returns
        -------
        np.ndarray
            ``out[j]`` is the cluster EMD after replacing member ``j`` by the
            incoming record; entries with ``remove_bins[j] == add_bin`` are
            exactly the current :attr:`emd` (the swap is a no-op).
        """
        remove_bins = np.asarray(remove_bins, dtype=np.int64)
        if remove_bins.size:
            self._check_bin(int(remove_bins.min()))
            self._check_bin(int(remove_bins.max()))
        self._check_bin(add_bin)
        d = self._diff
        base = self.emd
        gain_add = abs(d[add_bin] + self._step) - abs(d[add_bin])
        gain_remove = np.abs(d[remove_bins] - self._step) - np.abs(d[remove_bins])
        out = base + 0.5 * (gain_add + gain_remove)
        # A swap that removes and adds the same category is a no-op.
        out[remove_bins == add_bin] = base
        return out

    def swap_emds_batch(
        self, remove_bins: np.ndarray, add_bins: np.ndarray
    ) -> np.ndarray:
        """:meth:`swap_emds` for a block of candidates (rows bitwise equal).

        The two-sided gain decomposition is separable in (candidate,
        removal), so the batch is one broadcast — every entry evaluates
        the identical ``base + 0.5 * (gain_add + gain_remove)`` expression
        the one-candidate call does.  Read-only, like the ordered
        tracker's batch scorer.
        """
        remove_bins = np.asarray(remove_bins, dtype=np.int64)
        add_bins = np.asarray(add_bins, dtype=np.int64)
        if remove_bins.size:
            self._check_bin(int(remove_bins.min()))
            self._check_bin(int(remove_bins.max()))
        if add_bins.size:
            self._check_bin(int(add_bins.min()))
            self._check_bin(int(add_bins.max()))
        d = self._diff
        base = self.emd
        gain_add = np.abs(d[add_bins] + self._step) - np.abs(d[add_bins])
        gain_remove = np.abs(d[remove_bins] - self._step) - np.abs(d[remove_bins])
        out = base + 0.5 * (gain_add[:, None] + gain_remove[None, :])
        out[add_bins[:, None] == remove_bins[None, :]] = base
        return out

    def snapshot(self) -> dict:
        """Capture tracker state for an exact-resume checkpoint.

        ``_diff`` accumulates float steps in swap order, so it is saved
        verbatim rather than rebuilt from the counts.
        """
        return {
            "counts": self._counts.copy(),
            "diff": self._diff.copy(),
            "size": int(self.size),
        }

    @classmethod
    def from_snapshot(
        cls, ref: NominalEMDReference, state: dict
    ) -> "NominalClusterTracker":
        """Rebuild a tracker from :meth:`snapshot`, continuing bit-for-bit."""
        tracker = cls.__new__(cls)
        tracker.ref = ref
        tracker.size = int(state["size"])
        tracker._counts = np.asarray(state["counts"], dtype=np.int64).copy()
        tracker._diff = np.asarray(state["diff"], dtype=np.float64).copy()
        tracker._step = 1.0 / tracker.size
        return tracker

    def apply_swap(self, remove_bin: int, add_bin: int) -> None:
        """Commit a swap previously scored by :meth:`swap_emds`.

        ``remove_bin`` must currently hold at least one member; removing
        from an empty category would leave a negative-mass histogram.
        """
        self._check_bin(remove_bin)
        self._check_bin(add_bin)
        if remove_bin == add_bin:
            return
        if self._counts[remove_bin] <= 0:
            raise ValueError(
                f"remove_bin {remove_bin} is not a member of the cluster"
            )
        self._counts[remove_bin] -= 1
        self._counts[add_bin] += 1
        self._diff[add_bin] += self._step
        self._diff[remove_bin] -= self._step


# -- module-level convenience functions -----------------------------------------------


def emd_ordered(
    cluster_values: Sequence[float],
    dataset_values: Sequence[float],
    *,
    mode: str = "distinct",
) -> float:
    """One-shot ordered EMD between a cluster and the full dataset.

    Prefer building an :class:`OrderedEMDReference` when evaluating many
    clusters against the same dataset.
    """
    return OrderedEMDReference(dataset_values, mode=mode).emd(cluster_values)


def emd_nominal(
    cluster_codes: Sequence[int],
    dataset_codes: Sequence[int],
    n_categories: int,
) -> float:
    """Equal-ground-distance EMD (total variation) for nominal attributes."""
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    cl = np.asarray(cluster_codes, dtype=np.int64)
    ds = np.asarray(dataset_codes, dtype=np.int64)
    if cl.size == 0 or ds.size == 0:
        raise ValueError("cluster and dataset must be non-empty")
    for arr, label in ((cl, "cluster"), (ds, "dataset")):
        if arr.min() < 0 or arr.max() >= n_categories:
            raise ValueError(f"{label} codes outside [0, {n_categories})")
    p = np.bincount(cl, minlength=n_categories) / cl.size
    q = np.bincount(ds, minlength=n_categories) / ds.size
    return float(0.5 * np.abs(p - q).sum())


def emd_hierarchical(
    cluster_labels: Sequence[str],
    dataset_labels: Sequence[str],
    taxonomy: Taxonomy,
) -> float:
    """Hierarchical EMD of Li et al. for nominal attributes with a taxonomy.

    Computed bottom-up: each internal node N "absorbs" the surplus mass of
    its children; the cost charged at N is
    ``node_height(N)/H * min(positive surplus, negative surplus)`` — the
    mass that must cross N on its way to a sibling subtree.
    """
    cluster = list(cluster_labels)
    dataset = list(dataset_labels)
    if not cluster or not dataset:
        raise ValueError("cluster and dataset must be non-empty")
    leaf_set = set(taxonomy.leaves)
    for label in cluster + dataset:
        if label not in leaf_set:
            raise ValueError(f"label {label!r} is not a leaf of the taxonomy")

    extra: dict[str, float] = {leaf: 0.0 for leaf in taxonomy.leaves}
    for label in cluster:
        extra[label] += 1.0 / len(cluster)
    for label in dataset:
        extra[label] -= 1.0 / len(dataset)

    total_cost = 0.0
    # Process internal nodes deepest-first so children are final when read.
    internal = [
        node
        for node in _preorder_nodes(taxonomy)
        if not taxonomy.is_leaf(node)
    ]
    for node in sorted(internal, key=taxonomy.depth, reverse=True):
        child_extras = [extra[c] for c in taxonomy.children(node)]
        pos = sum(e for e in child_extras if e > 0)
        neg = -sum(e for e in child_extras if e < 0)
        # Mass that stays within this subtree but crosses child boundaries
        # pays for climbing to this node and back down (Li et al. charge the
        # node height once per unit of matched surplus).
        total_cost += (taxonomy.node_height(node) / taxonomy.height) * min(pos, neg)
        extra[node] = sum(child_extras)
    return float(total_cost)


def _preorder_nodes(taxonomy: Taxonomy) -> list[str]:
    out = [taxonomy.root]
    stack = [taxonomy.root]
    while stack:
        node = stack.pop()
        for child in taxonomy.children(node):
            out.append(child)
            stack.append(child)
    return out
