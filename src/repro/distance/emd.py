"""Earth Mover's Distance (EMD) between confidential-attribute distributions.

t-Closeness (Li, Li & Venkatasubramanian, ICDE 2007) compares the
distribution of the confidential attribute inside an equivalence class
against its distribution over the whole table.  Three ground distances are
implemented, matching the original paper and the needs of Soria-Comas et
al.'s microaggregation algorithms:

``ordered`` (numerical / ordinal attributes)
    Bins are the sorted attribute values; moving mass from bin *i* to bin
    *j* costs ``|i - j| / (m - 1)``.  The EMD then has the closed form

    .. math:: EMD(P, Q) = \\frac{1}{m-1} \\sum_{i=1}^{m}
              \\Bigl| \\sum_{j \\le i} (p_j - q_j) \\Bigr|

    Two flavours are provided.  ``distinct`` mode (the Li et al. definition)
    uses one bin per *distinct* dataset value.  ``rank`` mode uses one bin
    per *record* (n bins of mass 1/n), which is the formulation under which
    the paper's Propositions 1 and 2 are stated; ties are handled by
    spreading a value's mass uniformly over its tied rank slots.  The two
    coincide when all dataset values are distinct.

``nominal``
    Equal ground distance between any two categories; the EMD degenerates
    to total variation distance, ``0.5 * sum_i |p_i - q_i|``.

``hierarchical``
    Ground distance derived from a value taxonomy
    (:class:`~repro.distance.taxonomy.Taxonomy`); mass moving across a
    subtree boundary pays that subtree's height over the tree height.

The module also provides :class:`OrderedEMDReference` — a precomputed frame
for evaluating many clusters against one dataset — and
:class:`ClusterEMDTracker`, an O(m) incremental evaluator for the
add/remove-one-record updates that dominate Algorithm 2's running time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .taxonomy import Taxonomy


def _as_1d_float(values: object, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


class OrderedEMDReference:
    """Precomputed frame for ordered EMD of clusters against one dataset.

    Builds the bin grid and the dataset's distribution once, then evaluates
    any cluster in O(c + m) where c is the cluster size and m the number of
    bins.  All of this library's t-closeness checks and all three paper
    algorithms funnel through this class.

    Parameters
    ----------
    dataset_values:
        Confidential attribute column of the *entire* original dataset.
    mode:
        ``"distinct"`` — one bin per distinct value (Li et al. definition);
        ``"rank"`` — one bin per record (the propositions' formulation).
    """

    __slots__ = (
        "mode",
        "bin_values",
        "q",
        "m",
        "_denom",
        "_tie_lo",
        "_tie_width",
        "_qcum",
        "_qcum_prefix",
    )

    def __init__(self, dataset_values: Sequence[float], *, mode: str = "distinct") -> None:
        values = _as_1d_float(dataset_values, "dataset_values")
        if mode not in ("distinct", "rank"):
            raise ValueError(f"mode must be 'distinct' or 'rank', got {mode!r}")
        self.mode = mode
        n = len(values)
        if mode == "distinct":
            self.bin_values, counts = np.unique(values, return_counts=True)
            self.q = counts.astype(np.float64) / n
        else:
            sorted_values = np.sort(values)
            self.bin_values = sorted_values
            self.q = np.full(n, 1.0 / n)
            # Tie bookkeeping: a value occupying sorted slots [lo, lo+width)
            # spreads its mass uniformly over those slots.
            uniq, lo, width = np.unique(
                sorted_values, return_index=True, return_counts=True
            )
            self._tie_lo = dict(zip(uniq.tolist(), lo.tolist()))
            self._tie_width = dict(zip(uniq.tolist(), width.tolist()))
        self.m = len(self.bin_values)
        self._denom = float(max(self.m - 1, 1))
        self._qcum: np.ndarray | None = None
        self._qcum_prefix: np.ndarray | None = None

    # -- bin mapping -------------------------------------------------------------

    def bins_of(self, values: Sequence[float]) -> np.ndarray:
        """Map values (which must occur in the dataset) to bin indices.

        Only meaningful in ``distinct`` mode, where every value owns exactly
        one bin.  Raises if a value is not a dataset value — clusters are
        subsets of the dataset by construction, so a miss is a caller bug.
        """
        if self.mode != "distinct":
            raise ValueError("bins_of is only defined for mode='distinct'")
        arr = _as_1d_float(values, "values")
        idx = np.searchsorted(self.bin_values, arr)
        idx = np.clip(idx, 0, self.m - 1)
        if not np.array_equal(self.bin_values[idx], arr):
            missing = arr[self.bin_values[idx] != arr]
            raise ValueError(
                f"{missing.size} value(s) not present in the reference dataset "
                f"(first: {missing[0]!r})"
            )
        return idx

    def histogram(self, values: Sequence[float]) -> np.ndarray:
        """Cluster distribution (probability mass per bin) for given values."""
        arr = _as_1d_float(values, "values")
        c = len(arr)
        p = np.zeros(self.m)
        if self.mode == "distinct":
            np.add.at(p, self.bins_of(arr), 1.0 / c)
            return p
        for v in arr.tolist():
            try:
                lo = self._tie_lo[v]
                width = self._tie_width[v]
            except KeyError:
                raise ValueError(
                    f"value {v!r} not present in the reference dataset"
                ) from None
            p[lo : lo + width] += 1.0 / (c * width)
        return p

    # -- EMD evaluation -------------------------------------------------------------

    def emd_of_histogram(self, p: np.ndarray) -> float:
        """EMD of an explicit cluster histogram against the dataset."""
        p = np.asarray(p, dtype=np.float64)
        if p.shape != (self.m,):
            raise ValueError(f"histogram must have shape ({self.m},), got {p.shape}")
        return float(np.abs(np.cumsum(p - self.q)).sum() / self._denom)

    def emd(self, cluster_values: Sequence[float]) -> float:
        """EMD between a cluster's values and the dataset distribution."""
        return self.emd_of_histogram(self.histogram(cluster_values))

    def emd_of_bins(self, bins: np.ndarray, cluster_size: int | None = None) -> float:
        """EMD of a cluster given directly as bin indices (``distinct`` mode)."""
        if self.mode != "distinct":
            raise ValueError("emd_of_bins is only defined for mode='distinct'")
        bins = np.asarray(bins)
        c = cluster_size if cluster_size is not None else len(bins)
        if c <= 0:
            raise ValueError("cluster_size must be positive")
        p = np.bincount(bins, minlength=self.m).astype(np.float64) / c
        return self.emd_of_histogram(p)

    def emd_of_bins_sparse(
        self, bins: np.ndarray, cluster_size: int | None = None
    ) -> float:
        """EMD of a cluster of bin indices, in O(c log m) instead of O(m).

        Mathematically identical to :meth:`emd_of_bins` but evaluated
        segment-wise: between two consecutive (sorted) member bins the
        cluster's cumulative mass is constant, so the sum of
        ``|cum_p - cum_q|`` over the segment reduces to two prefix-sum
        lookups around the point where the dataset's cumulative distribution
        crosses that constant.  Results can differ from the dense evaluation
        in the last float ulp (different summation order), which is why the
        dense form remains the reference for the incremental trackers and
        merge decisions; use this for bulk reporting over many clusters
        (:meth:`repro.core.confidential.ConfidentialModel.partition_emds`).
        """
        if self.mode != "distinct":
            raise ValueError("emd_of_bins_sparse is only defined for mode='distinct'")
        bins = np.asarray(bins)
        c = cluster_size if cluster_size is not None else len(bins)
        if c <= 0:
            raise ValueError("cluster_size must be positive")
        if self._qcum is None:
            self._qcum = np.cumsum(self.q)
            self._qcum_prefix = np.concatenate([[0.0], np.cumsum(self._qcum)])
        qcum, qprefix = self._qcum, self._qcum_prefix

        uniq, counts = np.unique(bins, return_counts=True)
        # Segment j covers bin range [starts[j], stops[j]) where the
        # cluster's cumulative mass is the constant consts[j]; the leading
        # segment [0, first member bin) carries constant 0.
        consts = np.concatenate([[0.0], np.cumsum(counts) / c])
        starts = np.concatenate([[0], uniq])
        stops = np.concatenate([uniq, [self.m]])
        # First bin index in each segment where cum_q exceeds the constant.
        cross = np.clip(
            np.searchsorted(qcum, consts, side="right"), starts, stops
        )
        below = consts * (cross - starts) - (qprefix[cross] - qprefix[starts])
        above = (qprefix[stops] - qprefix[cross]) - consts * (stops - cross)
        return float((below + above).sum() / self._denom)


class ClusterEMDTracker:
    """Incremental ordered-EMD evaluator for one mutable cluster.

    Maintains the cumulative difference vector
    ``D_i = sum_{j<=i} (p_j - q_j)`` so that

    * the current EMD is ``sum|D| / (m-1)`` — O(m);
    * *evaluating* a swap (replace member ``b`` with candidate ``a``) is a
      vectorized O(m) per candidate instead of a full recount, and all |C|
      candidate removals are scored in a single numpy broadcast
      (:meth:`swap_emds`);
    * *applying* a swap is an O(m) range update (:meth:`apply_swap`).

    This is the data structure that brings the paper's Algorithm 2 from
    unusably slow to the O(n^2/k)–O(n^3/k) envelope the paper reports.
    """

    __slots__ = ("ref", "size", "_delta_cum", "_step")

    def __init__(self, ref: OrderedEMDReference, member_bins: np.ndarray) -> None:
        if ref.mode != "distinct":
            raise ValueError("ClusterEMDTracker requires a 'distinct'-mode reference")
        member_bins = np.asarray(member_bins)
        if member_bins.size == 0:
            raise ValueError("cluster must be non-empty")
        self.ref = ref
        self.size = int(member_bins.size)
        p = np.bincount(member_bins, minlength=ref.m).astype(np.float64) / self.size
        self._delta_cum = np.cumsum(p - ref.q)
        self._step = 1.0 / self.size

    @property
    def emd(self) -> float:
        """Current EMD of the tracked cluster to the dataset."""
        return float(np.abs(self._delta_cum).sum() / self.ref._denom)

    def emd_with_swap(self, remove_bin: int, add_bin: int) -> float:
        """EMD if the member at ``remove_bin`` were replaced by ``add_bin``."""
        if remove_bin == add_bin:
            return self.emd
        lo, hi, sign = self._swap_range(remove_bin, add_bin)
        d = self._delta_cum
        changed = np.abs(d[lo:hi] + sign * self._step).sum()
        unchanged = np.abs(d).sum() - np.abs(d[lo:hi]).sum()
        return float((unchanged + changed) / self.ref._denom)

    def swap_emds(self, remove_bins: np.ndarray, add_bin: int) -> np.ndarray:
        """EMD for every candidate swap (vectorized over removal candidates).

        Parameters
        ----------
        remove_bins:
            Bin index of each current member considered for removal.
        add_bin:
            Bin index of the incoming record.

        Returns
        -------
        np.ndarray
            ``out[j]`` is the cluster EMD after replacing member ``j`` by the
            incoming record.
        """
        remove_bins = np.asarray(remove_bins)
        idx = np.arange(self.ref.m)
        # Adding at bin a shifts the cumulative sum up by 1/c for i >= a;
        # removing at bin b shifts it down by 1/c for i >= b.
        add_step = (idx >= add_bin).astype(np.float64)
        remove_steps = (idx[None, :] >= remove_bins[:, None]).astype(np.float64)
        new_cum = self._delta_cum[None, :] + self._step * (add_step[None, :] - remove_steps)
        return np.abs(new_cum).sum(axis=1) / self.ref._denom

    def apply_swap(self, remove_bin: int, add_bin: int) -> None:
        """Commit a swap previously scored by :meth:`swap_emds`."""
        if remove_bin == add_bin:
            return
        lo, hi, sign = self._swap_range(remove_bin, add_bin)
        self._delta_cum[lo:hi] += sign * self._step

    def _swap_range(self, remove_bin: int, add_bin: int) -> tuple[int, int, float]:
        for b in (remove_bin, add_bin):
            if not 0 <= b < self.ref.m:
                raise IndexError(f"bin {b} out of range [0, {self.ref.m})")
        if add_bin < remove_bin:
            return add_bin, remove_bin, +1.0
        return remove_bin, add_bin, -1.0


class NominalEMDReference:
    """Precomputed frame for equal-ground-distance EMD (total variation).

    The nominal counterpart of :class:`OrderedEMDReference`: for attributes
    without an order, Li et al. define the ground distance between any two
    categories as 1, under which the EMD collapses to
    ``0.5 * sum_i |p_i - q_i|``.
    """

    __slots__ = ("n_categories", "q", "m")

    def __init__(self, dataset_codes: Sequence[int], n_categories: int) -> None:
        codes = np.asarray(dataset_codes, dtype=np.int64)
        if codes.ndim != 1 or codes.size == 0:
            raise ValueError("dataset_codes must be a non-empty 1-D array")
        if n_categories < 1:
            raise ValueError(f"n_categories must be >= 1, got {n_categories}")
        if codes.min() < 0 or codes.max() >= n_categories:
            raise ValueError(f"dataset codes outside [0, {n_categories})")
        self.n_categories = int(n_categories)
        self.m = self.n_categories
        self.q = np.bincount(codes, minlength=n_categories) / codes.size

    def bins_of(self, codes: Sequence[int]) -> np.ndarray:
        """Codes *are* bins for nominal attributes (validated pass-through)."""
        arr = np.asarray(codes, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_categories):
            raise ValueError(f"codes outside [0, {self.n_categories})")
        return arr

    def emd(self, cluster_codes: Sequence[int]) -> float:
        """EMD (total variation) between the cluster and the dataset."""
        return self.emd_of_bins(self.bins_of(cluster_codes))

    def emd_of_bins(self, bins: np.ndarray, cluster_size: int | None = None) -> float:
        """EMD of a cluster given as codes (mirrors the ordered API)."""
        bins = self.bins_of(bins)
        if bins.size == 0:
            raise ValueError("cluster must be non-empty")
        c = cluster_size if cluster_size is not None else len(bins)
        p = np.bincount(bins, minlength=self.n_categories) / c
        return float(0.5 * np.abs(p - self.q).sum())


class NominalClusterTracker:
    """Incremental total-variation EMD evaluator for one mutable cluster.

    The nominal counterpart of :class:`ClusterEMDTracker`: scoring a swap
    only touches the two affected category bins, so evaluating all |C|
    candidate removals is O(|C|).
    """

    __slots__ = ("ref", "size", "_diff", "_step")

    def __init__(self, ref: NominalEMDReference, member_bins: np.ndarray) -> None:
        member_bins = np.asarray(member_bins, dtype=np.int64)
        if member_bins.size == 0:
            raise ValueError("cluster must be non-empty")
        self.ref = ref
        self.size = int(member_bins.size)
        p = np.bincount(member_bins, minlength=ref.n_categories) / self.size
        self._diff = p - ref.q
        self._step = 1.0 / self.size

    @property
    def emd(self) -> float:
        return float(0.5 * np.abs(self._diff).sum())

    def emd_with_swap(self, remove_bin: int, add_bin: int) -> float:
        """EMD if one member at ``remove_bin`` were replaced by ``add_bin``."""
        if remove_bin == add_bin:
            return self.emd
        d = self._diff
        delta = (
            abs(d[add_bin] + self._step)
            - abs(d[add_bin])
            + abs(d[remove_bin] - self._step)
            - abs(d[remove_bin])
        )
        return float(self.emd + 0.5 * delta)

    def swap_emds(self, remove_bins: np.ndarray, add_bin: int) -> np.ndarray:
        """EMD for every candidate swap (vectorized over removals)."""
        remove_bins = np.asarray(remove_bins, dtype=np.int64)
        d = self._diff
        base = self.emd
        gain_add = abs(d[add_bin] + self._step) - abs(d[add_bin])
        gain_remove = np.abs(d[remove_bins] - self._step) - np.abs(d[remove_bins])
        out = base + 0.5 * (gain_add + gain_remove)
        # A swap that removes and adds the same category is a no-op.
        out[remove_bins == add_bin] = base
        return out

    def apply_swap(self, remove_bin: int, add_bin: int) -> None:
        """Commit a swap previously scored by :meth:`swap_emds`."""
        if remove_bin == add_bin:
            return
        self._diff[add_bin] += self._step
        self._diff[remove_bin] -= self._step


# -- module-level convenience functions -----------------------------------------------


def emd_ordered(
    cluster_values: Sequence[float],
    dataset_values: Sequence[float],
    *,
    mode: str = "distinct",
) -> float:
    """One-shot ordered EMD between a cluster and the full dataset.

    Prefer building an :class:`OrderedEMDReference` when evaluating many
    clusters against the same dataset.
    """
    return OrderedEMDReference(dataset_values, mode=mode).emd(cluster_values)


def emd_nominal(
    cluster_codes: Sequence[int],
    dataset_codes: Sequence[int],
    n_categories: int,
) -> float:
    """Equal-ground-distance EMD (total variation) for nominal attributes."""
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    cl = np.asarray(cluster_codes, dtype=np.int64)
    ds = np.asarray(dataset_codes, dtype=np.int64)
    if cl.size == 0 or ds.size == 0:
        raise ValueError("cluster and dataset must be non-empty")
    for arr, label in ((cl, "cluster"), (ds, "dataset")):
        if arr.min() < 0 or arr.max() >= n_categories:
            raise ValueError(f"{label} codes outside [0, {n_categories})")
    p = np.bincount(cl, minlength=n_categories) / cl.size
    q = np.bincount(ds, minlength=n_categories) / ds.size
    return float(0.5 * np.abs(p - q).sum())


def emd_hierarchical(
    cluster_labels: Sequence[str],
    dataset_labels: Sequence[str],
    taxonomy: Taxonomy,
) -> float:
    """Hierarchical EMD of Li et al. for nominal attributes with a taxonomy.

    Computed bottom-up: each internal node N "absorbs" the surplus mass of
    its children; the cost charged at N is
    ``node_height(N)/H * min(positive surplus, negative surplus)`` — the
    mass that must cross N on its way to a sibling subtree.
    """
    cluster = list(cluster_labels)
    dataset = list(dataset_labels)
    if not cluster or not dataset:
        raise ValueError("cluster and dataset must be non-empty")
    leaf_set = set(taxonomy.leaves)
    for label in cluster + dataset:
        if label not in leaf_set:
            raise ValueError(f"label {label!r} is not a leaf of the taxonomy")

    extra: dict[str, float] = {leaf: 0.0 for leaf in taxonomy.leaves}
    for label in cluster:
        extra[label] += 1.0 / len(cluster)
    for label in dataset:
        extra[label] -= 1.0 / len(dataset)

    total_cost = 0.0
    # Process internal nodes deepest-first so children are final when read.
    internal = [
        node
        for node in _preorder_nodes(taxonomy)
        if not taxonomy.is_leaf(node)
    ]
    for node in sorted(internal, key=taxonomy.depth, reverse=True):
        child_extras = [extra[c] for c in taxonomy.children(node)]
        pos = sum(e for e in child_extras if e > 0)
        neg = -sum(e for e in child_extras if e < 0)
        # Mass that stays within this subtree but crosses child boundaries
        # pays for climbing to this node and back down (Li et al. charge the
        # node height once per unit of matched surplus).
        total_cost += (taxonomy.node_height(node) / taxonomy.height) * min(pos, neg)
        extra[node] = sum(child_extras)
    return float(total_cost)


def _preorder_nodes(taxonomy: Taxonomy) -> list[str]:
    out = [taxonomy.root]
    stack = [taxonomy.root]
    while stack:
        node = stack.pop()
        for child in taxonomy.children(node):
            out.append(child)
            stack.append(child)
    return out
