"""Build the anonymized release from a partition.

Given a partition of the records, the release is obtained by replacing the
quasi-identifier values of every record with its cluster's representative
(mean / median / mode depending on attribute kind).  Confidential attributes
are released *unperturbed*: within an equivalence class their empirical
distribution is exactly what t-closeness constrains, and perturbing them
would destroy the guarantee's meaning.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.dataset import Microdata
from .centroids import centroid_value
from .partition import Partition


def aggregate_partition(
    data: Microdata,
    partition: Partition,
    names: Sequence[str] | None = None,
) -> Microdata:
    """Replace columns by within-cluster representatives.

    Parameters
    ----------
    data:
        The original microdata.
    partition:
        Cluster assignment over the records of ``data``.
    names:
        Columns to aggregate; defaults to the quasi-identifiers (the
        k-anonymity semantics).  Confidential columns are left untouched
        unless explicitly named.

    Returns
    -------
    Microdata
        A new dataset where, within every cluster, each aggregated column is
        constant (the cluster representative).
    """
    if partition.n_records != data.n_records:
        raise ValueError(
            f"partition covers {partition.n_records} records, "
            f"dataset has {data.n_records}"
        )
    if names is None:
        names = data.quasi_identifiers
    if not names:
        raise ValueError("no columns to aggregate (dataset has no quasi-identifiers)")

    replacements: dict[str, np.ndarray] = {}
    for name in names:
        spec = data.spec(name)
        column = data.values(name)
        out = np.empty(data.n_records, dtype=np.float64)
        for members in partition.clusters():
            out[members] = centroid_value(column[members], spec)
        replacements[name] = out
    return data.with_columns(replacements)


def cluster_centroids(
    data: Microdata,
    partition: Partition,
    names: Sequence[str] | None = None,
) -> np.ndarray:
    """Matrix of cluster representatives (n_clusters x len(names)).

    Row ``g`` holds cluster ``g``'s representative for each requested column
    (categorical columns as codes).  Useful for reporting and for distance
    computations between clusters (Algorithm 1's merge step).
    """
    if partition.n_records != data.n_records:
        raise ValueError(
            f"partition covers {partition.n_records} records, "
            f"dataset has {data.n_records}"
        )
    if names is None:
        names = data.quasi_identifiers
    names = tuple(names)
    if not names:
        raise ValueError("no columns requested")
    out = np.empty((partition.n_clusters, len(names)), dtype=np.float64)
    for j, name in enumerate(names):
        spec = data.spec(name)
        column = data.values(name)
        for g, members in enumerate(partition.clusters()):
            out[g, j] = centroid_value(column[members], spec)
    return out
