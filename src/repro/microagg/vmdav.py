"""V-MDAV — variable-size MDAV microaggregation.

V-MDAV (Solanas & Martínez-Ballesté, COMPSTAT 2006) relaxes MDAV's
fixed-size clusters: after seeding a cluster with the k nearest neighbours
of an extreme record, it keeps absorbing nearby records while doing so looks
locally cheaper than leaving them for other clusters.  A record ``u`` is
added (up to the 2k-1 k-anonymity ceiling) when its distance to the cluster
is below ``gamma`` times the average intra-cluster distance.  With
``gamma = 0`` V-MDAV degenerates to MDAV-like fixed clusters; larger gamma
yields more size adaptivity on clustered data.

The paper's evaluation uses plain MDAV; V-MDAV is provided as the natural
ablation for the choice of base partitioner (see
``benchmarks/bench_ablation_partitioner.py``).

The scan for the best extension candidate — the O(n) step of every
extension — runs on :class:`~repro.microagg.engine.ClusteringEngine`;
current members are killed as soon as they are chosen, so "the records
outside the cluster" is simply the engine's live set.  The small exact
cluster statistics (member centroid, mean intra-cluster distance) are
computed directly on the k-or-so member rows, bit-for-bit as before.
"""

from __future__ import annotations

import numpy as np

from ..backend import ComputeBackend
from ..distance.records import sq_distances_to
from ..registry import register_partitioner
from .engine import ClusteringEngine
from .partition import Partition


@register_partitioner("vmdav")
def vmdav(
    X: np.ndarray,
    k: int,
    *,
    gamma: float = 0.2,
    backend: ComputeBackend | str | None = None,
) -> Partition:
    """Partition rows of ``X`` into variable-size clusters (k .. 2k-1).

    Parameters
    ----------
    X:
        Record matrix (n x d), normally a standardized QI matrix.
    k:
        Minimum cluster size.
    gamma:
        Extension aggressiveness (>= 0).  A candidate record joins the
        current cluster if its squared distance to the cluster centroid is
        below ``gamma`` times the mean intra-cluster squared distance.
    backend:
        Compute backend for the distance primitives (name, instance or
        ``None`` for the ``REPRO_BACKEND`` default); partitions are
        backend-independent bit-for-bit.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if gamma < 0:
        raise ValueError(f"gamma must be >= 0, got {gamma}")

    engine = ClusteringEngine(X, backend=backend)
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0

    while engine.n_alive >= 2 * k:
        seed_id = engine.farthest_from_centroid()
        chosen = engine.k_nearest(k, point=engine.row(seed_id)).tolist()
        engine.kill(np.asarray(chosen, dtype=np.int64))
        # Extension phase: absorb close-by records while it looks cheap.
        # Never extend past the point where fewer than k records would be
        # left unassigned — the final remainder cluster must stay k-anonymous.
        while len(chosen) < 2 * k - 1 and engine.n_alive - 1 >= k:
            members = X[np.asarray(chosen, dtype=np.int64)]
            cluster_centroid = members.mean(axis=0)
            intra = sq_distances_to(members, cluster_centroid).mean()
            best_id, best_d2 = engine.nearest_with_value(cluster_centroid)
            if intra > 0 and best_d2 < gamma * intra:
                chosen.append(best_id)
                engine.kill(np.asarray([best_id], dtype=np.int64))
            else:
                break
        labels[np.asarray(chosen, dtype=np.int64)] = next_label
        next_label += 1

    if engine.n_alive:
        labels[engine.alive_ids()] = next_label
    return Partition(labels)
