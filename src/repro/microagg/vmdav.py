"""V-MDAV — variable-size MDAV microaggregation.

V-MDAV (Solanas & Martínez-Ballesté, COMPSTAT 2006) relaxes MDAV's
fixed-size clusters: after seeding a cluster with the k nearest neighbours
of an extreme record, it keeps absorbing nearby records while doing so looks
locally cheaper than leaving them for other clusters.  A record ``u`` is
added (up to the 2k-1 k-anonymity ceiling) when its distance to the cluster
is below ``gamma`` times the average intra-cluster distance.  With
``gamma = 0`` V-MDAV degenerates to MDAV-like fixed clusters; larger gamma
yields more size adaptivity on clustered data.

The paper's evaluation uses plain MDAV; V-MDAV is provided as the natural
ablation for the choice of base partitioner (see
``benchmarks/bench_ablation_partitioner.py``).
"""

from __future__ import annotations

import numpy as np

from ..distance.records import k_nearest_indices, sq_distances_to
from .partition import Partition


def vmdav(X: np.ndarray, k: int, *, gamma: float = 0.2) -> Partition:
    """Partition rows of ``X`` into variable-size clusters (k .. 2k-1).

    Parameters
    ----------
    X:
        Record matrix (n x d), normally a standardized QI matrix.
    k:
        Minimum cluster size.
    gamma:
        Extension aggressiveness (>= 0).  A candidate record joins the
        current cluster if its squared distance to the cluster centroid is
        below ``gamma`` times the mean intra-cluster squared distance.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if gamma < 0:
        raise ValueError(f"gamma must be >= 0, got {gamma}")

    labels = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    next_label = 0

    while len(remaining) >= 2 * k:
        c = X[remaining].mean(axis=0)
        seed_local = int(np.argmax(sq_distances_to(X[remaining], c)))
        seed_point = X[remaining[seed_local]]
        chosen_local = list(
            k_nearest_indices(X[remaining], seed_point, k)
        )
        # Extension phase: absorb close-by records while it looks cheap.
        # Never extend past the point where fewer than k records would be
        # left unassigned — the final remainder cluster must stay k-anonymous.
        while (
            len(chosen_local) < 2 * k - 1
            and len(remaining) - len(chosen_local) - 1 >= k
        ):
            members = X[remaining[chosen_local]]
            cluster_centroid = members.mean(axis=0)
            intra = sq_distances_to(members, cluster_centroid).mean()
            outside = np.ones(len(remaining), dtype=bool)
            outside[chosen_local] = False
            outside_local = np.flatnonzero(outside)
            d2 = sq_distances_to(X[remaining[outside_local]], cluster_centroid)
            best = int(np.argmin(d2))
            if intra > 0 and d2[best] < gamma * intra:
                chosen_local.append(int(outside_local[best]))
            else:
                break
        labels[remaining[chosen_local]] = next_label
        next_label += 1
        keep = np.ones(len(remaining), dtype=bool)
        keep[chosen_local] = False
        remaining = remaining[keep]

    if len(remaining):
        labels[remaining] = next_label
    return Partition(labels)
