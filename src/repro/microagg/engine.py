"""Masked, allocation-light clustering engine for MDAV-style partitioners.

Every partitioner in this library (MDAV, V-MDAV, and the clustering loops of
Algorithms 2 and 3) repeats the same three primitives over a shrinking set
of unassigned records: distance-to-a-point, extreme-record selection, and
k-nearest selection.  The direct implementations pay for that shrinkage with
a fresh fancy-indexed copy of the record matrix (``X[remaining]``) per
primitive per round — O(n^2 d / k) bytes of pure copying — plus a
from-scratch centroid re-average each round.

:class:`ClusteringEngine` owns the record matrix once and provides the same
primitives without per-round copies:

* **masked distance evaluation** — squared distances from a query point to
  every record in the active window are written into one preallocated
  buffer through a single preallocated column scratch (no n x d temporary,
  no per-round allocation); the arithmetic is the library's canonical
  kernel (:func:`repro.distance.records.sq_distances_to`'s column-
  sequential accumulation), built from elementwise ufuncs only, so every
  record gets the bitwise-same distance the direct implementations compute
  — exact ties between distinct records (ubiquitous in categorical/integer
  data) stay exact ties.  Assigned records are masked out of selections
  with sentinel values rather than removed;
* **incremental centroid** — the coordinate sum of unassigned records is
  maintained by subtracting each assigned cluster, giving an O(d)
  :meth:`~ClusteringEngine.centroid_fast`; the default
  :meth:`~ClusteringEngine.centroid` instead reproduces the reference's
  gather-and-mean bitwise, because a running sum can drift a few ulp and
  an ulp is enough to break an exact distance tie differently;
* **geometric compaction** — when the fraction of live records in the
  window falls below ``compact_ratio`` the window is physically compacted
  (ascending record order preserved), so per-round work tracks the number
  of unassigned records like the copying implementations did, without their
  per-round copies;
* **k-nearest selection** — :func:`repro.distance.records.k_smallest_indices`
  applied to the compacted live distances, i.e. *the identical selection
  and tie-breaking code path* as the direct implementations.

Equivalence contract
--------------------
Engine-backed partitioners are held (by
``tests/microagg/test_engine_equivalence.py``) to produce *identical*
partitions to the reference implementations, including tie-breaking:
distances use the canonical ``sq_distances_to`` arithmetic row-for-row,
the centroid is the reference's own gather-and-mean, all selections see
live records in ascending record order (exactly the reference code's
``remaining`` arrays), and k-nearest selection runs the shared
``k_smallest_indices`` on the compacted live distances — the very array
the reference code built — so even ``argpartition``'s behaviour on
boundary ties is reproduced.  The golden fixtures (continuous, mixed,
integer-grid, categorical-only, univariate and duplicate-heavy datasets)
pin this down empirically; :meth:`ClusteringEngine.centroid_fast` is the
one opt-out, trading that guarantee for an O(d) centroid.

One caveat for archaeologists: "reference" means the seed *algorithms*
running on today's canonical ``sq_distances_to`` (the fixtures were
generated exactly so — seed tree plus the canonical kernel).  The seed
originally summed squares via ``einsum``, whose reduction order is a
numpy-build detail; canonicalizing the kernel changed distance rounding
in the last ulp, which on near-tie data can place a record differently
than a pre-canonicalization run on some particular numpy build would
have.  Exact ties and tie-breaking rules — the reproducible part — are
identical, and on integer-valued data (where every kernel is exact) so
are whole partitions.

Execution is delegated to a pluggable compute backend
(:mod:`repro.backend`): distance evaluations, masked argmin/argmax and
the k-nearest bound go through :class:`~repro.backend.ComputeBackend`,
whose registered implementations (serial numpy, threaded row-block
shards) are bit-for-bit interchangeable — the equivalence contract above
therefore holds under every backend, which the golden suites assert by
running under each.  The one selection that deliberately stays on the
shared serial primitive is ``k_smallest_indices`` (:meth:`k_nearest`):
its boundary-tie behaviour is whatever ``argpartition`` does on the
exact compacted array, a property of that call, not of a total order —
so it must be *the same call* under every backend (it is O(window) and
never the hot part).
"""

from __future__ import annotations

import numpy as np

from ..backend import ComputeBackend, resolve_backend
from ..distance.records import k_smallest_indices, sq_distances_to

#: Below this many dead rows, compaction is skipped (not worth the copy).
_MIN_COMPACT_GAP = 32


class ClusteringEngine:
    """In-place partitioning primitives over one record matrix.

    Parameters
    ----------
    X:
        Record matrix (n x d), float-convertible.  The engine keeps a
        private working copy; the caller's array is never modified.
    compact_ratio:
        Compact the active window whenever the live fraction drops below
        this value (0 < ratio <= 1).  ``None`` disables compaction, which
        keeps window positions equal to record ids for the lifetime of the
        engine; callers that cache window positions across calls
        (Algorithm 3's bucket bookkeeping) instead watch
        :attr:`n_compactions` and refresh on change.
    chunk_size:
        Optional row-block size for the distance kernel, for cache-blocking
        very large windows.  ``None`` (default) sweeps each column over the
        whole window.  The kernel is elementwise, so results are bitwise
        identical for every block size.
    backend:
        Compute backend executing the hot primitives (distance buffer
        fills, masked argmin/argmax, the k-nearest bound): a
        :class:`~repro.backend.ComputeBackend` instance, a registered name
        (``"serial"``, ``"threaded"``), or ``None`` for the
        ``REPRO_BACKEND`` environment default.  Every registered backend
        honours the bit-for-bit contracts of
        :mod:`repro.backend.base`, so the produced partitions — including
        tie-breaking — are independent of the choice.
    """

    def __init__(
        self,
        X: np.ndarray,
        *,
        compact_ratio: float | None = 0.7,
        chunk_size: int | None = None,
        backend: ComputeBackend | str | None = None,
    ) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("X must have at least one record")
        if compact_ratio is not None and not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1] or None, got {compact_ratio}"
            )
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        n = X.shape[0]
        self._X = X  # original rows, addressed by record id
        self._backend = resolve_backend(backend)
        # Hot buffers come from the backend's allocator so their bytes can
        # live where its workers reach them (the process backend hands out
        # shared-memory views); placement never changes a computed value.
        # The working copy is column-major and always a *copy* — even for
        # d == 1, where X.T is already contiguous — so compaction can
        # never write through into the caller's data.
        self._XwT = self._backend.empty(X.T.shape)
        np.copyto(self._XwT, X.T)
        self._ids = np.arange(n, dtype=np.int64)  # window position -> id
        self._pos = np.arange(n, dtype=np.int64)  # record id -> position
        self._alive = np.ones(n, dtype=bool)  # by window position
        self._m = n  # active window length
        self._n_alive = n
        self._sum = X.sum(axis=0)  # coordinate sum of live records
        self._d2 = self._backend.empty(n)  # distance buffer, window layout
        self._tmp = self._backend.empty(n)  # per-column difference scratch
        self._ratio = compact_ratio
        self._chunk = chunk_size
        self._dead_pos = np.empty(n, dtype=np.int64)  # kills since compaction
        self._n_dead = 0
        self._X_owned = False  # _X may alias caller data until replace_row
        self._n_evals = 0
        self._n_compactions = 0

    # -- introspection ---------------------------------------------------------

    @property
    def n_records(self) -> int:
        """Total number of records the engine was built over."""
        return self._X.shape[0]

    @property
    def n_alive(self) -> int:
        """Number of records not yet assigned (killed)."""
        return self._n_alive

    @property
    def window(self) -> int:
        """Current active-window length (``n_alive <= window <= n_records``)."""
        return self._m

    @property
    def backend(self) -> ComputeBackend:
        """The compute backend executing this engine's primitives."""
        return self._backend

    @property
    def n_compactions(self) -> int:
        """Number of window compactions so far.

        Callers that cache window positions (:meth:`positions_of`) must
        refresh their caches whenever this counter changes.
        """
        return self._n_compactions

    @property
    def stats(self) -> dict[str, int]:
        """Counters for tests and benchmarks (evals, compactions)."""
        return {
            "n_evals": self._n_evals,
            "n_compactions": self._n_compactions,
        }

    def positions_of(self, record_ids: np.ndarray) -> np.ndarray:
        """Window positions of live records, for indexing the distance buffer.

        Positions stay valid until the next compaction (watch
        :attr:`n_compactions`).  Requesting positions of dead records is
        undefined: their entries go stale once a compaction drops them.
        """
        return self._pos[record_ids]

    def ids_at(self, positions: np.ndarray) -> np.ndarray:
        """Record ids at the given window positions (inverse of
        :meth:`positions_of`; same staleness rules apply)."""
        return self._ids[positions]

    def row(self, record_id: int) -> np.ndarray:
        """The (original) coordinate row of one record, dead or alive."""
        return self._X[record_id]

    def rows(self, record_ids: np.ndarray) -> np.ndarray:
        """Coordinate rows of the given records (one gathered copy)."""
        return self._X[record_ids]

    def alive_ids(self) -> np.ndarray:
        """Ids of all unassigned records, ascending."""
        return self._ids[: self._m][self._alive[: self._m]]

    def centroid(self) -> np.ndarray:
        """Centroid of the unassigned records, reference arithmetic.

        Gathers the live rows and averages them exactly as the direct
        implementations did (``X[remaining].mean(axis=0)``), so the result
        is bitwise identical and exact distance ties to the centroid break
        the same way.  Costs O(n_alive * d); see :meth:`centroid_fast` for
        the O(d) running-sum alternative.
        """
        if self._n_alive == 0:
            raise ValueError("no records alive")
        return self._X[self.alive_ids()].mean(axis=0)

    def centroid_fast(self) -> np.ndarray:
        """Centroid from the incrementally maintained coordinate sum.

        O(d) instead of O(n_alive * d): the sum of live rows is updated by
        subtraction on every :meth:`kill`.  It can drift a few ulp from
        :meth:`centroid` after many rounds, which is harmless for clustering
        quality but *can* break an exact distance tie differently — use
        :meth:`centroid` where bitwise reproduction of the reference
        partitions matters.
        """
        if self._n_alive == 0:
            raise ValueError("no records alive")
        return self._sum / self._n_alive

    # -- distance evaluation ---------------------------------------------------

    def eval_distances(self, point: np.ndarray) -> np.ndarray:
        """Fill the distance buffer with squared distances from ``point``.

        Evaluates ``sum((row - point)^2)`` for every window row (live and
        dead) into the preallocated buffer and returns it (a view —
        invalidated by the next evaluation or compaction).  The evaluation
        is delegated to the engine's compute backend, whose contract is
        the canonical column-sequential kernel of
        :mod:`repro.backend.kernels` — the same arithmetic as
        :func:`~repro.distance.records.sq_distances_to`, elementwise
        ufuncs only, so the result is bitwise identical to that function
        (independent of the block layout *and* of backend sharding), and
        exact distance ties are preserved everywhere the reference
        implementations had them.
        """
        m = self._m
        p = np.ascontiguousarray(point, dtype=np.float64)
        if len(p) == 0:
            self._d2[:m] = 0.0
            self._n_evals += 1
            return self._d2[:m]
        self._backend.eval_sq_distances(
            self._XwT, p, self._d2, self._tmp, m, self._chunk
        )
        self._n_evals += 1
        return self._d2[:m]

    def _masked(self, fill: float) -> np.ndarray:
        """The distance buffer with dead window rows set to ``fill``.

        Dead rows are overwritten through the list of kills accumulated
        since the last compaction — O(dead) scattered writes instead of an
        O(window) boolean pass (the window holds few dead rows by
        construction: compaction fires once they exceed ``1 - ratio``).
        """
        d2 = self._d2[: self._m]
        d2[self._dead_pos[: self._n_dead]] = fill
        return d2

    def masked_distances(self, fill: float = np.inf) -> np.ndarray:
        """Last evaluated distances with dead rows overwritten by ``fill``.

        Returns the window view of the internal buffer, indexed by window
        position (:meth:`positions_of`); gathers through live positions
        therefore see ``fill`` at every record killed since the evaluation.
        """
        return self._masked(fill)

    # -- selections ------------------------------------------------------------
    #
    # Every selection accepts point=None, meaning "reuse the last evaluated
    # distances".  Buffer values survive kill() (masking only overwrites dead
    # rows) and compaction (the buffer is compacted alongside the window), so
    # e.g. MDAV evaluates distances to an extreme record once and uses them
    # both to carve its cluster and to select the next seed afterwards.

    def farthest(self, point: np.ndarray | None = None) -> int:
        """Id of the live record farthest from ``point`` (ties: lowest id)."""
        if point is not None:
            self.eval_distances(point)
        d2 = self._masked(-np.inf)
        return int(self._ids[self._backend.argmax(d2)])

    #: Relative margin below the maximum distance within which the fast
    #: centroid's ulp drift could conceivably reorder records.  The actual
    #: drift perturbs squared distances by ~1e-13 relative at most; 1e-6
    #: leaves seven orders of magnitude of safety while still making the
    #: exact re-adjudication a rare event on continuous data.
    _FARTHEST_MARGIN = 1e-6

    def farthest_from_centroid(self) -> int:
        """Id of the live record farthest from the live centroid.

        Scans with the O(d) running-sum centroid (:meth:`centroid_fast`)
        and, whenever more than one record lands within a conservative
        margin of the maximum — the only situation where the running sum's
        ulp drift could pick a different record — re-judges exactly those
        candidates against the exact reference centroid
        (:meth:`centroid`).  The selected record is therefore always the
        one the reference implementations' ``argmax`` over
        ``sq_distances_to(X[remaining], X[remaining].mean(axis=0))``
        selects, at running-sum cost on tie-free rounds.
        """
        self.eval_distances(self.centroid_fast())
        d2 = self._masked(-np.inf)
        top = self._backend.argmax(d2)
        band = self._FARTHEST_MARGIN * (1.0 + abs(d2[top]))
        candidates = np.flatnonzero(d2 >= d2[top] - band)
        if candidates.size == 1:
            return int(self._ids[top])
        cand_ids = self._ids[candidates]  # ascending: flatnonzero order
        exact = sq_distances_to(self._X[cand_ids], self.centroid())
        return int(cand_ids[int(np.argmax(exact))])

    def nearest_with_value(
        self, point: np.ndarray | None = None
    ) -> tuple[int, float]:
        """Nearest live record and its squared distance (ties: lowest id).

        The value is the true squared distance (always >= 0), comparable
        against absolute thresholds (V-MDAV's extension test).
        """
        if point is not None:
            self.eval_distances(point)
        d2 = self._masked(np.inf)
        pos = self._backend.argmin(d2)
        return int(self._ids[pos]), float(d2[pos])

    def k_nearest(self, k: int, point: np.ndarray | None = None) -> np.ndarray:
        """Ids of the ``k`` live records nearest to ``point``, nearest first.

        Runs :func:`~repro.distance.records.k_smallest_indices` on the
        compacted live distances — the records in ascending id order,
        exactly the array the reference implementations passed to
        ``k_nearest_indices`` — so selection and tie-breaking (including
        ``argpartition``'s behaviour on boundary ties) are identical.
        """
        if point is not None:
            self.eval_distances(point)
        m = self._m
        live = np.flatnonzero(self._alive[:m])
        local = k_smallest_indices(self._d2[live], k)
        return self._ids[live[local]]

    def sorted_alive(self, point: np.ndarray | None = None) -> np.ndarray:
        """All live record ids, sorted ascending by (distance, id)."""
        if point is not None:
            self.eval_distances(point)
        d2 = self._masked(np.inf)
        order = np.argsort(d2, kind="stable")[: self._n_alive]
        return self._ids[order]

    def k_nearest_sorted(self, k: int, point: np.ndarray | None = None) -> np.ndarray:
        """``sorted_alive(point)[:k]`` — bitwise — at argpartition cost.

        Returns the k nearest live records ordered ascending by
        (distance, id), exactly the prefix a full stable argsort would
        produce, but in O(window + k log k) instead of O(window log window):
        an argpartition bounds the k-th smallest distance, every record at
        or below that bound is gathered (so boundary ties are all present),
        and only those are stably sorted.  Stability plus the window's
        ascending-id layout makes the tie order identical to
        :meth:`sorted_alive`'s.  This is what lets Algorithm 2 seed a
        cluster without sorting the whole candidate pool it usually never
        consumes (the pool is materialized lazily, only when the seed
        cluster's EMD overshoots t).
        """
        if point is not None:
            self.eval_distances(point)
        if k >= self._n_alive:
            return self.sorted_alive()
        d2 = self._masked(np.inf)
        bound = self._backend.kth_smallest_value(d2, k)
        cand = np.flatnonzero(d2 <= bound)
        order = np.argsort(d2[cand], kind="stable")[:k]
        return self._ids[cand[order]]

    # -- checkpoint support ----------------------------------------------------
    #
    # The engine's observable behaviour is path-dependent in ways a naive
    # "rebuild from the kill list" cannot reproduce bitwise: the running
    # coordinate sum accumulates rounding in kill/replace order, the
    # compaction history fixes the window layout, and callers reuse the
    # last evaluated distance buffer across kills (MDAV's second seed,
    # Algorithm 2's x1).  snapshot()/restore() therefore capture the
    # exact internal arrays, so a restored engine continues bit-for-bit.

    def snapshot(self) -> dict:
        """Capture full engine state for an exact-resume checkpoint."""
        m = self._m
        return {
            "X": self._X.copy(),
            "ids": self._ids[:m].copy(),
            "alive": self._alive[:m].copy(),
            "n_alive": int(self._n_alive),
            "sum": self._sum.copy(),
            "d2": self._d2[:m].copy(),
            "dead_pos": self._dead_pos[: self._n_dead].copy(),
            "n_evals": int(self._n_evals),
            "n_compactions": int(self._n_compactions),
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`, continuing bit-for-bit.

        The engine must have been constructed over a same-shaped matrix
        with the same ``compact_ratio``/``chunk_size`` configuration as
        the snapshotted one (the backend may differ — backends are
        bit-for-bit interchangeable).
        """
        X = np.ascontiguousarray(np.asarray(state["X"], dtype=np.float64))
        if X.shape != self._X.shape:
            raise ValueError(
                f"snapshot is for a {X.shape} matrix, engine holds "
                f"{self._X.shape}"
            )
        ids = np.asarray(state["ids"], dtype=np.int64)
        m = ids.size
        self._X = X
        self._X_owned = True  # X is our private copy from the snapshot
        self._ids[:m] = ids
        self._pos[:] = -1
        self._pos[ids] = np.arange(m, dtype=np.int64)
        self._alive[:m] = np.asarray(state["alive"], dtype=bool)
        self._m = m
        self._n_alive = int(state["n_alive"])
        self._sum = np.asarray(state["sum"], dtype=np.float64).copy()
        self._XwT[:, :m] = X[ids].T
        self._d2[:m] = np.asarray(state["d2"], dtype=np.float64)
        dead = np.asarray(state["dead_pos"], dtype=np.int64)
        self._dead_pos[: dead.size] = dead
        self._n_dead = dead.size
        self._n_evals = int(state["n_evals"])
        self._n_compactions = int(state["n_compactions"])

    # -- state updates ---------------------------------------------------------

    def replace_row(self, record_id: int, row: np.ndarray) -> None:
        """Overwrite one *live* record's coordinates in-place.

        The buffer-sharing primitive behind the merge phase
        (:func:`repro.core.merge.merge_to_t_closeness`): there the engine's
        records are cluster centroids, and a merge moves the surviving
        cluster's centroid.  Updates the working columns, the original-row
        view (:meth:`row`) and the running coordinate sum; previously
        evaluated distances for this row go stale (re-evaluate before the
        next selection).  The caller's input matrix is never touched — the
        row storage is copied on the first replacement.
        """
        row = np.ascontiguousarray(row, dtype=np.float64)
        if row.shape != (self._X.shape[1],):
            raise ValueError(
                f"row must have shape ({self._X.shape[1]},), got {row.shape}"
            )
        pos = int(self._pos[record_id])
        if pos < 0 or not self._alive[pos]:
            raise ValueError("cannot replace a record that is already assigned")
        if not self._X_owned:
            # __init__ may have kept a no-copy view of the caller's array;
            # mutation must never write through into caller data.
            self._X = self._X.copy()
            self._X_owned = True
        self._sum += row - self._X[record_id]
        self._X[record_id] = row
        self._XwT[:, pos] = row

    def kill(self, record_ids: np.ndarray) -> None:
        """Mark records as assigned: mask them out and update the sum.

        Triggers window compaction when the live fraction falls below
        ``compact_ratio``.  Killing an already-dead record is an error.
        """
        ids = np.asarray(record_ids, dtype=np.int64)
        if ids.size == 0:
            return
        pos = self._pos[ids]
        # Records dropped by a compaction carry the -1 sentinel; without it
        # a stale position could alias a live record and a double-kill
        # would silently kill the wrong row instead of raising.  The
        # uniqueness check closes the same hole for duplicates within one
        # batch, which would double-count in n_alive and the running sum.
        if (pos < 0).any() or not self._alive[pos].all():
            raise ValueError("cannot kill a record that is already assigned")
        if np.unique(pos).size != pos.size:
            raise ValueError("record ids to kill must be unique")
        self._alive[pos] = False
        self._dead_pos[self._n_dead : self._n_dead + ids.size] = pos
        self._n_dead += ids.size
        self._n_alive -= ids.size
        self._sum -= self._X[ids].sum(axis=0)
        if (
            self._ratio is not None
            and self._n_alive < self._ratio * self._m
            and self._m - self._n_alive >= _MIN_COMPACT_GAP
        ):
            self._compact()

    def kill_one(self, record_id: int) -> None:
        """Scalar fast path of :meth:`kill` for a single record.

        Same guards, same compaction trigger, bitwise the same running-sum
        update (a one-row ``sum(axis=0)`` is the row itself) — minus the
        array allocation and uniqueness bookkeeping a batch kill pays.
        The merge loop retires exactly one cluster per commit, so this is
        its per-merge call.
        """
        pos = int(self._pos[record_id])
        if pos < 0 or not self._alive[pos]:
            raise ValueError("cannot kill a record that is already assigned")
        self._alive[pos] = False
        self._dead_pos[self._n_dead] = pos
        self._n_dead += 1
        self._n_alive -= 1
        self._sum -= self._X[record_id]
        if (
            self._ratio is not None
            and self._n_alive < self._ratio * self._m
            and self._m - self._n_alive >= _MIN_COMPACT_GAP
        ):
            self._compact()

    def _compact(self) -> None:
        """Shrink the window to the live records, preserving their order.

        The distance buffer is compacted too, so selections that reuse the
        last evaluation stay valid across a compaction triggered mid-round.
        """
        m = self._m
        live = np.flatnonzero(self._alive[:m])
        new_m = live.size
        # Invalidate the dropped records' position entries before reusing
        # their window slots, so kill()'s liveness guard stays sound.
        self._pos[self._ids[self._dead_pos[: self._n_dead]]] = -1
        self._XwT[:, :new_m] = self._XwT[:, :m][:, live]
        self._d2[:new_m] = self._d2[live]
        self._ids[:new_m] = self._ids[live]
        self._pos[self._ids[:new_m]] = np.arange(new_m, dtype=np.int64)
        self._alive[:new_m] = True
        self._n_dead = 0
        self._m = new_m
        self._n_compactions += 1
