"""Microaggregation substrate: partitioners and aggregation operators."""

from .aggregate import aggregate_partition, cluster_centroids
from .engine import ClusteringEngine
from .centroids import (
    centroid_value,
    marginality_centroid,
    nominal_centroid,
    numeric_centroid,
    ordinal_centroid,
)
from .mdav import mdav
from .partition import Partition, PartitionError
from .univariate import optimal_univariate, univariate_sse
from .vmdav import vmdav

__all__ = [
    "ClusteringEngine",
    "Partition",
    "PartitionError",
    "mdav",
    "vmdav",
    "optimal_univariate",
    "univariate_sse",
    "aggregate_partition",
    "cluster_centroids",
    "centroid_value",
    "numeric_centroid",
    "ordinal_centroid",
    "nominal_centroid",
    "marginality_centroid",
]
