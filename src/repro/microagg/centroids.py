"""Aggregation operators — the "average" each cluster publishes.

The aggregation step of microaggregation replaces every quasi-identifier
value in a cluster by a cluster representative.  The right representative
depends on the measurement scale (Domingo-Ferrer & Torra 2005):

* numeric: the arithmetic mean, which minimizes within-cluster SSE;
* ordinal: the (lower) median category, which minimizes the sum of absolute
  rank distances and always is an existing category;
* nominal: the mode, which minimizes the number of changed values
  (equivalently the sum of 0/1 distances);
* nominal with a taxonomy: the *semantic marginality* centroid
  (Domingo-Ferrer, Sánchez & Rufian-Torrell 2013, the paper's [7]) — the
  category minimizing the summed tree distance to the cluster's values,
  which respects meaning where the mode only counts frequency.
"""

from __future__ import annotations

import numpy as np

from ..data.attributes import AttributeKind, AttributeSpec
from ..distance.taxonomy import Taxonomy


def numeric_centroid(values: np.ndarray) -> float:
    """Arithmetic mean (SSE-minimizing numeric representative)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot aggregate an empty cluster")
    return float(values.mean())


def ordinal_centroid(codes: np.ndarray) -> int:
    """Lower median category code (L1-minimizing rankable representative)."""
    codes = np.asarray(codes)
    if codes.size == 0:
        raise ValueError("cannot aggregate an empty cluster")
    ordered = np.sort(codes)
    return int(ordered[(len(ordered) - 1) // 2])


def nominal_centroid(codes: np.ndarray, n_categories: int) -> int:
    """Most frequent category code; ties broken toward the smallest code."""
    codes = np.asarray(codes)
    if codes.size == 0:
        raise ValueError("cannot aggregate an empty cluster")
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    counts = np.bincount(codes, minlength=n_categories)
    return int(np.argmax(counts))


def marginality_centroid(labels: list[str], taxonomy: Taxonomy) -> str:
    """Semantic centroid: the leaf minimizing summed taxonomy distance.

    For a cluster of nominal values with a value taxonomy, the marginality
    approach picks the category whose total ground distance (see
    :meth:`Taxonomy.leaf_distance`) to the cluster's values is smallest —
    e.g. a cluster of assorted respiratory diagnoses aggregates to the
    *most central respiratory* leaf rather than merely the most frequent
    one.  Ties break toward the taxonomy's leaf order (deterministic).

    Candidates are restricted to the taxonomy's leaves, so the centroid is
    always a publishable category (never an internal generalization).
    """
    if not labels:
        raise ValueError("cannot aggregate an empty cluster")
    leaf_set = set(taxonomy.leaves)
    for label in labels:
        if label not in leaf_set:
            raise ValueError(f"label {label!r} is not a leaf of the taxonomy")
    best_leaf, best_cost = None, float("inf")
    for candidate in taxonomy.leaves:
        cost = sum(taxonomy.leaf_distance(candidate, label) for label in labels)
        if cost < best_cost:
            best_leaf, best_cost = candidate, cost
    if best_leaf is None:
        raise ValueError("taxonomy has no leaves to aggregate onto")
    return best_leaf


def centroid_value(values: np.ndarray, spec: AttributeSpec) -> float:
    """Cluster representative for one column, dispatched on the spec's kind.

    Returns a float in all cases (categorical representatives are returned
    as their integer code, which is how categorical columns are stored).
    """
    if spec.kind is AttributeKind.NUMERIC:
        return numeric_centroid(values)
    if spec.kind is AttributeKind.ORDINAL:
        return float(ordinal_centroid(values))
    return float(nominal_centroid(values, spec.n_categories))
