"""Optimal univariate microaggregation (Hansen–Mukherjee).

For a single attribute, the SSE-optimal partition into clusters of size
between k and 2k-1 can be computed exactly in polynomial time
(Hansen & Mukherjee, IEEE TKDE 2003): sort the values; optimal clusters are
intervals of the sorted order; a shortest-path dynamic program over interval
end points finds the minimum-SSE segmentation in O(n k) after the sort.

Multivariate microaggregation is NP-hard (Oganian & Domingo-Ferrer 2001) —
which is why the library's default partitioner is the MDAV heuristic — but
the univariate optimum is valuable as a lower-bound reference in tests and
ablations.
"""

from __future__ import annotations

import numpy as np

from .partition import Partition


def optimal_univariate(values: np.ndarray, k: int) -> Partition:
    """SSE-optimal partition of a single attribute into clusters of size >= k.

    Parameters
    ----------
    values:
        1-D array of attribute values.
    k:
        Minimum cluster size; every optimal cluster has size in [k, 2k-1].

    Returns
    -------
    Partition
        Optimal clusters, mapped back to the original record order.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    n = values.size
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    order = np.argsort(values, kind="stable")
    x = values[order]

    # Prefix sums give O(1) SSE of any sorted interval [i, j):
    # SSE = sum(x^2) - (sum x)^2 / len.
    pref = np.concatenate([[0.0], np.cumsum(x)])
    pref_sq = np.concatenate([[0.0], np.cumsum(x * x)])

    def interval_sse(i: int, j: int) -> float:
        s = pref[j] - pref[i]
        s2 = pref_sq[j] - pref_sq[i]
        return s2 - s * s / (j - i)

    # best[j] = minimal SSE of segmenting x[:j]; valid segment lengths are
    # k..2k-1 (a longer segment can always be split without increasing SSE).
    best = np.full(n + 1, np.inf)
    best[0] = 0.0
    back = np.full(n + 1, -1, dtype=np.int64)
    for j in range(k, n + 1):
        lo = max(0, j - (2 * k - 1))
        hi = j - k
        for i in range(lo, hi + 1):
            if not np.isfinite(best[i]):
                continue
            cost = best[i] + interval_sse(i, j)
            if cost < best[j]:
                best[j] = cost
                back[j] = i
    if not np.isfinite(best[n]):
        # Only possible when n < k was excluded above, so n in [k, 2k);
        # a single cluster is then the only (and optimal) choice.
        return Partition.single_cluster(n)  # pragma: no cover - defensive

    # Recover segmentation boundaries.
    labels_sorted = np.empty(n, dtype=np.int64)
    bounds = []
    j = n
    while j > 0:
        i = int(back[j])
        bounds.append((i, j))
        j = i
    for g, (i, j) in enumerate(reversed(bounds)):
        labels_sorted[i:j] = g

    labels = np.empty(n, dtype=np.int64)
    labels[order] = labels_sorted
    return Partition(labels)


def univariate_sse(values: np.ndarray, partition: Partition) -> float:
    """Within-cluster SSE of one attribute under a partition (test helper)."""
    values = np.asarray(values, dtype=np.float64)
    total = 0.0
    for members in partition.clusters():
        cluster = values[members]
        total += float(((cluster - cluster.mean()) ** 2).sum())
    return total
