"""MDAV — Maximum Distance to Average Vector microaggregation.

MDAV (Domingo-Ferrer & Torra, DMKD 2005; "MDAV-generic") is the standard
fixed-size microaggregation heuristic and the partitioner the paper builds
on.  Each round it:

1. computes the centroid of the unassigned records,
2. takes the record ``r`` farthest from the centroid and forms a cluster
   from ``r`` and its k-1 nearest unassigned neighbours,
3. takes the record ``s`` farthest from ``r`` and forms a second cluster
   the same way,

until fewer than 3k records remain; then either one final cluster (fewer
than 2k left) or a cluster around the farthest record plus a remainder
cluster (between 2k and 3k-1 left) closes the partition.  All clusters have
between k and 2k-1 records.  The cost is O(n^2 / k) distance evaluations.

The inner loop runs on :class:`~repro.microagg.engine.ClusteringEngine`:
one distance evaluation per extreme record (reused for both the carve and
the next seed selection), incremental centroids, and no per-round
``X[remaining]`` copies.  The produced partition is identical — including
tie-breaking — to the direct implementation this replaced (see
``tests/microagg/test_engine_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from ..backend import ComputeBackend
from ..registry import register_partitioner
from .engine import ClusteringEngine
from .partition import Partition


@register_partitioner("mdav")
def mdav(
    X: np.ndarray,
    k: int,
    *,
    backend: ComputeBackend | str | None = None,
) -> Partition:
    """Partition the rows of ``X`` into clusters of size >= k with MDAV.

    Parameters
    ----------
    X:
        Record matrix (n x d); callers normally pass an already standardized
        quasi-identifier matrix (see :meth:`Microdata.qi_matrix`).
    k:
        Minimum (and target) cluster size, ``1 <= k <= n``.
    backend:
        Compute backend for the distance primitives (name, instance or
        ``None`` for the ``REPRO_BACKEND`` default); partitions are
        backend-independent bit-for-bit.

    Returns
    -------
    Partition
        Every cluster has between ``k`` and ``2k - 1`` records.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    engine = ClusteringEngine(X, backend=backend)
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0

    def carve(seed_id: int) -> None:
        """Assign the cluster of the k nearest live records to ``seed_id``."""
        nonlocal next_label
        chosen = engine.k_nearest(k, point=engine.row(seed_id))
        labels[chosen] = next_label
        next_label += 1
        engine.kill(chosen)

    while engine.n_alive >= 3 * k:
        r = engine.farthest_from_centroid()
        carve(r)
        # The distances to r are already in the buffer; reuse them to pick
        # the next seed among the records that survived the carve.
        s = engine.farthest()
        carve(s)

    if engine.n_alive >= 2 * k:
        r = engine.farthest_from_centroid()
        carve(r)
    if engine.n_alive:
        labels[engine.alive_ids()] = next_label

    return Partition(labels)
