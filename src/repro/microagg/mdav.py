"""MDAV — Maximum Distance to Average Vector microaggregation.

MDAV (Domingo-Ferrer & Torra, DMKD 2005; "MDAV-generic") is the standard
fixed-size microaggregation heuristic and the partitioner the paper builds
on.  Each round it:

1. computes the centroid of the unassigned records,
2. takes the record ``r`` farthest from the centroid and forms a cluster
   from ``r`` and its k-1 nearest unassigned neighbours,
3. takes the record ``s`` farthest from ``r`` and forms a second cluster
   the same way,

until fewer than 3k records remain; then either one final cluster (fewer
than 2k left) or a cluster around the farthest record plus a remainder
cluster (between 2k and 3k-1 left) closes the partition.  All clusters have
between k and 2k-1 records.  The cost is O(n^2 / k) distance evaluations.
"""

from __future__ import annotations

import numpy as np

from ..distance.records import k_nearest_indices, sq_distances_to
from .partition import Partition


def mdav(X: np.ndarray, k: int) -> Partition:
    """Partition the rows of ``X`` into clusters of size >= k with MDAV.

    Parameters
    ----------
    X:
        Record matrix (n x d); callers normally pass an already standardized
        quasi-identifier matrix (see :meth:`Microdata.qi_matrix`).
    k:
        Minimum (and target) cluster size, ``1 <= k <= n``.

    Returns
    -------
    Partition
        Every cluster has between ``k`` and ``2k - 1`` records.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    labels = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    next_label = 0

    def carve(local_seed: int) -> None:
        """Assign the cluster of the k nearest to remaining[local_seed]."""
        nonlocal remaining, next_label
        chosen_local = k_nearest_indices(X[remaining], X[remaining[local_seed]], k)
        labels[remaining[chosen_local]] = next_label
        next_label += 1
        keep = np.ones(len(remaining), dtype=bool)
        keep[chosen_local] = False
        remaining = remaining[keep]

    while len(remaining) >= 3 * k:
        c = X[remaining].mean(axis=0)
        r_local = int(np.argmax(sq_distances_to(X[remaining], c)))
        r_point = X[remaining[r_local]]
        carve(r_local)
        s_local = int(np.argmax(sq_distances_to(X[remaining], r_point)))
        carve(s_local)

    if len(remaining) >= 2 * k:
        c = X[remaining].mean(axis=0)
        r_local = int(np.argmax(sq_distances_to(X[remaining], c)))
        carve(r_local)
    if len(remaining):
        labels[remaining] = next_label

    return Partition(labels)
