"""Cluster partitions of a record set.

A :class:`Partition` is the output of every partitioner in this library
(MDAV, V-MDAV, optimal univariate, and the three t-closeness algorithms):
an assignment of each of the n records to exactly one cluster.  It carries
the invariant checks that k-anonymity rests on (every record assigned,
clusters disjoint, minimum cluster size) and the merge operation Algorithm 1
is built from.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


class PartitionError(ValueError):
    """Raised when a partition violates a structural invariant."""


class Partition:
    """Assignment of n records to contiguous cluster ids ``0..n_clusters-1``.

    Parameters
    ----------
    labels:
        Integer array of shape (n,); ``labels[i]`` is the cluster of record
        ``i``.  Labels are relabelled to be contiguous and ordered by first
        appearance, so two partitions that group records identically compare
        equal regardless of how the caller numbered the clusters.
    """

    __slots__ = ("_labels", "_n_clusters", "_members")

    def __init__(self, labels: Sequence[int] | np.ndarray) -> None:
        raw = np.asarray(labels)
        if raw.ndim != 1:
            raise PartitionError(f"labels must be 1-D, got shape {raw.shape}")
        if raw.size == 0:
            raise PartitionError("partition must cover at least one record")
        if raw.dtype.kind not in "iu":
            if raw.dtype.kind == "f" and np.array_equal(raw, raw.astype(np.int64)):
                raw = raw.astype(np.int64)
            else:
                raise PartitionError(f"labels must be integers, got dtype {raw.dtype}")
        if raw.min() < 0:
            raise PartitionError("labels must be non-negative")
        # Relabel to contiguous ids in order of first appearance.
        _, first_pos, inverse = np.unique(raw, return_index=True, return_inverse=True)
        order = np.argsort(np.argsort(first_pos))
        self._labels = order[inverse].astype(np.int64)
        self._n_clusters = int(self._labels.max()) + 1
        self._members: list[np.ndarray] | None = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_clusters(
        cls, clusters: Iterable[Sequence[int] | np.ndarray], n_records: int
    ) -> "Partition":
        """Build from explicit clusters given as record-index collections.

        Raises
        ------
        PartitionError
            If the clusters overlap or do not cover ``0..n_records-1``.
        """
        labels = np.full(n_records, -1, dtype=np.int64)
        for g, members in enumerate(clusters):
            idx = np.asarray(list(members), dtype=np.int64)
            if idx.size == 0:
                raise PartitionError(f"cluster {g} is empty")
            if idx.min() < 0 or idx.max() >= n_records:
                raise PartitionError(
                    f"cluster {g} references records outside [0, {n_records})"
                )
            if (labels[idx] != -1).any():
                dup = idx[labels[idx] != -1][0]
                raise PartitionError(
                    f"record {dup} assigned to two clusters "
                    f"({labels[dup]} and {g})"
                )
            labels[idx] = g
        uncovered = np.flatnonzero(labels == -1)
        if uncovered.size:
            raise PartitionError(
                f"{uncovered.size} record(s) not assigned to any cluster "
                f"(first: {uncovered[0]})"
            )
        return cls(labels)

    @classmethod
    def single_cluster(cls, n_records: int) -> "Partition":
        """The trivial partition with all records in one cluster."""
        if n_records <= 0:
            raise PartitionError("n_records must be positive")
        return cls(np.zeros(n_records, dtype=np.int64))

    # -- basic accessors ------------------------------------------------------------

    @property
    def labels(self) -> np.ndarray:
        """Read-only view of the cluster id of each record."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    @property
    def n_records(self) -> int:
        return self._labels.size

    @property
    def n_clusters(self) -> int:
        return self._n_clusters

    def sizes(self) -> np.ndarray:
        """Array of cluster sizes indexed by cluster id."""
        return np.bincount(self._labels, minlength=self._n_clusters)

    @property
    def min_size(self) -> int:
        return int(self.sizes().min())

    @property
    def max_size(self) -> int:
        return int(self.sizes().max())

    @property
    def mean_size(self) -> float:
        return self.n_records / self.n_clusters

    def cluster(self, g: int) -> np.ndarray:
        """Record indices of cluster ``g`` (ascending)."""
        if not 0 <= g < self._n_clusters:
            raise PartitionError(
                f"cluster id {g} out of range [0, {self._n_clusters})"
            )
        return self._member_lists()[g]

    def clusters(self) -> Iterator[np.ndarray]:
        """Iterate clusters as index arrays, in cluster-id order."""
        return iter(self._member_lists())

    def _member_lists(self) -> list[np.ndarray]:
        if self._members is None:
            order = np.argsort(self._labels, kind="stable")
            boundaries = np.searchsorted(
                self._labels[order], np.arange(self._n_clusters + 1)
            )
            self._members = [
                order[boundaries[g] : boundaries[g + 1]]
                for g in range(self._n_clusters)
            ]
        return self._members

    # -- invariants -------------------------------------------------------------------

    def validate_min_size(self, k: int) -> None:
        """Raise :class:`PartitionError` unless every cluster has >= k records.

        This is the structural condition under which replacing
        quasi-identifiers by cluster centroids yields k-anonymity.
        """
        if k <= 0:
            raise PartitionError(f"k must be positive, got {k}")
        sizes = self.sizes()
        bad = np.flatnonzero(sizes < k)
        if bad.size:
            raise PartitionError(
                f"{bad.size} cluster(s) smaller than k={k} "
                f"(cluster {bad[0]} has {sizes[bad[0]]} records)"
            )

    # -- operations ----------------------------------------------------------------------

    def merge(self, g1: int, g2: int) -> "Partition":
        """Return a new partition with clusters ``g1`` and ``g2`` merged."""
        for g in (g1, g2):
            if not 0 <= g < self._n_clusters:
                raise PartitionError(
                    f"cluster id {g} out of range [0, {self._n_clusters})"
                )
        if g1 == g2:
            raise PartitionError("cannot merge a cluster with itself")
        labels = self._labels.copy()
        labels[labels == g2] = g1
        return Partition(labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(self._labels.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = self.sizes()
        return (
            f"Partition({self.n_records} records, {self.n_clusters} clusters, "
            f"sizes {int(sizes.min())}..{int(sizes.max())})"
        )
