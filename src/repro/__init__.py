"""repro — t-closeness through microaggregation.

A from-scratch reproduction of Soria-Comas, Domingo-Ferrer, Sánchez &
Martínez, *"t-Closeness through Microaggregation: Strict Privacy with
Enhanced Utility Preservation"* (IEEE TKDE / ICDE 2016): three
microaggregation algorithms that produce k-anonymous t-close microdata
releases, plus the substrates they rest on (microdata model, EMD distances,
MDAV-family partitioners, privacy verifiers, generalization baselines and
information-loss metrics).

Quickstart
----------
>>> from repro import anonymize
>>> from repro.data import load_mcd
>>> release, result = anonymize(load_mcd(), k=5, t=0.15, method="tclose-first")
>>> result.satisfies_t
True
"""

from .core import (
    METHODS,
    TClosenessAnonymizer,
    TClosenessResult,
    anonymize,
    emd_lower_bound,
    emd_upper_bound,
    kanonymity_first,
    microaggregation_merge,
    required_cluster_size,
    tclose_first_cluster_size,
    tcloseness_first,
)
from .data import Microdata

__version__ = "1.0.0"

__all__ = [
    "anonymize",
    "TClosenessAnonymizer",
    "TClosenessResult",
    "METHODS",
    "Microdata",
    "microaggregation_merge",
    "kanonymity_first",
    "tcloseness_first",
    "emd_lower_bound",
    "emd_upper_bound",
    "required_cluster_size",
    "tclose_first_cluster_size",
    "__version__",
]
