"""repro — t-closeness through microaggregation.

A from-scratch reproduction of Soria-Comas, Domingo-Ferrer, Sánchez &
Martínez, *"t-Closeness through Microaggregation: Strict Privacy with
Enhanced Utility Preservation"* (IEEE TKDE / ICDE 2016): three
microaggregation algorithms that produce k-anonymous t-close microdata
releases, plus the substrates they rest on (microdata model, EMD distances,
MDAV-family partitioners, privacy verifiers, generalization baselines and
information-loss metrics).

Quickstart — one-shot release::

    >>> from repro import anonymize
    >>> from repro.data import load_mcd
    >>> release, result = anonymize(load_mcd(), k=5, t=0.15, method="tclose-first")
    >>> result.satisfies_t
    True

Quickstart — composable policies and the fit/transform lifecycle::

    >>> from repro import Anonymizer, KAnonymity, TCloseness, DistinctLDiversity
    >>> policy = KAnonymity(5) & TCloseness(0.15) & DistinctLDiversity(3)
    >>> model = Anonymizer(policy).fit(load_mcd())
    >>> release = model.release_            # release of the fitted table
    >>> served = model.transform(batch)     # map new records to fitted clusters
    >>> model.save("model.npz")             # ship to server workers; Anonymizer.load
    >>> model.audit().satisfied             # independent policy audit
    True

Algorithms, partitioners, EMD modes and compute backends are discovered
through the named registries in :mod:`repro.registry`; extensions register
their own with ``@register_method`` / ``@register_partitioner`` /
``register_emd_mode`` / ``@register_backend``.  Every hot path (clustering,
swap scoring, batch serving) runs on a pluggable compute backend
(:mod:`repro.backend`): pass ``backend="threaded"`` or
``backend="process"`` to ``anonymize`` / ``Anonymizer`` — or set
``REPRO_BACKEND`` — to shard the distance and scoring kernels across a
thread pool or a shared-memory process pool; outputs are bit-for-bit
identical under every backend.
"""

from .backend import ComputeBackend, ProcessBackend, SerialBackend, ThreadedBackend
from .core import (
    METHODS,
    Anonymizer,
    DistinctLDiversity,
    KAnonymity,
    PrivacyPolicy,
    PSensitivity,
    Requirement,
    RunReport,
    TCloseness,
    TClosenessAnonymizer,
    TClosenessResult,
    anonymize,
    emd_lower_bound,
    emd_upper_bound,
    kanonymity_first,
    microaggregation_merge,
    required_cluster_size,
    tclose_first_cluster_size,
    tcloseness_first,
)
from .core.validation import BatchSchemaError, DataValidationError, ValidationError
from .data import Microdata
from .registry import BACKENDS, EMD_MODES, PARTITIONERS, Registry
from .runtime import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMissingError,
    ArtifactVersionError,
    CheckpointStore,
)

# Serving imports stay last: repro.core must be loaded before repro.serving
# (core.model closes the core↔serving import cycle).
from .serving import (
    AnonymizationService,
    ModelRegistry,
    ServingMetrics,
    TransformModel,
)

__version__ = "1.1.0"

__all__ = [
    "anonymize",
    "Anonymizer",
    "TClosenessAnonymizer",
    "TClosenessResult",
    "RunReport",
    "PrivacyPolicy",
    "Requirement",
    "KAnonymity",
    "TCloseness",
    "DistinctLDiversity",
    "PSensitivity",
    "METHODS",
    "PARTITIONERS",
    "EMD_MODES",
    "Registry",
    "Microdata",
    "microaggregation_merge",
    "kanonymity_first",
    "tcloseness_first",
    "emd_lower_bound",
    "emd_upper_bound",
    "required_cluster_size",
    "tclose_first_cluster_size",
    "ValidationError",
    "DataValidationError",
    "BatchSchemaError",
    "ArtifactError",
    "ArtifactMissingError",
    "ArtifactCorruptError",
    "ArtifactVersionError",
    "CheckpointStore",
    "ComputeBackend",
    "SerialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "BACKENDS",
    "AnonymizationService",
    "ModelRegistry",
    "ServingMetrics",
    "TransformModel",
    "__version__",
]
