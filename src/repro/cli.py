"""Command-line interface: anonymize and audit CSV microdata.

Examples
--------
Anonymize a CSV with the t-closeness-first algorithm::

    repro-anonymize anonymize patients.csv release.csv \\
        --qi age,zip,admission_day --confidential charge -k 5 -t 0.15

Audit an existing release::

    repro-anonymize audit release.csv --qi age,zip --confidential charge

``python -m repro ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.anonymizer import METHODS, anonymize
from .data.io import read_csv, write_csv
from .privacy.audit import audit


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-anonymize",
        description=(
            "k-anonymous t-close microdata release via microaggregation "
            "(Soria-Comas et al., reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    anon = sub.add_parser("anonymize", help="anonymize a CSV file")
    anon.add_argument("input", help="input CSV (header row required)")
    anon.add_argument("output", help="output CSV for the release")
    anon.add_argument(
        "--qi",
        required=True,
        help="comma-separated quasi-identifier column names",
    )
    anon.add_argument(
        "--confidential",
        required=True,
        help="comma-separated confidential column names",
    )
    anon.add_argument(
        "--identifier",
        default="",
        help="comma-separated identifier columns (dropped from the release)",
    )
    anon.add_argument("-k", type=int, required=True, help="k-anonymity level")
    anon.add_argument("-t", type=float, required=True, help="t-closeness level")
    anon.add_argument(
        "--method",
        choices=sorted(METHODS),
        default="tclose-first",
        help="algorithm (default: tclose-first, the paper's best)",
    )
    anon.add_argument(
        "--report",
        action="store_true",
        help="print the run summary and a privacy audit of the release",
    )

    aud = sub.add_parser("audit", help="audit an existing release CSV")
    aud.add_argument("input", help="released CSV to audit")
    aud.add_argument("--qi", required=True, help="quasi-identifier columns")
    aud.add_argument("--confidential", required=True, help="confidential columns")

    return parser


def _split(arg: str) -> list[str]:
    return [name.strip() for name in arg.split(",") if name.strip()]


def _cmd_anonymize(args: argparse.Namespace) -> int:
    data = read_csv(
        args.input,
        quasi_identifiers=_split(args.qi),
        confidential=_split(args.confidential),
        identifiers=_split(args.identifier),
    )
    release, result = anonymize(data, args.k, args.t, method=args.method)
    write_csv(release, args.output)
    print(f"wrote {release.n_records} records to {args.output}")
    print(result.summary())
    if args.report:
        print()
        print(audit(release, data.drop_identifiers()).format())
    return 0 if result.satisfies_t else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    data = read_csv(
        args.input,
        quasi_identifiers=_split(args.qi),
        confidential=_split(args.confidential),
    )
    print(audit(data).format())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "anonymize":
        return _cmd_anonymize(args)
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
