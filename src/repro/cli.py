"""Command-line interface: anonymize, audit, fit and apply CSV microdata.

Examples
--------
Anonymize a CSV with the t-closeness-first algorithm::

    repro-anonymize anonymize patients.csv release.csv \\
        --qi age,zip,admission_day --confidential charge -k 5 -t 0.15

The same release under a composed policy (k-anonymity + t-closeness +
distinct l-diversity)::

    repro-anonymize anonymize patients.csv release.csv \\
        --qi age,zip --confidential charge --require k=5,t=0.15,l=3

Fit once, serve batches later (the fit/apply lifecycle)::

    repro-anonymize fit patients.csv model.npz \\
        --qi age,zip --confidential charge --require k=5,t=0.15
    repro-anonymize apply model.npz new_batch.csv batch_release.csv

Long fits survive crashes: checkpoint to a directory, and after a kill
resume from it (bit-for-bit identical to an uninterrupted run)::

    repro-anonymize fit patients.csv model.npz --qi age,zip \\
        --confidential charge --require k=5,t=0.15 --checkpoint ckpt/
    repro-anonymize fit patients.csv model.npz --qi age,zip \\
        --confidential charge --require k=5,t=0.15 --resume ckpt/

Publish fitted models into a versioned registry and serve them over HTTP
(endpoints ``/v1/transform``, ``/v1/assign``, ``/v1/models``, ``/healthz``,
``/metrics``; see :mod:`repro.serving`)::

    repro-anonymize publish model.npz --registry registry/ --name patients
    repro-anonymize serve --registry registry/ --port 8765

Audit an existing release (exit code 1 when a declared requirement fails)::

    repro-anonymize audit release.csv --qi age,zip --confidential charge \\
        --require k=5,t=0.15

``anonymize``, ``fit`` and ``apply`` accept
``--backend {serial,threaded,process}`` (default: the ``REPRO_BACKEND``
environment variable, else ``serial``; the parallel backends size their
worker pools from ``REPRO_NUM_THREADS``).  The backend is a pure
execution choice — outputs are bit-for-bit identical under every one.

``python -m repro ...`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.anonymizer import METHODS, anonymize
from .core.model import Anonymizer
from .core.policy import KAnonymity, PolicyError, PrivacyPolicy, TCloseness
from .core.repair import PolicyInfeasibleError
from .core.validation import ValidationError
from .data.io import read_csv, write_csv
from .backend import BackendConfigError
from .privacy.audit import audit, audit_policy
from .registry import BACKENDS, RegistryError
from .runtime.atomic import ArtifactError
from .serving import AnonymizationService, ModelRegistry


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-anonymize",
        description=(
            "k-anonymous t-close microdata release via microaggregation "
            "(Soria-Comas et al., reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_roles(p: argparse.ArgumentParser, *, identifier: bool = False) -> None:
        p.add_argument(
            "--qi",
            required=True,
            help="comma-separated quasi-identifier column names",
        )
        p.add_argument(
            "--confidential",
            required=True,
            help="comma-separated confidential column names",
        )
        if identifier:
            p.add_argument(
                "--identifier",
                default="",
                help="comma-separated identifier columns (dropped from the release)",
            )

    def add_policy(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "-k", type=int, default=None, help="k-anonymity level"
        )
        p.add_argument(
            "-t", type=float, default=None, help="t-closeness level"
        )
        p.add_argument(
            "--require",
            default=None,
            metavar="SPEC",
            help=(
                "privacy policy spec, e.g. k=5,t=0.15,l=3 "
                "(keys: k-anonymity, t-closeness, distinct l-diversity, "
                "p-sensitivity); combines with -k/-t"
            ),
        )

    def add_method(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--method",
            choices=sorted(METHODS),
            default="tclose-first",
            help="algorithm (default: tclose-first, the paper's best)",
        )
        add_backend(p)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=None,
            help=(
                "compute backend (default: $REPRO_BACKEND, else serial; "
                "'threaded' sizes its pool from $REPRO_NUM_THREADS, else "
                "the CPU count).  Output is identical under every backend."
            ),
        )

    anon = sub.add_parser("anonymize", help="anonymize a CSV file")
    anon.add_argument("input", help="input CSV (header row required)")
    anon.add_argument("output", help="output CSV for the release")
    add_roles(anon, identifier=True)
    add_policy(anon)
    add_method(anon)
    anon.add_argument(
        "--report",
        action="store_true",
        help="print the run summary and a privacy audit of the release",
    )

    aud = sub.add_parser("audit", help="audit an existing release CSV")
    aud.add_argument("input", help="released CSV to audit")
    add_roles(aud)
    aud.add_argument(
        "--require",
        default=None,
        metavar="SPEC",
        help=(
            "audit against this policy spec (e.g. k=5,t=0.15,l=3) and "
            "exit 1 when any requirement fails"
        ),
    )

    fit = sub.add_parser(
        "fit", help="fit an anonymization model and save it for `apply`"
    )
    fit.add_argument("input", help="input CSV (header row required)")
    fit.add_argument("model", help="output model path (.npz + .json sidecar)")
    add_roles(fit, identifier=True)
    add_policy(fit)
    add_method(fit)
    fit.add_argument(
        "--release",
        default=None,
        help="optionally also write the fitted table's release CSV here",
    )
    run = fit.add_mutually_exclusive_group()
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "snapshot fit progress to DIR so a killed run can continue; "
            "re-running the identical command — or `fit --resume DIR` — "
            "resumes with bit-for-bit identical output"
        ),
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "continue a killed checkpointed fit from DIR (the checkpoint "
            "embeds the data and policy, so the input/policy flags of the "
            "original command are ignored)"
        ),
    )

    apply_ = sub.add_parser(
        "apply", help="anonymize a batch CSV with a fitted model"
    )
    apply_.add_argument("model", help="model path written by `fit`")
    apply_.add_argument("input", help="batch CSV to anonymize")
    apply_.add_argument("output", help="output CSV for the batch release")
    add_backend(apply_)

    publish = sub.add_parser(
        "publish", help="publish a fitted model into a serving registry"
    )
    publish.add_argument("model", help="model path written by `fit`")
    publish.add_argument(
        "--registry", required=True, metavar="DIR", help="registry directory"
    )
    publish.add_argument(
        "--name", required=True, help="model name inside the registry"
    )
    publish.add_argument(
        "--version",
        default=None,
        help="version label (default: the next v<N>)",
    )
    publish.add_argument(
        "--no-activate",
        action="store_true",
        help="publish without making the new version live",
    )

    serve = sub.add_parser(
        "serve", help="serve a registry's active models over HTTP"
    )
    serve.add_argument(
        "--registry", required=True, metavar="DIR", help="registry directory"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=4096,
        help="flush a coalesced batch at this many pending rows",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="flush a coalesced batch after this many milliseconds",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="per-model transform cache budget in rows (0 disables)",
    )
    serve.add_argument(
        "--max-queue-rows",
        type=int,
        default=0,
        help=(
            "admission bound: answer 429 + Retry-After once this many "
            "rows are pending (0 = unbounded)"
        ),
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="close keep-alive connections idle this long (0 disables)",
    )
    serve.add_argument(
        "--max-requests-per-connection",
        type=int,
        default=0,
        help="rotate keep-alive connections after this many requests "
        "(0 = unlimited)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "serving processes sharing the port (SO_REUSEPORT, or an "
            "inherited listener where unavailable); 1 = in-process"
        ),
    )
    serve.add_argument(
        "--no-mmap",
        action="store_true",
        help="copy model arrays into private memory instead of mmapping",
    )
    add_backend(serve)

    return parser


def _split(arg: str) -> list[str]:
    return [name.strip() for name in arg.split(",") if name.strip()]


def _build_policy(args: argparse.Namespace) -> PrivacyPolicy:
    """Combine ``--require`` with the legacy ``-k``/``-t`` flags."""
    policy = PrivacyPolicy()
    if args.require:
        policy = PrivacyPolicy.parse(args.require)
    if args.k is not None:
        policy = policy & KAnonymity(args.k)
    if args.t is not None:
        policy = policy & TCloseness(args.t)
    if not policy.requirements:
        raise PolicyError(
            "no privacy requirements declared; pass -k/-t or --require"
        )
    return policy


def _read_roles(args: argparse.Namespace, path: str):
    return read_csv(
        path,
        quasi_identifiers=_split(args.qi),
        confidential=_split(args.confidential),
        identifiers=_split(getattr(args, "identifier", "") or ""),
    )


def _cmd_anonymize(args: argparse.Namespace) -> int:
    data = _read_roles(args, args.input)
    policy = _build_policy(args)
    model = Anonymizer(policy, method=args.method, backend=args.backend).fit(data)
    release, result = model.release_, model.result_
    write_csv(release, args.output)
    print(f"wrote {release.n_records} records to {args.output}")
    print(result.summary())
    if args.report:
        verdict = model.audit(data.drop_identifiers())
        print()
        print(verdict.format())
    else:
        # Exit code only: skip the posture report and the linkage attack.
        verdict = model.audit(posture=False)
        if not verdict.satisfied:
            print(f"policy {policy.spec()} VIOLATED by the release")
    return 0 if verdict.satisfied else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    data = _read_roles(args, args.input)
    if args.require:
        verdict = audit_policy(data, PrivacyPolicy.parse(args.require))
        print(verdict.format())
        return 0 if verdict.satisfied else 1
    print(audit(data).format())
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    if args.resume:
        model = Anonymizer.resume(args.resume, backend=args.backend)
        policy = model.policy
    else:
        data = _read_roles(args, args.input)
        policy = _build_policy(args)
        model = Anonymizer(policy, method=args.method, backend=args.backend).fit(
            data, checkpoint=args.checkpoint
        )
    # Write every output before printing, so an interrupted pipe cannot
    # leave a model without its companion release.
    npz_path, sidecar = model.save(args.model)
    if args.release:
        write_csv(model.release_, args.release)
    print(f"wrote model to {npz_path} (+ {sidecar})")
    if args.release:
        print(f"wrote {model.release_.n_records} records to {args.release}")
    print(model.report_.format())
    verdict = model.audit(posture=False)
    if not verdict.satisfied:
        print(f"policy {policy.spec()} VIOLATED by the fitted release")
    return 0 if verdict.satisfied else 1


def _cmd_apply(args: argparse.Namespace) -> int:
    import csv

    model = Anonymizer.load(args.model, backend=args.backend)
    with open(args.input, newline="") as handle:
        header = next(csv.reader(handle), [])
    batch = read_csv(args.input, schema=model.batch_schema(tuple(header)))
    release = model.transform(batch)
    write_csv(release, args.output)
    print(
        f"wrote {release.n_records} records to {args.output} "
        f"(policy {model.policy.spec()}, method {model.method})"
    )
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    model = Anonymizer.load(args.model)
    registry = ModelRegistry(args.registry)
    version = registry.publish(
        args.name,
        model,
        version=args.version,
        activate=not args.no_activate,
    )
    state = "active" if not args.no_activate else "published (not active)"
    print(f"published {args.name}/{version} to {args.registry} [{state}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    service_kwargs = dict(
        backend=args.backend,
        mmap_mode=None if args.no_mmap else "r",
        max_batch_rows=args.max_batch_rows,
        max_wait_ms=args.max_wait_ms,
        max_queue_rows=args.max_queue_rows,
        cache_size=args.cache_size,
        idle_timeout_s=args.idle_timeout,
        max_requests_per_connection=args.max_requests_per_connection,
    )
    if args.workers > 1:
        from .serving.workers import serve_workers

        registry = ModelRegistry(args.registry)
        if not any(
            registry.active_version(name) for name in registry.names()
        ):
            print(
                f"error: registry {args.registry} has no active models; "
                "run `repro-anonymize publish` first",
                file=sys.stderr,
            )
            return 2
        return serve_workers(
            args.registry,
            args.host,
            args.port,
            args.workers,
            service_kwargs=service_kwargs,
        )
    service = AnonymizationService(args.registry, **service_kwargs)
    loaded = service.load_models()
    if not loaded:
        print(
            f"error: registry {args.registry} has no active models; "
            "run `repro-anonymize publish` first",
            file=sys.stderr,
        )
        return 2
    service.run(args.host, args.port)
    return 0


_COMMANDS = {
    "anonymize": _cmd_anonymize,
    "audit": _cmd_audit,
    "fit": _cmd_fit,
    "apply": _cmd_apply,
    "publish": _cmd_publish,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        handler = _COMMANDS[args.command]
    except KeyError:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command!r}") from None
    try:
        return handler(args)
    except (
        PolicyError,
        PolicyInfeasibleError,
        RegistryError,
        BackendConfigError,
        ValidationError,
        ArtifactError,
    ) as exc:
        # RegistryError/BackendConfigError reach here only through the
        # REPRO_BACKEND / REPRO_NUM_THREADS environment defaults — bad
        # flag values die in argparse choices.  ValidationError covers
        # unusable fit inputs (NaN/inf quasi-identifiers, empty or
        # too-small tables, batch/schema mismatches); ArtifactError covers
        # missing/corrupt/version-skewed model and checkpoint files.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
