"""LRU transform cache keyed on encoded quasi-identifier rows.

Serving traffic is skewed: hot records (retried requests, duplicated
upstream events, common QI combinations — ages, zip codes, category
codes) recur far more often than a uniform draw would suggest.  The
nearest-representative query is a full scan over every fitted
representative per row, so memoizing it pays exactly on those repeats.

The cache key is the **encoded** row's raw bytes (``row.tobytes()`` of
the float64 encoding), not the raw input values: two raw rows that
encode identically are *defined* to get the same cluster (the distance
query only ever sees the encoding), so the cache can never change a
result — a hit returns bit-for-bit what the backend query would have
computed.  That is the cache's whole correctness argument, and the
differential serving tests pin it.

Entries are ``encoded-row-bytes → cluster id`` (an int), so memory per
entry is the key bytes plus a few words; the default budget of a few
thousand entries is kilobytes, not megabytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np


class TransformCache:
    """Bounded LRU map from encoded QI rows to fitted cluster ids.

    Parameters
    ----------
    max_size:
        Maximum number of cached rows; least-recently-used entries are
        evicted past it.  ``0`` (or negative) disables the cache — every
        lookup misses and stores are dropped — which is how the serving
        benchmark measures the uncached path with the same code.

    Thread-safe: lookups and stores take an internal lock (the serving
    loop and benchmark clients may touch one cache from several threads).
    """

    def __init__(self, max_size: int = 4096) -> None:
        self.max_size = int(max_size)
        self._entries: OrderedDict[bytes, int] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.max_size > 0

    @property
    def hits(self) -> int:
        """Total lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Total lookups that fell through to the backend."""
        return self._misses

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_of(row: np.ndarray) -> bytes:
        """Cache key of one encoded row (its exact float64 bytes)."""
        return row.tobytes()

    def lookup_rows(
        self, encoded: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a batch against the cache in one pass.

        Returns ``(assignment, missing)``: ``assignment`` is an int64
        vector with cached cluster ids filled in (unresolved rows hold
        ``-1``), ``missing`` the indices still needing a backend query.
        Hit/miss counters update; hits are refreshed in LRU order.
        """
        n = encoded.shape[0]
        assignment = np.full(n, -1, dtype=np.int64)
        if not self.enabled or n == 0:
            # A disabled cache is transparent: no counter noise either.
            return assignment, np.arange(n)
        missing: list[int] = []
        with self._lock:
            for i in range(n):
                key = encoded[i].tobytes()
                value = self._entries.get(key)
                if value is None:
                    missing.append(i)
                    self._misses += 1
                else:
                    self._entries.move_to_end(key)
                    assignment[i] = value
                    self._hits += 1
        return assignment, np.asarray(missing, dtype=np.int64)

    def store_rows(
        self,
        encoded: np.ndarray,
        assignment: np.ndarray,
        indices: np.ndarray | None = None,
    ) -> None:
        """Remember computed rows (``indices`` selects which, default all)."""
        if not self.enabled:
            return
        if indices is None:
            indices = range(encoded.shape[0])
        with self._lock:
            for i in indices:
                key = encoded[int(i)].tobytes()
                self._entries[key] = int(assignment[int(i)])
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    def hottest(self, k: int) -> list[bytes]:
        """The up-to-``k`` most-recently-used encoded-row keys, MRU first.

        The hot-swap warm-up hook: these keys are the rows most likely
        to recur, so replaying them through a *new* model's assign query
        (and storing those fresh results) pre-heats its cache without
        ever reusing an old model's answers.
        """
        if k <= 0:
            return []
        with self._lock:
            return [key for key in reversed(self._entries)][: int(k)]

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
