"""Coalescing micro-batcher: many concurrent requests, one backend query.

The backend's ``assign_nearest`` is a vectorized scan whose per-row cost
*drops* as the batch grows (the representative matrix is loaded once and
streamed against many rows), so a serving loop that forwards each
request's handful of rows individually leaves most of the kernel's
throughput on the table.  :class:`CoalescingBatcher` closes that gap: it
queues the encoded rows of concurrent ``transform``/``assign`` requests
and flushes them as **one** stacked ``assign_nearest`` call when either
the pending batch reaches ``max_batch_rows`` or the oldest queued row has
waited ``max_wait_ms`` — the classic size-or-deadline policy, so a lone
request still sees bounded latency while a burst amortizes into a single
query.

Correctness rests on a property the backend suite already pins:
``assign_nearest`` is row-independent — each row's nearest cluster does
not depend on which other rows share the call.  Stacking requests and
splitting the result therefore returns bit-for-bit what each request
would have computed alone, and the differential serving tests assert
exactly that across batching boundaries.

An optional :class:`~repro.serving.cache.TransformCache` fronts the
queue: rows whose encoded bytes were seen before are answered without
queueing at all, and only the misses ride to the backend.  All queue
state is touched only from the owning event loop (no locks needed); the
backend call itself runs in an executor thread so the loop keeps
accepting requests mid-query.

Overload is bounded, not absorbed: ``max_queue_rows`` caps the pending
backlog, and a request that would push past it is refused with a typed
:class:`OverloadedError` carrying a drain-time estimate — the HTTP front
end turns that into a ``429`` with ``Retry-After``.  Without the bound,
a sustained arrival rate above the backend's throughput would grow the
queue (and every request's latency) without limit; with it, the queue
depth high-water mark stays provably at or below the configured cap.
"""

from __future__ import annotations

import asyncio
import math
from functools import partial

import numpy as np

from .cache import TransformCache
from .metrics import ServingMetrics
from .model import TransformModel


class OverloadedError(Exception):
    """The admission queue is full; retry after ``retry_after_s``.

    Deliberately *not* an :class:`HttpError` — the batcher knows nothing
    about HTTP — but carries everything the front end needs for the 429:
    the backlog at rejection time, the rows refused, and a heuristic
    drain-time estimate (whole pending batches times the flush deadline).
    """

    def __init__(
        self, pending_rows: int, rejected_rows: int, retry_after_s: float
    ) -> None:
        super().__init__(
            f"admission queue full ({pending_rows} rows pending, "
            f"{rejected_rows} refused); retry in {retry_after_s:.2f}s"
        )
        self.pending_rows = int(pending_rows)
        self.rejected_rows = int(rejected_rows)
        self.retry_after_s = float(retry_after_s)


class _PendingRequest:
    """One queued request's missing rows and the future that resolves them."""

    __slots__ = ("encoded", "future")

    def __init__(self, encoded: np.ndarray, future: asyncio.Future) -> None:
        self.encoded = encoded
        self.future = future


class CoalescingBatcher:
    """Merge concurrent assign queries into stacked backend calls.

    Parameters
    ----------
    model:
        The :class:`~repro.serving.model.TransformModel` whose
        ``assign_encoded`` answers flushed batches.
    max_batch_rows:
        Flush as soon as this many rows are pending (the size half of the
        size-or-deadline policy).
    max_wait_ms:
        Flush this many milliseconds after the first row of a batch was
        queued, even if the batch is small (the deadline half; bounds a
        lone request's added latency).
    max_queue_rows:
        Admission bound: refuse (with :class:`OverloadedError`) any
        request whose miss rows would push the pending backlog past this
        many rows.  ``0`` (the default) keeps the historical unbounded
        behavior.  A request arriving at an *empty* queue is always
        admitted — the HTTP body cap bounds its size — so a bound
        smaller than one request's rows cannot deadlock retries.
    cache:
        Optional :class:`~repro.serving.cache.TransformCache`; hits skip
        the queue entirely and only misses reach the backend.
    metrics:
        Optional :class:`~repro.serving.metrics.ServingMetrics` that
        records every flush (rows, requests coalesced), cache outcome and
        queue-depth sample.

    All coordination state lives on the owning asyncio event loop; use
    :meth:`assign` from coroutines running on that loop only.
    """

    def __init__(
        self,
        model: TransformModel,
        *,
        max_batch_rows: int = 4096,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 0,
        cache: TransformCache | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue_rows < 0:
            raise ValueError("max_queue_rows must be non-negative")
        self.model = model
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_rows = int(max_queue_rows)
        self.cache = cache
        self.metrics = metrics
        self._pending: list[_PendingRequest] = []
        self._pending_rows = 0
        self._timer: asyncio.TimerHandle | None = None

    # -- the public query ----------------------------------------------------------

    async def assign(self, encoded: np.ndarray) -> np.ndarray:
        """Nearest cluster id per encoded row, coalesced with peers.

        Resolves what it can from the cache, queues the rest, and returns
        once the batch containing this request's rows has flushed.  The
        result is bit-for-bit identical to
        ``model.assign_encoded(encoded)`` called alone.
        """
        encoded = np.ascontiguousarray(encoded)
        n = int(encoded.shape[0])
        if self.cache is not None:
            assignment, missing = self.cache.lookup_rows(encoded)
            if self.metrics is not None:
                self.metrics.record_cache(n - len(missing), len(missing))
        else:
            assignment = np.full(n, -1, dtype=np.int64)
            missing = np.arange(n)
        if len(missing) == 0:
            return assignment
        if (
            self.max_queue_rows
            and self._pending
            and self._pending_rows + len(missing) > self.max_queue_rows
        ):
            retry_after = self._retry_after_estimate()
            if self.metrics is not None:
                self.metrics.record_rejected(len(missing))
            raise OverloadedError(self._pending_rows, len(missing), retry_after)

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append(_PendingRequest(encoded[missing], future))
        self._pending_rows += len(missing)
        if self.metrics is not None:
            self.metrics.record_queue_depth(self._pending_rows)
        if self._pending_rows >= self.max_batch_rows:
            self._start_flush(loop)
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._start_flush, loop
            )

        resolved = await future
        assignment[missing] = resolved
        if self.cache is not None:
            self.cache.store_rows(encoded, assignment, indices=missing)
        return assignment

    async def flush(self) -> None:
        """Flush any pending rows now (used on shutdown drains)."""
        if self._pending:
            await self._run_flush()

    def _retry_after_estimate(self) -> float:
        """Seconds until the current backlog has plausibly drained.

        A heuristic, not a promise: the backlog flushes in
        ``ceil(pending / max_batch_rows)`` batches, each gated by the
        ``max_wait_ms`` deadline at worst — floored at 50 ms so clients
        never busy-spin on a sub-millisecond flush policy.
        """
        batches = max(1, math.ceil(self._pending_rows / self.max_batch_rows))
        return max(0.05, batches * self.max_wait_ms / 1000.0)

    # -- flush machinery -----------------------------------------------------------

    def _start_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Schedule an immediate flush task (idempotent per batch)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending:
            loop.create_task(self._run_flush())

    async def _run_flush(self) -> None:
        """Stack the snapshot of pending requests into one backend query."""
        batch, self._pending = self._pending, []
        rows, self._pending_rows = self._pending_rows, 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not batch:
            return
        if self.metrics is not None:
            self.metrics.record_batch(rows, len(batch))
            self.metrics.record_queue_depth(0)
        stacked = (
            batch[0].encoded
            if len(batch) == 1
            else np.concatenate([req.encoded for req in batch])
        )
        loop = asyncio.get_running_loop()
        try:
            assignment = await loop.run_in_executor(
                None, partial(self.model.assign_encoded, stacked)
            )
        except Exception as exc:
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        offset = 0
        for req in batch:
            count = int(req.encoded.shape[0])
            if not req.future.done():
                req.future.set_result(assignment[offset : offset + count])
            offset += count
